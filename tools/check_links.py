#!/usr/bin/env python3
"""CI gate: relative links in the documentation must resolve.

Scans ``README.md`` and ``docs/*.md`` for markdown links and images
(``[text](target)``), skips external schemes (http/https/mailto) and
pure in-page anchors, and verifies that every remaining target exists
on disk relative to the file containing the link.  Exits 1 listing
every dangling link, so docs reorganizations cannot silently orphan
references.

Usage::

    python tools/check_links.py [file-or-dir ...]

Defaults to ``README.md`` + ``docs/`` under the repo root.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` — target captured without a title suffix.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def links_in(path: Path) -> list[str]:
    """All markdown link targets in ``path``, in document order."""
    return _LINK.findall(path.read_text(encoding="utf-8"))


def dangling_links(files: list[Path]) -> list[tuple[Path, str]]:
    """(file, target) pairs whose relative target does not exist."""
    problems: list[tuple[Path, str]] = []
    for path in files:
        for target in links_in(path):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]  # strip in-page anchor
            if not relative:
                continue
            if not (path.parent / relative).exists():
                problems.append((path, target))
    return problems


def collect(arguments: list[str]) -> list[Path]:
    repo_root = Path(__file__).resolve().parent.parent
    if not arguments:
        arguments = [str(repo_root / "README.md"), str(repo_root / "docs")]
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.glob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"warning: no such file {path}")
    return files


def main(argv: list[str]) -> int:
    files = collect(argv[1:])
    problems = dangling_links(files)
    if problems:
        print(f"{len(problems)} dangling link(s):")
        for path, target in problems:
            print(f"  {path}: {target}")
        return 1
    total = sum(len(links_in(path)) for path in files)
    print(f"ok: {total} links across {len(files)} files all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

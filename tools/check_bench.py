#!/usr/bin/env python3
"""CI gate: committed ``BENCH_*.json`` headline files must be sound.

Every benchmark writes a machine-readable headline file at the repo
root (see ``docs/performance.md`` and ``docs/store.md``).  A refactor
that breaks a benchmark can silently commit an empty, truncated or
NaN-ridden file — this check makes that a red build instead:

* every ``BENCH_*.json`` parses to a non-empty JSON object;
* every number anywhere in it (nested included) is finite;
* each known file still carries its headline keys, so renaming a
  headline without updating its consumers fails loudly.

Usage::

    python tools/check_bench.py [directory]

Defaults to the repository root.  Exits 1 listing every problem.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

#: Headline keys each known benchmark file must keep carrying.  New
#: BENCH files without an entry here still get the generic checks.
HEADLINES = {
    "BENCH_scaling.json": ("tokens_per_s", "sites_per_min", "serial_s"),
    "BENCH_serving.json": ("cold_p50_s", "warm_p50_s", "throughput_rps"),
    "BENCH_chaos.json": ("site", "seed", "procs", "mixes"),
    "BENCH_store.json": (
        "sites",
        "ingest_rows_per_s",
        "query_p50_ms",
        "query_p95_ms",
    ),
    "BENCH_ingest.json": (
        "pages",
        "bundle_precision",
        "bundle_recall",
        "ingest_pages_per_s",
    ),
    "BENCH_reingest.json": (
        "pages",
        "churn_ratio",
        "reprocess_ratio",
        "reingest_speedup",
    ),
}


def non_finite_numbers(value, path="$"):
    """Paths of every non-finite number nested anywhere in ``value``."""
    if isinstance(value, bool):
        return []
    if isinstance(value, (int, float)):
        return [] if math.isfinite(value) else [path]
    if isinstance(value, dict):
        return [
            problem
            for key, child in value.items()
            for problem in non_finite_numbers(child, f"{path}.{key}")
        ]
    if isinstance(value, list):
        return [
            problem
            for index, child in enumerate(value)
            for problem in non_finite_numbers(child, f"{path}[{index}]")
        ]
    return []


def check_file(path: Path) -> list[str]:
    """Every problem with one BENCH file, as printable messages."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path.name}: unreadable ({error})"]
    if not isinstance(data, dict) or not data:
        return [f"{path.name}: must be a non-empty JSON object"]
    problems = [
        f"{path.name}: non-finite number at {spot}"
        for spot in non_finite_numbers(data)
    ]
    for key in HEADLINES.get(path.name, ()):
        if key not in data:
            problems.append(f"{path.name}: missing headline key {key!r}")
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    files = sorted(root.glob("BENCH_*.json"))
    if not files:
        print(f"no BENCH_*.json files under {root}", file=sys.stderr)
        return 1
    problems = [problem for path in files for problem in check_file(path)]
    missing = [name for name in HEADLINES if not (root / name).exists()]
    problems += [f"{name}: expected benchmark file is gone" for name in missing]
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    print(f"{len(files)} BENCH files OK: {', '.join(p.name for p in files)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

#!/usr/bin/env python
"""End-to-end smoke test of ``repro serve`` as a real OS process.

What the in-process tests cannot prove, this does: the CLI entry
point, signal handling, and socket behavior of an actual server
process.  The default mode

1. starts ``python -m repro serve --port 0 --workers 1 --max-queue 1``
   and reads the bound address from its stdout;
2. checks ``/healthz``;
3. segments a generated site twice — the first response must take the
   ``"pipeline"`` path, the second the ``"wrapper"`` path with
   identical records;
4. saturates the one-worker queue with held requests and expects 429s
   with a ``Retry-After`` header;
5. checks the ``serve.*`` counters on ``/metricz``;
6. sends SIGTERM and expects a graceful drain and exit code 0.

With ``--supervised`` it instead smokes the multi-process supervisor:

1. starts ``repro serve --procs 2`` and parses the supervisor's
   worker-spawn lines for PIDs;
2. warms a site, then SIGKILLs one worker mid-load while a retrying
   client keeps firing requests;
3. expects availability >= 99% once restarts are riding (only the
   killed worker's in-flight requests may fail), the supervisor's
   restart counters on ``/metricz``, and post-restart responses
   byte-identical to the pre-kill warm answer (the replacement warms
   from the shared disk registry);
4. sends SIGTERM and expects a rolling drain and exit code 0.

With ``--store`` it smokes the serve path's relational store:

1. starts ``repro serve --store <tmp db>``;
2. segments a generated site (online ingest fires after the response)
   and queries ``GET /query`` for its column keywords, expecting a
   non-empty ranked answer with provenance-tagged rows;
3. segments again (warm) and re-queries, expecting the identical
   answer — online re-ingest of unchanged content is a no-op;
4. sends SIGTERM, then re-answers the same query offline via ``repro
   query --json`` on the database file the server left behind — the
   two transports must agree byte-for-byte.

Exits non-zero on the first failed expectation.  Run from the repo
root (CI does)::

    PYTHONPATH=src python tools/serve_smoke.py
    PYTHONPATH=src python tools/serve_smoke.py --supervised
    PYTHONPATH=src python tools/serve_smoke.py --store
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.serve.client import ServeClient, payload_from_pages
from repro.sitegen.corpus import build_site

START_TIMEOUT_S = 30.0
EXIT_TIMEOUT_S = 60.0


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)
    print(f"ok: {message}")


def start_server(extra_args=()) -> tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve",
            "--port", "0", "--workers", "1", "--max-queue", "1",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + START_TIMEOUT_S
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            fail(f"server exited early with code {process.returncode}")
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return process, match.group(1)
    process.kill()
    fail("server never reported its address")
    raise AssertionError  # unreachable


def site_payload():
    site = build_site("ohio")
    return payload_from_pages(
        "ohio",
        site.list_pages,
        [site.detail_pages(i) for i in range(len(site.list_pages))],
    )


def read_worker_pids(process, expected, deadline_s=START_TIMEOUT_S):
    """Parse ``worker N spawned pid=...`` lines from the supervisor."""
    pids = {}
    deadline = time.monotonic() + deadline_s
    while len(pids) < expected and time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            fail(f"supervisor exited early with code {process.returncode}")
        match = re.search(r"worker (\d+) spawned pid=(\d+)", line)
        if match:
            pids[int(match.group(1))] = int(match.group(2))
    if len(pids) < expected:
        fail(f"saw only {len(pids)}/{expected} worker spawns")
    return pids


def main_supervised() -> int:
    wrapper_dir = tempfile.mkdtemp(prefix="smoke-wrappers-")
    process, address = start_server(
        extra_args=(
            "--procs", "2",
            "--max-queue", "8",
            "--wrapper-cache-dir", wrapper_dir,
        )
    )
    print(f"supervisor up at {address}")
    client = ServeClient(
        address, timeout_s=120.0, max_retries=6, retry_base_s=0.1
    )
    try:
        pids = read_worker_pids(process, expected=2)
        print(f"workers: {pids}")
        check(client.healthz().status == 200, "/healthz answers 200")

        payload = site_payload()
        cold = client.segment(payload)
        check(cold.status == 200, "cold request answers 200")
        warm = client.segment(payload)
        check(warm.status == 200, "warm request answers 200")
        check(
            warm.body["path"] == "wrapper",
            "warm request takes the wrapper path",
        )

        # SIGKILL one worker while load is riding; the retrying
        # client must see near-perfect availability.
        results = {"ok": 0, "bad": 0}
        lock = threading.Lock()
        stop = threading.Event()

        def fire():
            while not stop.is_set():
                try:
                    status = client.segment(payload).status
                except Exception:
                    status = 0
                with lock:
                    results["ok" if status == 200 else "bad"] += 1

        threads = [threading.Thread(target=fire) for _ in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(1.0)
        os.kill(pids[0], signal.SIGKILL)
        print(f"killed worker 0 (pid {pids[0]})")
        time.sleep(6.0)
        stop.set()
        for thread in threads:
            thread.join()
        total = results["ok"] + results["bad"]
        availability = results["ok"] / total if total else 0.0
        check(total >= 10, f"load generator made progress ({total} requests)")
        check(
            availability >= 0.99,
            f"availability >= 99% through a worker kill "
            f"({availability:.4f}, {results['bad']}/{total} failed)",
        )

        after = client.segment(payload)
        check(after.status == 200, "post-restart request answers 200")
        check(
            after.body["pages"] == warm.body["pages"],
            "post-restart response byte-identical (warm from disk registry)",
        )
        metricz = client.metricz()
        counters = metricz.body["counters"]
        check(
            counters.get("serve.supervisor.restarts", 0) >= 1,
            "serve.supervisor.restarts visible on /metricz",
        )
        check(
            counters.get("serve.supervisor.reaps", 0) >= 1,
            "serve.supervisor.reaps visible on /metricz",
        )

        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=EXIT_TIMEOUT_S)
        check(code == 0, f"rolling drain exits 0 (got {code})")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    print("supervised serve smoke: all checks passed")
    return 0


def main_store() -> int:
    import json

    store_dir = tempfile.mkdtemp(prefix="smoke-store-")
    store_db = os.path.join(store_dir, "tables.db")
    process, address = start_server(extra_args=("--store", store_db))
    print(f"server up at {address} (store: {store_db})")
    client = ServeClient(address, timeout_s=120.0)
    keywords = ["name", "offense"]
    try:
        payload = site_payload()
        cold = client.segment(payload)
        check(cold.status == 200, "cold request answers 200")

        first = client.query(keywords)
        check(first.status == 200, "/query answers 200 after online ingest")
        check(first.body["tables"], "/query returns ranked tables")
        check(
            first.body["tables"][0]["site"] == "ohio",
            "top-ranked table is the ingested site",
        )
        check(first.body["row_count"] > 0, "/query returns unioned rows")
        row = first.body["rows"][0]
        check(
            row["site"] == "ohio" and "page" in row and "record" in row,
            "rows carry provenance (site, page, record)",
        )

        warm = client.segment(payload)
        check(warm.status == 200, "warm request answers 200")
        second = client.query(keywords)
        check(
            second.body == first.body,
            "warm re-ingest is a no-op (identical /query answer)",
        )
        check(
            client.query([" , "]).status == 400,
            "empty keyword list answers 400",
        )

        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=EXIT_TIMEOUT_S)
        check(code == 0, f"graceful shutdown exits 0 (got {code})")

        # The database the server left behind answers the same query
        # through the offline CLI, byte-for-byte.
        offline = subprocess.run(
            [
                sys.executable, "-m", "repro", "query", store_db,
                *keywords, "--json",
            ],
            capture_output=True,
            text=True,
            timeout=EXIT_TIMEOUT_S,
        )
        check(offline.returncode == 0, "repro query exits 0 on the same db")
        check(
            json.loads(offline.stdout) == first.body,
            "offline `repro query --json` matches the /query answer",
        )
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    print("store serve smoke: all checks passed")
    return 0


def main() -> int:
    process, address = start_server()
    print(f"server up at {address}")
    client = ServeClient(address, timeout_s=120.0)
    try:
        health = client.healthz()
        check(health.status == 200, "/healthz answers 200")
        check(health.body["status"] == "ok", "/healthz reports ok")

        site = build_site("ohio")
        payload = payload_from_pages(
            "ohio",
            site.list_pages,
            [site.detail_pages(i) for i in range(len(site.list_pages))],
        )
        cold = client.segment(payload)
        check(cold.status == 200, "cold request answers 200")
        check(
            cold.body["path"] == "pipeline",
            "cold request takes the pipeline path",
        )
        check(cold.body["record_count"] > 0, "cold request finds records")

        warm = client.segment(payload)
        check(warm.status == 200, "warm request answers 200")
        check(
            warm.body["path"] == "wrapper",
            "warm request takes the wrapper path",
        )
        check(
            warm.body["pages"] == cold.body["pages"],
            "warm records identical to cold records",
        )

        # Saturate: 1 worker + 1 queue slot, 4 held requests.
        responses = []
        lock = threading.Lock()

        def held():
            response = client.sleep(1.0)
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=held) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        statuses = sorted(r.status for r in responses)
        check(
            statuses == [200, 200, 429, 429],
            f"saturation sheds load at the door (statuses={statuses})",
        )
        rejected = [r for r in responses if r.status == 429]
        check(
            all("Retry-After" in r.headers for r in rejected),
            "429 responses carry Retry-After",
        )

        metricz = client.metricz()
        counters = metricz.body["counters"]
        check(metricz.status == 200, "/metricz answers 200")
        check(counters.get("serve.requests", 0) >= 4, "serve.requests counted")
        check(
            counters.get("serve.wrapper_hits") == 1,
            "serve.wrapper_hits counted",
        )
        check(
            counters.get("serve.pipeline_runs") == 1,
            "serve.pipeline_runs counted",
        )
        check(counters.get("serve.rejected") == 2, "serve.rejected counted")

        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=EXIT_TIMEOUT_S)
        check(code == 0, f"graceful shutdown exits 0 (got {code})")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--supervised",
        action="store_true",
        help="smoke the multi-process supervisor (kill + recovery) instead",
    )
    parser.add_argument(
        "--store",
        action="store_true",
        help="smoke online ingest + /query against a relational store",
    )
    arguments = parser.parse_args()
    if arguments.supervised:
        sys.exit(main_supervised())
    sys.exit(main_store() if arguments.store else main())

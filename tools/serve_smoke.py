#!/usr/bin/env python
"""End-to-end smoke test of ``repro serve`` as a real OS process.

What the in-process tests cannot prove, this does: the CLI entry
point, signal handling, and socket behavior of an actual server
process.  The script

1. starts ``python -m repro serve --port 0 --workers 1 --max-queue 1``
   and reads the bound address from its stdout;
2. checks ``/healthz``;
3. segments a generated site twice — the first response must take the
   ``"pipeline"`` path, the second the ``"wrapper"`` path with
   identical records;
4. saturates the one-worker queue with held requests and expects 429s
   with a ``Retry-After`` header;
5. checks the ``serve.*`` counters on ``/metricz``;
6. sends SIGTERM and expects a graceful drain and exit code 0.

Exits non-zero on the first failed expectation.  Run from the repo
root (CI does)::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import re
import signal
import subprocess
import sys
import threading
import time

from repro.serve.client import ServeClient, payload_from_pages
from repro.sitegen.corpus import build_site

START_TIMEOUT_S = 30.0
EXIT_TIMEOUT_S = 30.0


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)
    print(f"ok: {message}")


def start_server() -> tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "1", "--max-queue", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + START_TIMEOUT_S
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            fail(f"server exited early with code {process.returncode}")
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return process, match.group(1)
    process.kill()
    fail("server never reported its address")
    raise AssertionError  # unreachable


def main() -> int:
    process, address = start_server()
    print(f"server up at {address}")
    client = ServeClient(address, timeout_s=120.0)
    try:
        health = client.healthz()
        check(health.status == 200, "/healthz answers 200")
        check(health.body["status"] == "ok", "/healthz reports ok")

        site = build_site("ohio")
        payload = payload_from_pages(
            "ohio",
            site.list_pages,
            [site.detail_pages(i) for i in range(len(site.list_pages))],
        )
        cold = client.segment(payload)
        check(cold.status == 200, "cold request answers 200")
        check(
            cold.body["path"] == "pipeline",
            "cold request takes the pipeline path",
        )
        check(cold.body["record_count"] > 0, "cold request finds records")

        warm = client.segment(payload)
        check(warm.status == 200, "warm request answers 200")
        check(
            warm.body["path"] == "wrapper",
            "warm request takes the wrapper path",
        )
        check(
            warm.body["pages"] == cold.body["pages"],
            "warm records identical to cold records",
        )

        # Saturate: 1 worker + 1 queue slot, 4 held requests.
        responses = []
        lock = threading.Lock()

        def held():
            response = client.sleep(1.0)
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=held) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        statuses = sorted(r.status for r in responses)
        check(
            statuses == [200, 200, 429, 429],
            f"saturation sheds load at the door (statuses={statuses})",
        )
        rejected = [r for r in responses if r.status == 429]
        check(
            all("Retry-After" in r.headers for r in rejected),
            "429 responses carry Retry-After",
        )

        metricz = client.metricz()
        counters = metricz.body["counters"]
        check(metricz.status == 200, "/metricz answers 200")
        check(counters.get("serve.requests", 0) >= 4, "serve.requests counted")
        check(
            counters.get("serve.wrapper_hits") == 1,
            "serve.wrapper_hits counted",
        )
        check(
            counters.get("serve.pipeline_runs") == 1,
            "serve.pipeline_runs counted",
        )
        check(counters.get("serve.rejected") == 2, "serve.rejected counted")

        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=EXIT_TIMEOUT_S)
        check(code == 0, f"graceful shutdown exits 0 (got {code})")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""CI gate: every module under ``src/repro/`` must have a docstring.

Zero-dependency (stdlib ``ast`` only — no pydocstyle).  Exits 1 and
lists the offenders when any module lacks a module-level docstring,
so undocumented entry points cannot land silently.

Usage::

    python tools/check_docstrings.py [root]

``root`` defaults to ``src/repro`` relative to the repo root (the
directory above this script's).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def missing_docstrings(root: Path) -> list[Path]:
    """Modules under ``root`` whose AST has no module docstring."""
    offenders: list[Path] = []
    for path in sorted(root.rglob("*.py")):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as error:
            print(f"{path}: syntax error while checking: {error}")
            offenders.append(path)
            continue
        if not ast.get_docstring(tree):
            offenders.append(path)
    return offenders


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    root = Path(argv[1]) if len(argv) > 1 else repo_root / "src" / "repro"
    if not root.is_dir():
        print(f"not a directory: {root}")
        return 2
    offenders = missing_docstrings(root)
    if offenders:
        print(f"{len(offenders)} module(s) missing a module docstring:")
        for path in offenders:
            print(f"  {path}")
        return 1
    checked = sum(1 for _ in root.rglob("*.py"))
    print(f"ok: all {checked} modules under {root} have docstrings")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

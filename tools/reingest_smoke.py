#!/usr/bin/env python
"""End-to-end smoke test of the live crawl lifecycle via the real CLI.

Drives the whole fetch → ingest → segment → churn → re-ingest →
invalidate loop as separate ``python -m repro`` processes, the way an
operator would:

1. exports the seeded generation-0 mixed crawl (12 slots, 14 true
   sub-sites) and ingests it into site bundles;
2. segments the bundles into a relational store (``--store``);
3. exports generation 1 of the same corpus — a few detail pages
   mutated, one template reskinned, one sub-site added, one removed —
   and re-ingests it **incrementally** into the same bundle directory,
   pointing invalidation at the store and a wrapper cache;
4. asserts the diff found carried work (``unchanged > 0``, fewer pages
   re-processed than crawled), that every stale site's store rows were
   dropped, and that the removed sub-site's bundle directory is gone;
5. re-segments the merged bundle directory expecting zero failures and
   re-populating the store;
6. proves ``/query``-visible state is clean: the store's site list has
   no removed bundle, and a broad query returns no row attributed to
   one.

Exits non-zero on the first failed expectation.  Run from the repo
root (CI does)::

    PYTHONPATH=src python tools/reingest_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

SLOTS = 12
SEED = 7


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)
    print(f"ok: {message}")


def run_cli(*args: str) -> str:
    """Run one ``python -m repro`` command, returning its stdout."""
    command = [sys.executable, "-m", "repro", *args]
    result = subprocess.run(
        command, capture_output=True, text=True, timeout=300
    )
    if result.returncode != 0:
        print(result.stdout)
        print(result.stderr, file=sys.stderr)
        fail(f"{' '.join(command)} exited {result.returncode}")
    return result.stdout


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="reingest_smoke_"))
    gen0, gen1 = tmp / "gen0", tmp / "gen1"
    bundles = tmp / "bundles"
    store_db = tmp / "tables.db"
    wrapper_cache = tmp / "wrappers"

    run_cli(
        "export-corpus", str(gen0), "--mixed", str(SLOTS), "--seed", str(SEED)
    )
    first = json.loads(
        run_cli("ingest", str(gen0), "--out", str(bundles), "--json")
    )
    check(first["reconciled"], "generation-0 ingest reconciles")
    check(
        len(first["bundles"]) == 14,
        f"generation-0 ingest finds 14 bundles ({len(first['bundles'])})",
    )
    check(
        "crawl_health" in first and "diff" in first,
        "ingest --json carries the lifecycle keys (crawl_health, diff)",
    )

    segment0 = run_cli(
        "segment-dir", str(bundles), "--store", str(store_db)
    )
    check(
        "0 failed" in segment0,
        "generation-0 bundles segment into the store without failures",
    )

    churn_line = run_cli(
        "export-corpus",
        str(gen1),
        "--mixed",
        str(SLOTS),
        "--seed",
        str(SEED),
        "--generation",
        "1",
    )
    check("generation 1 churn" in churn_line, "generation-1 export reports churn")

    second = json.loads(
        run_cli(
            "ingest",
            str(gen1),
            "--out",
            str(bundles),
            "--incremental",
            "--store",
            str(store_db),
            "--wrapper-cache-dir",
            str(wrapper_cache),
            "--json",
        )
    )
    check(second["reconciled"], "incremental re-ingest reconciles")
    check(
        second["diff"]["unchanged"] > 0,
        f"diff finds unchanged pages ({second['diff']['unchanged']})",
    )
    check(
        second["reprocessed"] < second["pages"],
        f"re-ingest re-processes a subset "
        f"({second['reprocessed']}/{second['pages']} pages)",
    )
    check(
        len(second["carried"]) > 0,
        f"bundles carried forward ({len(second['carried'])})",
    )
    stale = second["stale_bundles"]
    removed = second["removed_bundles"]
    check(len(stale) > 0, f"stale bundles identified ({len(stale)})")
    check(len(removed) > 0, f"removed sub-site detected ({removed})")
    for name in removed:
        check(
            not (bundles / name).exists(),
            f"removed bundle directory {name} is gone",
        )

    invalidation = second["invalidation"]
    check(invalidation is not None, "invalidation report present in --json")
    check(
        invalidation["errors"] == [],
        "invalidation completed without errors",
    )
    check(
        invalidation["store_sites_removed"] == len(stale),
        f"every stale site's store rows dropped "
        f"({invalidation['store_sites_removed']}/{len(stale)})",
    )

    segment1 = run_cli(
        "segment-dir", str(bundles), "--store", str(store_db)
    )
    check(
        "0 failed" in segment1,
        "merged bundle directory re-segments without failures",
    )

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.store import RelationalStore, query_store

    with RelationalStore(store_db) as store:
        site_ids = {row["site_id"] for row in store.sites()}
        for name in removed:
            check(
                name not in site_ids,
                f"store no longer lists removed site {name}",
            )
        result = query_store(store, "name", limit=1000)
        hit_sites = {row["site"] for row in result.rows}
        check(
            hit_sites.isdisjoint(removed),
            "query returns no rows from removed sub-sites",
        )
        check(len(site_ids) > 0, f"surviving sites still queryable ({len(site_ids)})")

    print("reingest smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Prime a stage cache with the pre-refactor (legacy) cache keys.

The stage-graph refactor promised that existing on-disk caches stay
warm: the graph's chained key material is byte-identical to the
hand-written key tuples the pipeline built before it.  CI's
``stage-parity`` job holds that promise to account.  This tool is the
"before" half: it fills a :class:`~repro.runner.cache.StageCache` the
way the *pre-refactor* pipeline did — hand-built key tuples, values
computed by direct calls to the stage functions, the degradation
ladders replicated procedurally — without touching the stage graph
anywhere.  A graph-driven ``segment-dir`` run against the primed
cache must then report zero misses.

Usage::

    PYTHONPATH=src python tools/prime_stage_cache.py CORPUS_DIR CACHE_DIR \
        [--method csp]

where ``CORPUS_DIR`` holds sample directories (``sample.json``
manifests) as written by ``python -m repro export-corpus``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.config import METHODS, PipelineConfig
from repro.core.exceptions import (
    CspError,
    EmptyProblemError,
    InferenceError,
    InsufficientPagesError,
    TemplateNotFoundError,
)
from repro.core.results import Segmentation
from repro.csp.segmenter import CspSegmenter
from repro.extraction.extracts import extract_strings
from repro.extraction.observations import ObservationTable
from repro.prob.segmenter import ProbabilisticSegmenter
from repro.runner.cache import StageCache
from repro.template.finder import TemplateFinder, TemplateVerdict
from repro.template.model import PageTemplate
from repro.template.table_slot import resolve_table_regions
from repro.webdoc.store import load_sample


def _failed_verdict(reason: str, page_count: int) -> TemplateVerdict:
    return TemplateVerdict(
        template=PageTemplate(aligned=(), page_count=page_count),
        ok=False,
        reason=reason,
    )


def _empty_segmentation(method, table, **meta) -> Segmentation:
    return Segmentation(method=method, records=[], table=table, meta=dict(meta))


def _method_config(method: str, config: PipelineConfig):
    if method == "csp":
        return config.csp
    if method == "hybrid":
        return (config.csp, config.prob)
    return config.prob


def _make_segmenter(method: str, config: PipelineConfig):
    if method == "csp":
        return CspSegmenter(config.csp)
    if method == "hybrid":
        from repro.core.hybrid import HybridConfig, HybridSegmenter

        return HybridSegmenter(
            HybridConfig(csp=config.csp, prob=config.prob)
        )
    return ProbabilisticSegmenter(config.prob)


def prime_sample(cache: StageCache, directory: Path, method: str) -> int:
    """Prime one sample directory old-style; returns entries written."""
    config = PipelineConfig()
    sample = load_sample(directory)
    list_pages = sample.list_pages
    details = sample.detail_pages_per_list
    entries = 0

    # -- tokenize: keyed on page bytes alone ------------------------------
    for page in list_pages + [p for group in details for p in group]:
        cache.store(
            "tokenize", cache.key("tokenize", (page.html,)), page.tokens()
        )
        entries += 1

    # -- template: the legacy ladder, replicated procedurally -------------
    list_htmls = [page.html for page in list_pages]
    template_key = (list_htmls, config.template)
    if len(list_pages) == 1:
        verdict = _failed_verdict(
            "only one list page survived the crawl; template induction "
            "needs two",
            page_count=1,
        )
    else:
        try:
            verdict = TemplateFinder(config.template).find(list_pages)
        except (TemplateNotFoundError, InsufficientPagesError) as error:
            verdict = _failed_verdict(str(error), len(list_pages))
    cache.store("template", cache.key("template", template_key), verdict)
    entries += 1

    # -- per page: extracts -> observations -> segment ---------------------
    regions = resolve_table_regions(list_pages, verdict)
    for index, region in enumerate(regions):
        extracts_key = template_key + (index, config.allowed_punct)
        extracts = extract_strings(region, config.allowed_punct)
        cache.store(
            "extracts", cache.key("extracts", extracts_key), extracts
        )

        observations_key = extracts_key + (
            [page.html for page in details[index]],
            config.match,
        )
        table = ObservationTable.build(
            extracts,
            details[index],
            other_list_pages=[
                page
                for position, page in enumerate(list_pages)
                if position != index
            ],
            options=config.match,
        )
        cache.store(
            "observations",
            cache.key("observations", observations_key),
            table,
        )

        segment_key = observations_key + (
            method,
            _method_config(method, config),
        )
        if not table.observations:
            segmentation = _empty_segmentation(
                method, table, empty_problem=True
            )
        else:
            try:
                segmentation = _make_segmenter(method, config).segment(table)
            except EmptyProblemError:
                segmentation = _empty_segmentation(
                    method, table, empty_problem=True
                )
            except (InferenceError, CspError) as error:
                segmentation = _empty_segmentation(
                    method, table, segmenter_error=str(error)
                )
        cache.store(
            "segment", cache.key("segment", segment_key), segmentation
        )
        entries += 3
    return entries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("corpus", help="corpus directory of sample dirs")
    parser.add_argument("cache_dir", help="stage-cache root to prime")
    parser.add_argument(
        "--method", choices=METHODS, default="prob", help="segmenter"
    )
    args = parser.parse_args(argv)

    corpus = Path(args.corpus)
    if (corpus / "sample.json").exists():
        sample_dirs = [corpus]
    else:
        sample_dirs = sorted(
            child
            for child in corpus.iterdir()
            if (child / "sample.json").exists()
        )
    if not sample_dirs:
        print(f"error: no sample.json under {corpus}", file=sys.stderr)
        return 2

    cache = StageCache(args.cache_dir)
    total = 0
    for directory in sample_dirs:
        total += prime_sample(cache, directory, args.method)
    print(
        f"primed {total} legacy-key entries for {len(sample_dirs)} "
        f"site(s) into {args.cache_dir}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

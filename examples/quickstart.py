"""Quickstart: segment the paper's running example.

Builds the simulated Superpages site (the paper's Figure 1), runs the
probabilistic segmenter end to end, and prints the recovered records
with their column labels.  Also writes the list and detail pages to
``./quickstart_pages/`` so you can open the Figure-1 analogue in a
browser.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro import SegmentationPipeline, build_site


def main() -> None:
    site = build_site("superpages")

    # Write the Figure-1 analogue pages out for inspection.
    out_dir = Path(__file__).parent / "quickstart_pages"
    out_dir.mkdir(exist_ok=True)
    for page in site.list_pages + site.detail_pages(0):
        (out_dir / page.url).write_text(page.html, encoding="utf-8")
    print(f"wrote {len(site.list_pages) + len(site.detail_pages(0))} pages "
          f"to {out_dir}/")

    # Segment both list pages with the probabilistic method.
    pipeline = SegmentationPipeline("prob")
    run = pipeline.segment_generated_site(site)

    print(f"\ntemplate found: {run.template_verdict.ok} "
          f"({run.template_verdict.reason or 'ok'})")
    for page_run, truth in zip(run.pages, site.truth):
        segmentation = page_run.segmentation
        print(f"\n=== {page_run.page.url} "
              f"({len(truth.rows)} true records, "
              f"{segmentation.record_count} segmented, "
              f"{page_run.elapsed:.2f}s) ===")
        for record in segmentation.records:
            fields = []
            for observation in record.observations:
                column = (record.columns or {}).get(observation.seq, "?")
                fields.append(f"L{column}:{observation.extract.text}")
            print(f"  r{record.record_id}: " + " | ".join(fields))


if __name__ == "__main__":
    main()

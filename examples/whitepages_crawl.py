"""End-to-end hidden-web extraction: crawl, classify, segment, merge.

This is the paper's Section 3 vision in one script: starting from a
site's list pages, the crawler follows every link, the classifier
separates detail pages from advertisements, the segmenter aligns list
rows with their detail pages, and finally the *two views of each
record* (list row + detail page) are merged into one combined record —
"we can potentially combine the two views to get a more complete view
of the record".

Run:  python examples/whitepages_crawl.py
"""

from __future__ import annotations

from repro import SegmentationPipeline, build_site
from repro.crawl import crawl_generated_site
from repro.webdoc.html import strip_tags


def main() -> None:
    site = build_site("sprintcanada")
    print(f"crawling {site.spec.title!r} "
          f"({len(site.list_pages)} list pages)...")

    list_pages, detail_pages_per_list, crawl_results = crawl_generated_site(site)
    for result in crawl_results:
        print(f"  {result.list_page.url}: "
              f"{len(result.detail_pages)} detail pages, "
              f"{len(result.other_pages)} other pages, "
              f"{len(result.dead_links)} dead links")

    pipeline = SegmentationPipeline("csp")
    run = pipeline.segment_site(list_pages, detail_pages_per_list)

    # Merge the two views of the first few records of page 0.
    segmentation = run.pages[0].segmentation
    details = detail_pages_per_list[0]
    print("\ncombined records (list view + detail view):")
    for record in segmentation.records[:5]:
        list_view = " | ".join(record.extract_texts)
        detail_text = strip_tags(details[record.record_id].html)
        print(f"\n  r{record.record_id}")
        print(f"    list view:   {list_view}")
        print(f"    detail view: {detail_text[:110]}...")

    print(f"\nsegmented {segmentation.record_count} of "
          f"{len(site.truth[0].rows)} records on page 0")


if __name__ == "__main__":
    main()

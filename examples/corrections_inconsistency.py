"""Dirty data: how each method copes with list/detail inconsistencies.

Reproduces the paper's Michigan Corrections discussion (Section 6.3):
the status field reads "Parole" on list rows but "Parolee" on detail
pages, and the string "Parole" appears on one unrelated detail page in
a different context.  The CSP finds the strict constraints
unsatisfiable and must relax them (a partial assignment — Table 4
notes *c*, *d*), while the probabilistic model absorbs the bad
evidence through its ``d_epsilon`` floor and keeps going.

Run:  python examples/corrections_inconsistency.py
"""

from __future__ import annotations

from repro import SegmentationPipeline, build_site, score_page


def main() -> None:
    site = build_site("michigan")
    dirty_page = 1  # the page with paroled inmates

    print("Michigan Corrections, page 2: the Parole/Parolee mismatch\n")
    for method in ("csp", "prob"):
        run = SegmentationPipeline(method).segment_generated_site(site)
        page_run = run.pages[dirty_page]
        segmentation = page_run.segmentation
        score = score_page(segmentation, site.truth[dirty_page])

        print(f"--- {method} ---")
        if method == "csp":
            print(f"  relaxation level: {segmentation.meta['level'].name}")
            for attempt in segmentation.meta["attempts"]:
                print(f"    {attempt['level']}: "
                      f"wsat_satisfied={attempt['wsat_satisfied']}"
                      + (f", exact={attempt['exact']}" if "exact" in attempt else ""))
            if segmentation.unassigned:
                dropped = ", ".join(
                    repr(o.extract.text) for o in segmentation.unassigned
                )
                print(f"  dropped (partial assignment): {dropped}")
        else:
            print(f"  EM iterations: {segmentation.meta['em_iterations']}, "
                  f"D-constraint violations tolerated: "
                  f"{segmentation.meta['d_violations']}")
        print(f"  score: Cor={score.cor} InC={score.inc} "
              f"FN={score.fn} FP={score.fp} "
              f"(P={score.precision:.2f} R={score.recall:.2f})\n")

    print("The CSP is exact on clean data but brittle here; the "
          "probabilistic model trades a little precision for "
          "robustness — the paper's central comparison.")


if __name__ == "__main__":
    main()

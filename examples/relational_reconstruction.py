"""Reconstructing the relational database behind a site.

The paper's end game (Section 6.3): assign extracts to attributes and
"reconstruct the relational database behind the Web site".  This
script does the whole arc on the Allegheny County site:

1. segment the list pages (detail-page driven);
2. label columns (probabilistic labels + the CSP attribute assigner);
3. parse the detail pages into label/value attributes and merge the
   two views of every record into one relation;
4. induce a wrapper and extract a third, unseen list page with zero
   detail-page fetches.

Run:  python examples/relational_reconstruction.py
"""

from __future__ import annotations

import dataclasses

from repro import SegmentationPipeline
from repro.relational import (
    CspColumnAssigner,
    apply_column_names,
    build_table,
    column_purity,
    detail_field_pairs,
    name_columns,
)
from repro.sitegen.domains.propertytax import build_allegheny
from repro.sitegen.site import GeneratedSite
from repro.wrapper import apply_wrapper, induce_wrapper, score_wrapped_rows


def main() -> None:
    spec = dataclasses.replace(build_allegheny(), records_per_page=(20, 20, 12))
    site = GeneratedSite(spec)

    # 1. Segment with detail pages (first two list pages = the sample).
    run = SegmentationPipeline("prob").segment_site(
        site.list_pages[:2],
        [site.detail_pages(0), site.detail_pages(1)],
    )
    segmentation = run.pages[0].segmentation
    print(f"segmented {segmentation.record_count} records on page 0")

    # 2. Column quality, both ways.
    prob_purity = column_purity(segmentation, site.truth[0])
    csp_columns = CspColumnAssigner().assign(segmentation)
    csp_purity = column_purity(segmentation, site.truth[0], columns=csp_columns)
    print(f"column purity: probabilistic={prob_purity.purity:.3f}, "
          f"CSP attribute assignment={csp_purity.purity:.3f}")

    # 3. The reconstructed relation: semantic names from the detail
    # labels, then both views merged.
    table = build_table(segmentation)
    fields = detail_field_pairs(site.detail_pages(0))
    names = name_columns(table, fields)
    apply_column_names(table, names)
    table.merge_detail_fields(fields)
    print(f"\ncolumn names recovered from detail labels: {names}")
    print(f"reconstructed relation {table.shape[0]} x {table.shape[1]}:")
    print("\n".join(table.render().splitlines()[:8]))

    # 4. Wrapper reuse on the third page — no detail fetches at all.
    wrapper = induce_wrapper(run.pages[0], run.template_verdict)
    rows = apply_wrapper(wrapper, site.list_pages[2])
    correct, total = score_wrapped_rows(rows, site.truth[2])
    print(f"\nwrapper reuse on unseen page 3: {correct}/{total} records "
          f"(boundary pattern {' '.join(wrapper.boundary)})")


if __name__ == "__main__":
    main()

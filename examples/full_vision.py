"""The paper's full Section 3 vision, end to end.

    "We envision an application where the user provides a pointer to
    the top-level page — index page or a form — and the system
    automatically navigates the site, retrieving all pages,
    classifying them as list and detail pages, and extracting
    structured data from these pages."

This script is that application, over a simulated site: entry page in,
relational data out — navigation (Next-chain discovery), list/detail
classification, segmentation, column labels, and the merged two-view
relation, with zero site-specific code.

Run:  python examples/full_vision.py [site-name]
"""

from __future__ import annotations

import sys

from repro import SegmentationPipeline, build_site
from repro.crawl import SiteFetcher, discover_site
from repro.relational import build_table, detail_field_pairs


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "butler"
    site = build_site(name)
    entry = f"{name}-index.html"
    print(f"entry point: {entry}")

    # 1. Navigate: find the results chain + detail pages automatically.
    fetcher = SiteFetcher(site)
    found = discover_site(fetcher, entry)
    print(f"discovered {len(found.list_pages)} result pages "
          f"({fetcher.requests} fetches); detail counts: "
          f"{[len(d) for d in found.detail_pages_per_list]}")

    # 2. Segment.
    run = SegmentationPipeline("prob").segment_site(
        found.list_pages, found.detail_pages_per_list
    )
    print(f"template found: {run.template_verdict.ok}")

    # 3. Reconstruct the relation for the first page, both views merged.
    table = build_table(run.pages[0].segmentation)
    table.merge_detail_fields(
        detail_field_pairs(found.detail_pages_per_list[0])
    )
    print(f"\nrelation {table.shape[0]} x {table.shape[1]}:")
    print("\n".join(table.render().splitlines()[:7]))


if __name__ == "__main__":
    main()

"""The full Table 4 experiment plus the baseline league table.

Runs both paper methods and all three layout-based baselines over the
complete 12-site corpus and prints the per-site results table (the
paper's Table 4) followed by the method league table.

Run:  python examples/compare_methods.py          (full corpus, ~1 min)
      python examples/compare_methods.py ohio lee (named sites only)
"""

from __future__ import annotations

import sys

from repro import build_corpus, render_table4, run_corpus
from repro.baselines import (
    GrammarSegmenter,
    PatternSegmenter,
    TagHeuristicSegmenter,
    run_baseline_on_site,
)
from repro.core.evaluation import PageScore
from repro.sitegen.corpus import Corpus, build_site


def main() -> None:
    if len(sys.argv) > 1:
        corpus = Corpus(sites=[build_site(name) for name in sys.argv[1:]])
    else:
        corpus = build_corpus()

    print(f"running both methods over {len(corpus.sites)} sites "
          f"({corpus.total_records} records)...\n")
    result = run_corpus(corpus, methods=("prob", "csp"))
    print(render_table4(result))

    print("\nLeague table (paper methods vs layout baselines):")
    rows = [(m, result.totals(m)) for m in ("prob", "csp")]
    for baseline in (TagHeuristicSegmenter(), PatternSegmenter(), GrammarSegmenter()):
        total = PageScore()
        for site in corpus.sites:
            for page in run_baseline_on_site(site, baseline):
                total = total + page.score
        rows.append((baseline.method_name, total))
    for name, total in sorted(rows, key=lambda r: r[1].f_measure, reverse=True):
        print(f"  {name:<14} P={total.precision:.3f} "
              f"R={total.recall:.3f} F={total.f_measure:.3f}")

    clean = result.clean_pages()
    print(f"\nclean subset ({len(clean)} pages where the strict CSP solved):")
    for method in ("csp", "prob"):
        totals = result.clean_totals(method)
        print(f"  {method:<5} P={totals.precision:.2f} "
              f"R={totals.recall:.2f} F={totals.f_measure:.2f}")


if __name__ == "__main__":
    main()

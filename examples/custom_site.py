"""Define your own hidden-web site and segment it.

Shows the public site-generator API: a record schema, a site spec
with a layout and an injected inconsistency, and the segmentation +
scoring loop — everything you need to stress the segmenters on a
scenario of your own design.

Run:  python examples/custom_site.py
"""

from __future__ import annotations

from repro import SegmentationPipeline, score_page
from repro.sitegen import (
    FieldSpec,
    GeneratedSite,
    Quirks,
    RecordSchema,
    RowLayout,
    SiteRng,
    SiteSpec,
    ValueMismatch,
)


def job_title(rng: SiteRng) -> str:
    role = rng.pick(["Engineer", "Analyst", "Manager", "Designer", "Writer"])
    level = rng.pick(["Junior", "Senior", "Staff", "Lead"])
    return f"{level} {role}"


def company(rng: SiteRng) -> str:
    first = rng.pick(["Blue", "North", "Iron", "Clear", "Bright", "Summit"])
    second = rng.pick(["Forge", "Harbor", "Peak", "Field", "Works", "Line"])
    return f"{first}{second} Inc."


def salary(rng: SiteRng) -> str:
    return f"{rng.randint(55, 180)},000"


def posting_id(rng: SiteRng) -> str:
    return f"JOB-{rng.digits(5)}"


def main() -> None:
    schema = RecordSchema(
        fields=[
            FieldSpec("posting", posting_id),
            FieldSpec("title", job_title),
            FieldSpec("company", company),
            FieldSpec("salary", salary, missing_rate=0.2),
        ]
    )
    spec = SiteSpec(
        name="jobboard",
        title="Job Board",
        domain="custom",
        schema=schema,
        records_per_page=(8, 12),
        layout=RowLayout.BLOCKS,
        # Inject an inconsistency: "Remote" spelled differently on
        # detail pages (harmless here since titles never say Remote —
        # swap in your own pathology to stress the solvers).
        quirks=Quirks(
            value_mismatch=ValueMismatch(
                field="title",
                list_value="Senior Writer",
                detail_value="Sr. Writer",
                plant_record=0,
            )
        ),
        seed=2026,
        detail_labels={"posting": "Posting ID"},
    )
    site = GeneratedSite(spec)
    print(f"generated {spec.title!r}: {sum(spec.records_per_page)} records, "
          f"{len(site.urls())} pages\n")

    for method in ("csp", "prob"):
        run = SegmentationPipeline(method).segment_generated_site(site)
        for page_run, truth in zip(run.pages, site.truth):
            score = score_page(page_run.segmentation, truth)
            print(f"{method} {page_run.page.url}: "
                  f"Cor={score.cor} InC={score.inc} FN={score.fn} "
                  f"FP={score.fp}")
        first = run.pages[0].segmentation.records[0]
        print(f"  sample record: {first}\n")


if __name__ == "__main__":
    main()

"""Paper Figure 3: the hierarchical record-period model.

    "Furthermore this more complex model does in fact give us
    improvements in accuracy."  (Section 5.2.2)

This benchmark runs the probabilistic segmenter over the corpus with
and without the period model π and compares accuracy, reproducing the
paper's claim that Figure 3's hierarchy does not hurt and the learned
period matches the sites' schema widths.
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.core.evaluation import PageScore
from repro.prob.model import ProbConfig
from repro.reporting.experiment import run_corpus


def _total(corpus, use_period):
    config = PipelineConfig(prob=ProbConfig(use_period=use_period))
    result = run_corpus(corpus, methods=("prob",), config=config)
    return result.totals("prob"), result


def test_figure3_period_ablation(benchmark, corpus, capsys):
    with_period, result = benchmark.pedantic(
        lambda: _total(corpus, True), iterations=1, rounds=1
    )
    without_period, _ = _total(corpus, False)

    with capsys.disabled():
        print()
        print("Record-period model ablation (probabilistic method, 24 pages)")
        print(
            f"  Figure 3 (with pi):    P={with_period.precision:.3f} "
            f"R={with_period.recall:.3f} F={with_period.f_measure:.3f}"
        )
        print(
            f"  Figure 2 (without pi): P={without_period.precision:.3f} "
            f"R={without_period.recall:.3f} F={without_period.f_measure:.3f}"
        )
        # Learned periods on a few sites.
        for row in result.rows_for("prob"):
            if row.site in {"superpages", "allegheny", "ohio"} and row.page_index == 0:
                print(
                    f"  {row.site}: learned record length mode = "
                    f"{row.meta.get('period_mode')} "
                    f"(E[len] = {row.meta.get('expected_record_length', 0):.2f})"
                )

    assert with_period.f_measure >= without_period.f_measure - 0.02
    benchmark.extra_info["f_with_period"] = round(with_period.f_measure, 3)
    benchmark.extra_info["f_without_period"] = round(
        without_period.f_measure, 3
    )

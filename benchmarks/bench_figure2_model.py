"""Paper Figure 2: the factored probabilistic model (no period).

Figure 2 is a graphical-model diagram; its executable analogue is the
model fit itself.  This benchmark fits the Figure-2 variant
(``use_period=False``) on the Superpages example, prints the learned
structure — token-type emissions per column and the column-transition
matrix, i.e. the model's P(T|C) and P(C|C') blocks — and measures the
EM fit.
"""

from __future__ import annotations

import numpy as np

from repro.prob.model import ProbConfig
from repro.prob.segmenter import ProbabilisticSegmenter
from repro.tokens.types import TOKEN_TYPE_ORDER


def test_figure2_model_fit(benchmark, superpages_problem, capsys):
    site, table = superpages_problem
    segmenter = ProbabilisticSegmenter(ProbConfig(use_period=False))

    params, lattice = benchmark(lambda: segmenter.fit(table))

    type_names = [t.name for t in TOKEN_TYPE_ORDER]
    with capsys.disabled():
        print()
        print(f"Figure 2 model (k={params.k} columns, no period)")
        print("P(T|C): dominant token type per column")
        for column in range(params.k):
            best = int(np.argmax(params.emit[column]))
            print(
                f"  L{column}: {type_names[best]:<12} "
                f"(p={params.emit[column, best]:.2f})"
            )
        print("P(C'|C): within-record transition mass (upper triangle)")
        matrix = params.within_record_matrix()
        for column in range(params.k - 1):
            successor = int(np.argmax(matrix[column]))
            print(
                f"  L{column} -> L{successor} "
                f"(p={matrix[column, successor]:.2f}); "
                f"P(record ends|L{column})={params.start_from[column]:.2f}"
            )

    # Learned-structure sanity: emissions are proper Bernoullis and
    # the transition matrix is strictly upper triangular.
    assert np.all((params.emit > 0) & (params.emit < 1))
    assert np.allclose(np.tril(params.within_record_matrix()), 0)
    benchmark.extra_info["k"] = params.k
    benchmark.extra_info["lattice_states"] = lattice.n_states

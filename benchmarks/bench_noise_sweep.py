"""Robustness curve: inconsistency level vs. segmentation quality.

The paper contrasts the CSP's brittleness with the probabilistic
model's tolerance through anecdotes (Michigan, Canada411, Minnesota);
this sweep measures the same contrast as a curve.  A corrections-style
site gets 0..4 planted hard conflicts per page (each the Michigan
mechanism: a record's value quoted on one far, unrelated detail page),
and every method is scored at each level.

Expected shape: all methods perfect at 0; the CSP degrades roughly one
record per plant (it must drop or misplace the conflicted extract);
the probabilistic and hybrid methods degrade more slowly.
"""

from __future__ import annotations

from repro.core.evaluation import PageScore, score_page
from repro.core.pipeline import SegmentationPipeline
from repro.sitegen.sweeps import noisy_site

LEVELS = (0, 1, 2, 3, 4)
METHODS = ("csp", "prob", "hybrid")


def site_total(site, method) -> PageScore:
    run = SegmentationPipeline(method).segment_generated_site(site)
    total = PageScore()
    for page_run, truth in zip(run.pages, site.truth):
        total = total + score_page(page_run.segmentation, truth)
    return total


def test_noise_sweep(benchmark, capsys):
    sites = {plants: noisy_site(plants) for plants in LEVELS}

    def run_sweep():
        return {
            method: [site_total(sites[plants], method) for plants in LEVELS]
            for method in METHODS
        }

    curves = benchmark.pedantic(run_sweep, iterations=1, rounds=1)

    with capsys.disabled():
        print("\nF-measure vs. planted inconsistencies per page:")
        header = "plants: " + "  ".join(f"{plants:>5}" for plants in LEVELS)
        print("  " + header)
        for method in METHODS:
            series = "  ".join(
                f"{score.f_measure:5.3f}" for score in curves[method]
            )
            print(f"  {method:>6}: {series}")

    # Shape assertions: clean input is perfect for everyone, and no
    # method's curve ever rises as corruption grows... allowing tiny
    # non-monotonic wiggles from the solvers' stochastic components.
    for method in METHODS:
        assert curves[method][0].f_measure == 1.0
        assert curves[method][-1].f_measure <= curves[method][0].f_measure
    # The robustness ordering at the heaviest level: hybrid and prob
    # should not trail the bare CSP.
    heaviest = {m: curves[m][-1].f_measure for m in METHODS}
    assert heaviest["hybrid"] >= heaviest["csp"] - 0.02
    assert heaviest["prob"] >= heaviest["csp"] - 0.02

    for method in METHODS:
        benchmark.extra_info[f"f_{method}_at_{LEVELS[-1]}"] = round(
            heaviest[method], 3
        )

"""Chaos benchmark: supervised-serving availability under injected faults.

The supervisor's contract (``src/repro/serve/supervisor.py``,
docs/serving.md) is that process-level faults cost at most the dying
worker's in-flight requests — never the endpoint.  This bench
measures that contract end to end: for each fault mix a real
2-process supervised fleet is spawned (real ``python -m repro serve``
workers sharing one ``SO_REUSEPORT`` port and one disk wrapper
registry) and driven by the retrying
:class:`~repro.serve.client.ServeClient`; faults come from a seeded
:class:`~repro.serve.chaos.ChaosPlan` shipped to the workers as a
JSON file, so every run replays the same kill/hang/cache-fault
schedule.

Reported per mix: availability (fraction of requests answering 200),
client-side p50/p99 wall latency, client retries, and the
supervisor's reap/restart counters.  The floors the serving design
promises:

* **baseline / cache-fault mixes**: availability >= 99% — corrupt or
  slow reads and full-disk writes are absorbed below the HTTP surface
  entirely;
* **the default kill mix**: availability >= 99% — SIGKILLed workers
  cost only their in-flight requests, which the client's bounded
  retries ride out while the supervisor restarts the worker;
* the kill mix must actually restart workers (the fleet healed, the
  faults didn't just miss).

The hang mix has no availability floor — a hung handler *is* a lost
request (504 after deadline + grace) — but its p99 must stay bounded
by the watchdog rather than the 60 s hang duration.

Headline numbers go to ``BENCH_chaos.json`` (directory override:
``BENCH_OUT_DIR``), the robustness analogue of ``BENCH_serving.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.serve import ServeClient, payload_from_pages
from repro.serve.chaos import ChaosPlan
from repro.serve.supervisor import (
    Supervisor,
    SupervisorConfig,
    supports_reuse_port,
)

import pytest

pytestmark = pytest.mark.skipif(
    not supports_reuse_port(), reason="needs SO_REUSEPORT"
)

SITE = "ohio"
SEED = 42
PROCS = 2

#: (name, plan, timed requests, availability floor or None).
MIXES = (
    ("baseline", ChaosPlan(seed=SEED), 60, 0.99),
    ("kills", ChaosPlan(seed=SEED, kill_rate=0.04), 60, 0.99),
    ("hangs", ChaosPlan(seed=SEED, hang_rate=0.05, hang_s=60.0), 30, None),
    (
        "cache_faults",
        ChaosPlan(
            seed=SEED,
            cache_corrupt_rate=0.3,
            cache_slow_rate=0.3,
            cache_slow_s=0.05,
            disk_full_rate=0.3,
        ),
        60,
        0.99,
    ),
)

SUPERVISOR_CONFIG = SupervisorConfig(
    procs=PROCS,
    crash_budget=32,
    crash_window_s=60.0,
    backoff_base_s=0.05,
    backoff_max_s=0.5,
    heartbeat_interval_s=0.1,
    heartbeat_timeout_s=10.0,
    drain_grace_s=15.0,
)


def quantile(samples, q):
    ordered = sorted(samples)
    index = min(int(len(ordered) * q), len(ordered) - 1)
    return ordered[index]


def warm_payload(corpus):
    site = corpus.site(SITE)
    return payload_from_pages(
        SITE, site.list_pages[1:2], [site.detail_pages(1)]
    )


def full_payload(corpus):
    site = corpus.site(SITE)
    return payload_from_pages(
        SITE,
        site.list_pages,
        [site.detail_pages(i) for i in range(len(site.list_pages))],
    )


def run_mix(corpus, name, plan, requests):
    """One supervised fleet, one fault mix; returns the measurements."""
    workdir = Path(tempfile.mkdtemp(prefix=f"chaos-{name}-"))
    plan_path = workdir / "plan.json"
    plan_path.write_text(json.dumps(plan.as_dict()))

    def worker_command(spawn):
        return [
            sys.executable, "-m", "repro", "serve",
            "--port", str(spawn.port),
            "--workers", "1",
            "--max-queue", "8",
            "--deadline", "5.0",
            "--hung-grace", "0.5",
            "--wrapper-cache-dir", str(workdir / "wrappers"),
            "--chaos-plan", str(plan_path),
            "--_worker-index", str(spawn.index),
            "--_generation", str(spawn.generation),
            "--_heartbeat-fd", str(spawn.heartbeat_fd),
            "--_heartbeat-interval", str(spawn.heartbeat_interval_s),
        ]

    supervisor = Supervisor(worker_command, SUPERVISOR_CONFIG, port=0)
    supervisor.bind()  # resolve port 0 before the client needs the address
    codes: list[int] = []
    thread = threading.Thread(
        target=lambda: codes.append(supervisor.run(install_signals=False)),
        daemon=True,
    )
    thread.start()
    client = ServeClient(
        supervisor.address, timeout_s=60.0, max_retries=8,
        retry_base_s=0.1, retry_seed=SEED,
    )
    try:
        # Wait for a worker to answer, then warm the shared registry.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            try:
                if client.healthz().status == 200:
                    break
            except Exception:
                time.sleep(0.1)
        assert client.segment(full_payload(corpus)).status == 200

        payload = warm_payload(corpus)
        statuses: list[int] = []
        latencies: list[float] = []
        for _ in range(requests):
            started = time.perf_counter()
            try:
                status = client.segment(payload).status
            except Exception:
                status = 0
            latencies.append(time.perf_counter() - started)
            statuses.append(status)

        ok = sum(1 for status in statuses if status == 200)
        counters = supervisor.metrics.as_dict()["counters"]
        return {
            "requests": requests,
            "availability": round(ok / requests, 4),
            "p50_s": round(statistics.median(latencies), 4),
            "p99_s": round(quantile(latencies, 0.99), 4),
            "client_retries": client.retries,
            "worker_reaps": counters.get("serve.supervisor.reaps", 0),
            "worker_restarts": counters.get("serve.supervisor.restarts", 0),
        }
    finally:
        supervisor.stop()
        thread.join(timeout=60.0)


def test_availability_under_chaos(corpus, benchmark, capsys):
    def run_all():
        return {
            name: run_mix(corpus, name, plan, requests)
            for name, plan, requests, _ in MIXES
        }

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)

    for name, _, _, floor in MIXES:
        row = results[name]
        if floor is not None:
            assert row["availability"] >= floor, (
                f"{name}: availability {row['availability']} "
                f"below the {floor} floor ({row})"
            )
    # The kill mix must have exercised the healing path, and a hang
    # must end at the watchdog's 504, not ride the 60 s sleep.
    assert results["kills"]["worker_restarts"] >= 1
    assert results["hangs"]["p99_s"] < 30.0

    summary = {
        "site": SITE,
        "seed": SEED,
        "procs": PROCS,
        "mixes": results,
    }
    out_dir = Path(os.environ.get("BENCH_OUT_DIR", "."))
    out_path = out_dir / "BENCH_chaos.json"
    out_path.write_text(json.dumps(summary, indent=2) + "\n")
    for name, row in results.items():
        benchmark.extra_info[f"availability_{name}"] = row["availability"]
        benchmark.extra_info[f"restarts_{name}"] = row["worker_restarts"]

    with capsys.disabled():
        print(f"\nsupervised serving under chaos ({PROCS} procs, seed {SEED}):")
        header = (
            f"  {'mix':<14} {'avail':>7} {'p50':>8} {'p99':>8} "
            f"{'retries':>8} {'reaps':>6} {'restarts':>9}"
        )
        print(header)
        for name, row in results.items():
            print(
                f"  {name:<14} {row['availability']:>7.4f} "
                f"{row['p50_s']:>7.3f}s {row['p99_s']:>7.3f}s "
                f"{row['client_retries']:>8} {row['worker_reaps']:>6} "
                f"{row['worker_restarts']:>9}"
            )
        print(f"  wrote {out_path}")

"""Paper Section 6.1's timing claim.

    "The CSP and probabilistic algorithms were exceedingly fast,
    taking only a few seconds to run in all cases."

Benchmarks per-page segmentation time for both methods on a clean site
and on a dirty site (where the CSP climbs the relaxation ladder — the
slowest path in the system).

Also home of CI's **perf-smoke** regression gate
(:func:`test_perf_smoke_tokens_per_second`): a two-site serial run
whose tokens/sec must stay within 30% of the ``perf_smoke`` baseline
committed in ``BENCH_scaling.json``.  Re-record the baseline (after an
intentional perf change, on a quiet machine) with::

    PERF_SMOKE_RECORD=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_timing.py -k perf_smoke -q

See ``docs/performance.md`` for how to read the headline numbers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter

import pytest

from repro.core.pipeline import SegmentationPipeline

#: The clean/dirty pair the smoke gate runs (a subset of the corpus so
#: the CI job stays under a minute).
SMOKE_SITES = ("allegheny", "michigan")

#: The committed headline file holding the ``perf_smoke`` baseline.
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"

#: Allowed wall-clock regression before the gate fails.
SMOKE_TOLERANCE = 0.30


def site_tokens(site) -> int:
    """Total token count of a site's list and detail pages."""
    details = [site.detail_pages(i) for i in range(len(site.list_pages))]
    pages = site.list_pages + [page for group in details for page in group]
    return sum(len(page.tokens()) for page in pages)


@pytest.mark.parametrize("method", ["prob", "csp"])
@pytest.mark.parametrize("site_name", ["allegheny", "michigan"])
def test_per_site_timing(benchmark, corpus, method, site_name, capsys):
    site = corpus.site(site_name)
    pipeline = SegmentationPipeline(method)

    run = benchmark.pedantic(
        lambda: pipeline.segment_generated_site(site),
        iterations=1,
        rounds=3,
    )

    slowest = max(page_run.elapsed for page_run in run.pages)
    with capsys.disabled():
        print(
            f"\n{site_name}/{method}: slowest page "
            f"{slowest:.2f}s over {len(run.pages)} pages"
        )
    # "a few seconds" — generous bound for CI machines.
    assert slowest < 20.0
    benchmark.extra_info["slowest_page_seconds"] = round(slowest, 3)


def test_perf_smoke_tokens_per_second(corpus, capsys):
    """Serial csp tokens/sec on the smoke pair vs. the committed baseline.

    With ``PERF_SMOKE_RECORD=1`` the measurement is written into
    ``BENCH_scaling.json`` as the new baseline instead of asserted.
    """
    sites = [corpus.site(name) for name in SMOKE_SITES]
    tokens = sum(site_tokens(site) for site in sites)

    pipeline = SegmentationPipeline("csp")
    started = perf_counter()
    for site in sites:
        pipeline.segment_generated_site(site)
    elapsed = perf_counter() - started
    tokens_per_s = tokens / elapsed

    with capsys.disabled():
        print(
            f"\nperf-smoke ({'+'.join(SMOKE_SITES)}, csp): "
            f"{tokens:,} tokens in {elapsed:.2f}s "
            f"= {tokens_per_s:,.0f} tokens/s"
        )

    data = json.loads(BASELINE_PATH.read_text())
    if os.environ.get("PERF_SMOKE_RECORD") == "1":
        data["perf_smoke"] = {
            "sites": list(SMOKE_SITES),
            "method": "csp",
            "tokens": tokens,
            "serial_s": round(elapsed, 3),
            "tokens_per_s": round(tokens_per_s, 1),
        }
        BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
        with capsys.disabled():
            print(f"  recorded baseline into {BASELINE_PATH}")
        return

    baseline = data.get("perf_smoke")
    if not baseline:
        pytest.skip("no perf_smoke baseline in BENCH_scaling.json yet")
    floor = baseline["tokens_per_s"] * (1.0 - SMOKE_TOLERANCE)
    assert tokens_per_s >= floor, (
        f"tokens/sec regressed more than {SMOKE_TOLERANCE:.0%}: "
        f"{tokens_per_s:,.0f} < floor {floor:,.0f} "
        f"(baseline {baseline['tokens_per_s']:,.0f})"
    )

"""Paper Section 6.1's timing claim.

    "The CSP and probabilistic algorithms were exceedingly fast,
    taking only a few seconds to run in all cases."

Benchmarks per-page segmentation time for both methods on a clean site
and on a dirty site (where the CSP climbs the relaxation ladder — the
slowest path in the system).
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import SegmentationPipeline


@pytest.mark.parametrize("method", ["prob", "csp"])
@pytest.mark.parametrize("site_name", ["allegheny", "michigan"])
def test_per_site_timing(benchmark, corpus, method, site_name, capsys):
    site = corpus.site(site_name)
    pipeline = SegmentationPipeline(method)

    run = benchmark.pedantic(
        lambda: pipeline.segment_generated_site(site),
        iterations=1,
        rounds=3,
    )

    slowest = max(page_run.elapsed for page_run in run.pages)
    with capsys.disabled():
        print(
            f"\n{site_name}/{method}: slowest page "
            f"{slowest:.2f}s over {len(run.pages)} pages"
        )
    # "a few seconds" — generous bound for CI machines.
    assert slowest < 20.0
    benchmark.extra_info["slowest_page_seconds"] = round(slowest, 3)

"""Paper Table 3: positions of extracts on detail pages.

Renders the position matrix for the Superpages example and benchmarks
position-group extraction, the input to the Section 4.2 position
constraints.
"""

from __future__ import annotations

from repro.reporting.tables import render_position_table


def test_table3_positions(benchmark, superpages_problem, capsys):
    site, table = superpages_problem

    groups = benchmark(lambda: table.position_groups(min_size=2))

    with capsys.disabled():
        print()
        print(render_position_table(table))
        print(f"{len(groups)} shared-position groups (constraint sources)")

    # Every group member's observation really was seen at that cell.
    for group in groups:
        for seq in group.members:
            observation = table.observations[seq]
            assert group.detail_page in observation.detail_pages
            assert group.position in observation.positions[group.detail_page]
    benchmark.extra_info["groups"] = len(groups)

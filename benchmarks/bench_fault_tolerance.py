"""Chaos benchmark: transient-fault rate vs. accuracy and retry cost.

The paper's crawl step is assumed perfect ("retrieving all pages",
Section 3); this sweep measures what the resilient retrieval layer
buys when it isn't.  One corrections-domain site is crawled through a
seeded :class:`~repro.sitegen.faults.FaultPlan` at increasing
transient-failure rates and segmented from whatever the crawl
obtained.  Reported per rate: segmentation F-measure, retry overhead
(extra requests per page obtained), transient recovery rate, and gaps.

Expected shape: retries climb roughly linearly with the fault rate
while F-measure stays flat — the whole point of the retry layer —
with recovery >= 90% everywhere and bit-identical health reports on
repeated runs (the fault plan and jitter are fully deterministic).
"""

from __future__ import annotations

from repro.core.evaluation import PageScore, score_page
from repro.core.pipeline import SegmentationPipeline
from repro.sitegen.corpus import build_site
from repro.sitegen.faults import FaultPlan

RATES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
SITE = "ohio"
METHOD = "prob"
SEED = 42


def chaos_run(rate: float):
    """Crawl + segment one site at one transient-fault rate."""
    site = build_site(SITE)
    pipeline = SegmentationPipeline(METHOD)
    run = pipeline.segment_generated_site(
        site, fault_plan=FaultPlan(seed=SEED, transient_rate=rate)
    )
    truth_by_url = {
        site.list_pages[truth.page_index].url: truth for truth in site.truth
    }
    total = PageScore()
    for page_run in run.pages:
        total = total + score_page(
            page_run.segmentation, truth_by_url[page_run.page.url]
        )
    return total, run.crawl_health


def test_fault_tolerance_sweep(benchmark, capsys):
    def run_sweep():
        return {rate: chaos_run(rate) for rate in RATES}

    results = benchmark.pedantic(run_sweep, iterations=1, rounds=1)

    rows = []
    for rate in RATES:
        score, health = results[rate]
        pages_obtained = health.requests - health.retries - health.gap_count
        overhead = health.retries / pages_obtained if pages_obtained else 0.0
        rows.append(
            {
                "rate": rate,
                "f_measure": round(score.f_measure, 3),
                "requests": health.requests,
                "retries": health.retries,
                "retry_overhead": round(overhead, 3),
                "recovery_rate": round(health.recovery_rate, 3),
                "gaps": health.gap_count,
                "quarantined": len(health.quarantined_pages),
            }
        )

    with capsys.disabled():
        print(f"\nFault tolerance sweep ({SITE}, {METHOD}, seed {SEED}):")
        print(
            "  rate   F      req  retry  overhead  recovery  gaps  quar"
        )
        for row in rows:
            print(
                f"  {row['rate']:.2f}  {row['f_measure']:5.3f}  "
                f"{row['requests']:4d}  {row['retries']:5d}  "
                f"{row['retry_overhead']:8.3f}  {row['recovery_rate']:8.3f}  "
                f"{row['gaps']:4d}  {row['quarantined']:4d}"
            )

    # The retry layer's contract: a rate-0 crawl reproduces the
    # pristine sample bit-for-bit, accuracy holds while retries absorb
    # the faults, transients recover, and chaos is reproducible.
    site = build_site(SITE)
    pristine = SegmentationPipeline(METHOD).segment_generated_site(site)
    pristine_total = PageScore()
    for page_run, truth in zip(pristine.pages, site.truth):
        pristine_total = pristine_total + score_page(
            page_run.segmentation, truth
        )
    baseline = results[0.0][0].f_measure
    assert baseline == pristine_total.f_measure
    for row in rows:
        assert row["recovery_rate"] >= 0.9
        assert row["f_measure"] >= baseline - 0.1
    assert rows[-1]["retries"] > rows[0]["retries"]

    _, health_a = chaos_run(0.3)
    _, health_b = chaos_run(0.3)
    assert health_a.as_dict() == health_b.as_dict()

    for row in rows:
        rate_key = f"{row['rate']:.2f}"
        benchmark.extra_info[f"f_at_{rate_key}"] = row["f_measure"]
        benchmark.extra_info[f"retry_overhead_at_{rate_key}"] = row[
            "retry_overhead"
        ]
        benchmark.extra_info[f"gaps_at_{rate_key}"] = row["gaps"]

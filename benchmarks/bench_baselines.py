"""Baseline comparison (the paper's Sections 1, 2 and 6.3 discussion).

The paper argues that layout-based approaches — naive tag splitting,
IEPAD-style repeated-pattern mining, RoadRunner-style union-free
grammars — cannot handle the variability of real list pages, and that
content-based segmentation (its contribution) can.  This benchmark
puts all five methods on the same corpus and prints the league table.
"""

from __future__ import annotations

import pytest

from repro.baselines.grammar import GrammarSegmenter
from repro.baselines.pat_tree import PatternSegmenter
from repro.baselines.runner import run_baseline_on_site
from repro.baselines.tag_heuristic import TagHeuristicSegmenter
from repro.core.evaluation import PageScore
from repro.reporting.experiment import run_corpus

BASELINES = {
    "tag-heuristic": TagHeuristicSegmenter,
    "pat-tree": PatternSegmenter,
    "grammar": GrammarSegmenter,
}


def baseline_total(corpus, factory):
    total = PageScore()
    for site in corpus.sites:
        for row in run_baseline_on_site(site, factory()):
            total = total + row.score
    return total


@pytest.mark.parametrize("name", sorted(BASELINES))
def test_baseline_corpus_run(benchmark, corpus, name, capsys):
    total = benchmark.pedantic(
        lambda: baseline_total(corpus, BASELINES[name]),
        iterations=1,
        rounds=1,
    )
    with capsys.disabled():
        print(
            f"\n{name}: P={total.precision:.3f} R={total.recall:.3f} "
            f"F={total.f_measure:.3f}"
        )
    benchmark.extra_info["f_measure"] = round(total.f_measure, 3)


def test_league_table(benchmark, corpus, capsys):
    """All five methods, one table."""
    result = benchmark.pedantic(
        lambda: run_corpus(corpus, methods=("prob", "csp")),
        iterations=1,
        rounds=1,
    )
    rows = [
        (method, result.totals(method)) for method in ("prob", "csp")
    ] + [
        (name, baseline_total(corpus, factory))
        for name, factory in sorted(BASELINES.items())
    ]
    with capsys.disabled():
        print("\nMethod league table (309 records, 24 pages):")
        for name, total in sorted(
            rows, key=lambda item: item[1].f_measure, reverse=True
        ):
            print(
                f"  {name:<14} P={total.precision:.3f} "
                f"R={total.recall:.3f} F={total.f_measure:.3f}"
            )
    by_name = dict(rows)
    # The paper's thesis: content-based methods beat every
    # layout-based baseline.
    for paper_method in ("prob", "csp"):
        for baseline in BASELINES:
            assert (
                by_name[paper_method].f_measure
                > by_name[baseline].f_measure
            )

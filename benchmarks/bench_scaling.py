"""Scaling curve: records per page vs. per-page segmentation time.

The paper's timing claim ("a few seconds to run in all cases",
Sections 5.2.3 and 6.1) is asserted at its scale of 3-25 records per
page; this sweep extends the curve to 60 to show both methods stay
tractable well beyond it — the content-based premise ("the number of
text strings on a typical Web page is very small compared to the
number of HTML tags; therefore, inference algorithms that rely on
content will be much faster") in numbers.
"""

from __future__ import annotations

from time import perf_counter

from repro.core.evaluation import score_page
from repro.core.pipeline import SegmentationPipeline
from repro.sitegen.sweeps import sized_site

SIZES = (10, 20, 40, 60)


def test_scaling_sweep(benchmark, capsys):
    sites = {size: sized_site(size) for size in SIZES}

    def run_sweep():
        results = {}
        for method in ("csp", "prob"):
            pipeline = SegmentationPipeline(method)
            times, correct, total = [], 0, 0
            for size in SIZES:
                site = sites[size]
                started = perf_counter()
                run = pipeline.segment_generated_site(site)
                times.append((perf_counter() - started) / len(run.pages))
                for page_run, truth in zip(run.pages, site.truth):
                    score = score_page(page_run.segmentation, truth)
                    correct += score.cor
                    total += len(truth.rows)
            results[method] = (times, correct, total)
        return results

    results = benchmark.pedantic(run_sweep, iterations=1, rounds=1)

    with capsys.disabled():
        print("\nseconds per list page vs. records per page (clean grid):")
        print("  records: " + "  ".join(f"{size:>6}" for size in SIZES))
        for method, (times, correct, total) in results.items():
            series = "  ".join(f"{seconds:6.2f}" for seconds in times)
            print(f"  {method:>7}: {series}   ({correct}/{total} correct)")

    for method, (times, correct, total) in results.items():
        # Quality holds across the whole range...
        assert correct >= total - 2
        # ...and every page stays within "a few seconds".
        assert max(times) < 20.0
        benchmark.extra_info[f"{method}_seconds_at_{SIZES[-1]}"] = round(
            times[-1], 2
        )

"""Scaling: per-page cost curve, and batch-runner speedups.

Two angles on "runs as fast as the hardware allows":

* the original sweep — records per page vs. per-page segmentation
  time, extending the paper's timing claim ("a few seconds to run in
  all cases", Sections 5.2.3 and 6.1) from its 3-25 records to 60;
* the batch-execution engine — an 8-site generated corpus through
  :mod:`repro.runner` serially, on a 2-worker pool, and warm from the
  content-addressed stage cache.  Asserted invariants: parallel and
  warm results are digest-identical to the serial reference, the warm
  run does zero recomputation, and warm wall-clock beats cold serial
  by >= 5x.  A parallel wall-clock win is asserted only when the
  machine actually has >1 core.

The headline numbers are written to ``BENCH_scaling.json`` (override
the directory with ``BENCH_OUT_DIR``) so the perf trajectory is
machine-readable across PRs.  Besides wall-clock splits the file
carries two throughput headlines — ``tokens_per_s`` (corpus tokens
processed per serial second) and ``sites_per_min`` — plus the
``perf_smoke`` baseline that CI's perf-smoke job regresses against
(see ``bench_timing.py`` and ``docs/performance.md``).
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from time import perf_counter

from repro.core.evaluation import score_page
from repro.core.pipeline import SegmentationPipeline
from repro.sitegen.sweeps import sized_site

SIZES = (10, 20, 40, 60)

#: The >= 8-site corpus the batch benchmarks run over.
BATCH_SITES = (
    "amazon",
    "bnbooks",
    "allegheny",
    "butler",
    "lee",
    "michigan",
    "minnesota",
    "ohio",
)


def test_scaling_sweep(benchmark, capsys):
    sites = {size: sized_site(size) for size in SIZES}

    def run_sweep():
        results = {}
        for method in ("csp", "prob"):
            pipeline = SegmentationPipeline(method)
            times, correct, total = [], 0, 0
            for size in SIZES:
                site = sites[size]
                started = perf_counter()
                run = pipeline.segment_generated_site(site)
                times.append((perf_counter() - started) / len(run.pages))
                for page_run, truth in zip(run.pages, site.truth):
                    score = score_page(page_run.segmentation, truth)
                    correct += score.cor
                    total += len(truth.rows)
            results[method] = (times, correct, total)
        return results

    results = benchmark.pedantic(run_sweep, iterations=1, rounds=1)

    with capsys.disabled():
        print("\nseconds per list page vs. records per page (clean grid):")
        print("  records: " + "  ".join(f"{size:>6}" for size in SIZES))
        for method, (times, correct, total) in results.items():
            series = "  ".join(f"{seconds:6.2f}" for seconds in times)
            print(f"  {method:>7}: {series}   ({correct}/{total} correct)")

    for method, (times, correct, total) in results.items():
        # Quality holds across the whole range...
        assert correct >= total - 2
        # ...and every page stays within "a few seconds".
        assert max(times) < 20.0
        benchmark.extra_info[f"{method}_seconds_at_{SIZES[-1]}"] = round(
            times[-1], 2
        )


def test_batch_runner_parallel_and_cache(benchmark, tmp_path, capsys):
    """Serial vs. parallel vs. cache-warm wall clock on an 8-site corpus.

    This is the acceptance gate for the batch-execution engine: the
    parallel and warm runs must be digest-identical to the serial
    reference, and the warm run must be >= 5x faster than cold serial
    (it reads cached segmentations instead of solving CSPs).
    """
    from repro.runner import BatchRunner, RunnerConfig, tasks_from_directory
    from repro.webdoc.store import save_sample
    from repro.sitegen.corpus import build_site

    corpus_dir = tmp_path / "corpus"
    corpus_tokens = 0
    for name in BATCH_SITES:
        site = build_site(name)
        details = [site.detail_pages(i) for i in range(len(site.list_pages))]
        corpus_tokens += sum(
            len(page.tokens())
            for page in site.list_pages + [p for group in details for p in group]
        )
        save_sample(corpus_dir / name, name, site.list_pages, details)
    tasks = tasks_from_directory(corpus_dir, method="csp")
    assert len(tasks) >= 8
    cache_dir = tmp_path / "cache"

    def timed(config):
        started = perf_counter()
        batch = BatchRunner(config).run(tasks)
        return perf_counter() - started, batch

    def run_matrix():
        shutil.rmtree(cache_dir, ignore_errors=True)
        serial_s, serial = timed(RunnerConfig(workers=1))
        parallel_s, parallel = timed(
            RunnerConfig(workers=2, cache_dir=str(cache_dir))
        )
        warm_s, warm = timed(
            RunnerConfig(workers=1, cache_dir=str(cache_dir))
        )
        return {
            "serial_s": serial_s,
            "parallel_cold_s": parallel_s,
            "warm_s": warm_s,
            "batches": (serial, parallel, warm),
        }

    result = benchmark.pedantic(run_matrix, iterations=1, rounds=1)
    serial, parallel, warm = result["batches"]
    serial_s = result["serial_s"]
    parallel_s = result["parallel_cold_s"]
    warm_s = result["warm_s"]
    cores = os.cpu_count() or 1

    # Correctness: every execution mode produces the same content.
    assert serial.by_status() == {"ok": len(tasks)}
    assert parallel.by_status() == {"ok": len(tasks)}
    assert serial.digest() == parallel.digest() == warm.digest()
    # The warm run recomputed nothing...
    assert warm.cache_misses == 0
    assert warm.cache_hits > 0
    # ...and cache hits beat recomputation by a wide margin.
    warm_speedup = serial_s / warm_s
    assert warm_speedup >= 5.0, (
        f"warm run only {warm_speedup:.1f}x faster "
        f"({serial_s:.2f}s -> {warm_s:.2f}s)"
    )
    if cores > 1:  # a 1-core box cannot show a parallel win
        assert parallel_s < serial_s * 1.10

    summary = {
        "sites": len(tasks),
        "method": "csp",
        "workers": 2,
        "cores": cores,
        "serial_s": round(serial_s, 3),
        "parallel_cold_s": round(parallel_s, 3),
        "warm_s": round(warm_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "warm_speedup": round(warm_speedup, 2),
        "warm_cache_hits": warm.cache_hits,
        # Throughput headlines (see docs/performance.md for how to
        # read them): corpus tokens per serial second, sites per
        # serial minute.
        "corpus_tokens": corpus_tokens,
        "tokens_per_s": round(corpus_tokens / serial_s, 1),
        "sites_per_min": round(len(tasks) * 60.0 / serial_s, 2),
    }
    out_dir = Path(os.environ.get("BENCH_OUT_DIR", "."))
    out_path = out_dir / "BENCH_scaling.json"
    if out_path.exists():
        # The perf_smoke baseline is owned by bench_timing.py's
        # recording mode; rewriting the headline file must not drop it.
        previous = json.loads(out_path.read_text())
        if "perf_smoke" in previous:
            summary["perf_smoke"] = previous["perf_smoke"]
    out_path.write_text(json.dumps(summary, indent=2) + "\n")
    benchmark.extra_info.update(summary)

    with capsys.disabled():
        print("\nbatch runner, 8-site corpus (csp):")
        print(
            f"  serial {serial_s:6.2f}s   parallel(2w) {parallel_s:6.2f}s "
            f"  warm {warm_s:6.2f}s   warm speedup {warm_speedup:.1f}x"
        )
        print(
            f"  throughput {summary['tokens_per_s']:,.0f} tokens/s   "
            f"{summary['sites_per_min']:.1f} sites/min"
        )
        print(f"  wrote {out_path}")

"""Paper Section 6.3's clean-subset numbers.

    "If we excluded from consideration those Web pages for which the
    CSP algorithm could not find a solution, performance metrics on
    the remaining 17 pages were P=0.99, R=0.92 and F=0.95. ...  On
    the same 17 pages, [the probabilistic approach's] performance was
    P=0.78, R=1.0 and F=0.88."

The subset is derived the same way here: pages whose strict CSP
problem was solved without relaxation.
"""

from __future__ import annotations

from repro.reporting.experiment import run_corpus

PAPER_CLEAN = {
    "csp": {"precision": 0.99, "recall": 0.92, "f": 0.95},
    "prob": {"precision": 0.78, "recall": 1.0, "f": 0.88},
}


def test_clean_subset(benchmark, corpus, capsys):
    result = benchmark.pedantic(
        lambda: run_corpus(corpus, methods=("prob", "csp")),
        iterations=1,
        rounds=1,
    )
    clean = result.clean_pages()
    with capsys.disabled():
        print()
        print(
            f"clean subset: {len(clean)} of "
            f"{len(result.rows_for('csp'))} pages "
            "(pages where the strict CSP found a solution; paper: 17 of 24)"
        )
        for method in ("csp", "prob"):
            totals = result.clean_totals(method)
            paper = PAPER_CLEAN[method]
            print(
                f"  {method:4s} measured P={totals.precision:.2f} "
                f"R={totals.recall:.2f} F={totals.f_measure:.2f} | paper "
                f"P={paper['precision']:.2f} R={paper['recall']:.2f} "
                f"F={paper['f']:.2f}"
            )

    assert 10 <= len(clean) <= 20
    for method in ("csp", "prob"):
        totals = result.clean_totals(method)
        # On clean pages both methods are at least as good as the
        # paper's clean-subset F.
        assert totals.f_measure >= PAPER_CLEAN[method]["f"]
    benchmark.extra_info["clean_pages"] = len(clean)

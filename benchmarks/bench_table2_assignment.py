"""Paper Table 2: assignment of extracts to records.

Solves the Superpages example with the CSP segmenter (the mechanism
the paper's Table 2 illustrates) and renders the assignment matrix.
The benchmark measures the full encode + WSAT(OIP) solve.
"""

from __future__ import annotations

from repro.core.evaluation import score_page
from repro.csp.relaxation import RelaxationLevel
from repro.csp.segmenter import CspSegmenter
from repro.reporting.tables import render_assignment_table


def test_table2_assignment(benchmark, superpages_problem, capsys):
    site, table = superpages_problem

    segmentation = benchmark(lambda: CspSegmenter().segment(table))

    with capsys.disabled():
        print()
        print(render_assignment_table(segmentation))

    # The running example's data is clean: solved at the strict rung,
    # every record recovered exactly.
    assert segmentation.meta["level"] is RelaxationLevel.STRICT
    score = score_page(segmentation, site.truth[0])
    assert score.cor == len(site.truth[0].rows)
    benchmark.extra_info["records"] = segmentation.record_count
    benchmark.extra_info["constraints"] = segmentation.meta[
        "constraint_stats"
    ]["constraints"]

"""Paper Table 4: the main experiment.

Runs both segmenters over the full 12-site corpus (two list pages per
site), prints the per-site Cor/InC/FN/FP table with the paper's note
letters, and reports aggregate precision/recall/F next to the paper's
published numbers.

Paper aggregates: probabilistic P=0.74 R=0.99 F=0.85;
CSP P=0.85 R=0.84 F=0.84.  Our simulated corpus reproduces the
qualitative shape (which sites fail, who tolerates inconsistencies,
method ordering on precision) with higher absolute scores — see
EXPERIMENTS.md for the per-cell discussion.
"""

from __future__ import annotations

import pytest

from repro.reporting.experiment import run_corpus
from repro.reporting.tables import render_table4

PAPER_AGGREGATES = {
    "prob": {"precision": 0.74, "recall": 0.99, "f": 0.85},
    "csp": {"precision": 0.85, "recall": 0.84, "f": 0.84},
}


@pytest.mark.parametrize("method", ["prob", "csp"])
def test_table4_per_method(benchmark, corpus, method, capsys):
    result = benchmark.pedantic(
        lambda: run_corpus(corpus, methods=(method,)),
        iterations=1,
        rounds=1,
    )
    totals = result.totals(method)
    paper = PAPER_AGGREGATES[method]
    with capsys.disabled():
        print()
        print(render_table4(result))
        print(
            f"{method}: measured P={totals.precision:.2f} "
            f"R={totals.recall:.2f} F={totals.f_measure:.2f} | paper "
            f"P={paper['precision']:.2f} R={paper['recall']:.2f} "
            f"F={paper['f']:.2f}"
        )
    # The shape claim: at least the paper's own aggregate quality.
    assert totals.f_measure >= paper["f"]
    benchmark.extra_info["precision"] = round(totals.precision, 3)
    benchmark.extra_info["recall"] = round(totals.recall, 3)
    benchmark.extra_info["f_measure"] = round(totals.f_measure, 3)


def test_table4_combined_rendering(benchmark, corpus, capsys):
    """Both methods side by side, as in the paper's layout."""
    result = benchmark.pedantic(
        lambda: run_corpus(corpus, methods=("prob", "csp")),
        iterations=1,
        rounds=1,
    )
    with capsys.disabled():
        print()
        print(render_table4(result))

    # Table 4's qualitative anatomy:
    # 1. template notes on exactly the paper's five sites;
    flagged = {r.site for r in result.rows_for("csp") if "a" in r.notes}
    assert flagged == {"amazon", "bnbooks", "minnesota", "yahoo", "superpages"}
    # 2. relaxation on the inconsistency-bearing sites only;
    relaxed = {r.site for r in result.rows_for("csp") if "d" in r.notes}
    assert {"michigan", "minnesota", "canada411"} <= relaxed
    assert not relaxed & {"allegheny", "butler", "lee", "ohio"}
    # 3. the probabilistic method never needs relaxation.
    assert all("d" not in r.notes for r in result.rows_for("prob"))

"""Ingestion front-door benchmark: bundle precision/recall and pages/sec.

Builds the acceptance-scale mixed crawl — 40 site slots (48 true
sub-sites once the multi-template slots split), 1300+ pages, more
than a quarter of them distractors (forms, portals, ads, orphans) —
and runs the full fingerprint → classify → cluster → bundle path over
the anonymous page soup.

Asserted invariants: the corpus meets the acceptance floor (1000+
pages, 40+ sites, >= 25% distractors), every input page is accounted
for (bundled + quarantined == pages), and the recovered bundles score
at least 0.95 precision and 0.90 recall against the generator's
ground truth.

Headlines land in ``BENCH_ingest.json`` (override the directory with
``BENCH_OUT_DIR``): ``bundle_precision``, ``bundle_recall`` and
``ingest_pages_per_s`` — see ``docs/ingestion.md`` for how to read
them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter

from repro.ingest import ingest_pages
from repro.sitegen.mixed import MixedCorpusSpec, build_mixed_corpus, score_bundles

SPEC = MixedCorpusSpec(sites=40, seed=20260807)


def test_ingest_mixed_crawl(benchmark, capsys):
    corpus = build_mixed_corpus(SPEC)
    assert corpus.page_count >= 1000
    assert len(corpus.sites) >= 40
    assert corpus.distractor_ratio >= 0.25

    def run_all():
        started = perf_counter()
        report = ingest_pages(corpus.pages)
        ingest_s = perf_counter() - started

        assert report.reconciles(), "page accounting must reconcile"
        score = score_bundles(
            corpus.sites,
            [(bundle.name, bundle.page_urls()) for bundle in report.bundles],
        )
        assert score.precision >= 0.95, f"precision {score.precision:.4f}"
        assert score.recall >= 0.90, f"recall {score.recall:.4f}"
        return report, score, ingest_s

    report, score, ingest_s = benchmark.pedantic(
        run_all, iterations=1, rounds=1
    )

    summary = {
        "pages": corpus.page_count,
        "sites": len(corpus.sites),
        "distractor_ratio": round(corpus.distractor_ratio, 4),
        "clusters": report.cluster_count,
        "bundles": len(report.bundles),
        "bundled_pages": report.bundled_page_count,
        "quarantined_pages": len(report.quarantined),
        "bundle_precision": round(score.precision, 4),
        "bundle_recall": round(score.recall, 4),
        "exact_bundles": score.exact_bundles,
        "ingest_s": round(ingest_s, 3),
        "ingest_pages_per_s": round(corpus.page_count / ingest_s, 1),
    }
    out_dir = Path(os.environ.get("BENCH_OUT_DIR", "."))
    out_path = out_dir / "BENCH_ingest.json"
    out_path.write_text(json.dumps(summary, indent=2) + "\n")
    benchmark.extra_info.update(summary)

    with capsys.disabled():
        print(
            f"\ningestion front door, {summary['pages']}-page mixed crawl "
            f"({summary['sites']} true sites, "
            f"{summary['distractor_ratio']:.0%} distractors):"
        )
        print(
            f"  {summary['bundles']} bundles "
            f"({summary['exact_bundles']} exact)   "
            f"precision {summary['bundle_precision']:.4f}   "
            f"recall {summary['bundle_recall']:.4f}"
        )
        print(
            f"  {summary['ingest_pages_per_s']:,.0f} pages/s "
            f"({summary['ingest_s']:.2f}s total, "
            f"{summary['clusters']} template clusters, "
            f"{summary['quarantined_pages']} quarantined)"
        )
        print(f"  wrote {out_path}")

"""Ablations of the design choices DESIGN.md calls out.

Each ablation reruns part of the corpus with one knob flipped:

* **position constraints off** — how much the Section 4.2 constraints
  contribute to the CSP;
* **ordering constraints on** — this library's optional extension of
  the paper's constraint set;
* **soft-assign off** — the paper-faithful relaxed mode, whose sparse
  partial assignments cost recall (the paper's R=0.84);
* **case-insensitive matching** — would casefolded matching have
  rescued the Minnesota case mismatch?
* **bootstrap off** — EM from a flat start instead of the Section
  5.2.1 detail-page bootstrap.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.evaluation import PageScore
from repro.csp.encoder import EncoderConfig
from repro.csp.segmenter import CspConfig
from repro.extraction.matching import MatchOptions
from repro.prob.em import run_em
from repro.prob.forward_backward import forward_backward
from repro.prob.lattice import Lattice, derive_column_count
from repro.prob.model import ModelParams, ProbConfig
from repro.reporting.experiment import run_site

#: A representative slice: two clean sites, three dirty ones.
ABLATION_SITES = ("allegheny", "lee", "michigan", "canada411", "minnesota")


def subset_total(corpus, method, config=None, sites=ABLATION_SITES):
    total = PageScore()
    for name in sites:
        for row in run_site(corpus.site(name), method, config):
            total = total + row.score
    return total


def test_position_constraints(benchmark, corpus, capsys):
    baseline = subset_total(corpus, "csp")
    config = PipelineConfig(
        csp=CspConfig(encoder=EncoderConfig(position_constraints=False))
    )
    ablated = benchmark.pedantic(
        lambda: subset_total(corpus, "csp", config), iterations=1, rounds=1
    )
    with capsys.disabled():
        print(
            f"\nposition constraints: with F={baseline.f_measure:.3f}, "
            f"without F={ablated.f_measure:.3f}"
        )
    assert baseline.f_measure >= ablated.f_measure - 0.02
    benchmark.extra_info["f_with"] = round(baseline.f_measure, 3)
    benchmark.extra_info["f_without"] = round(ablated.f_measure, 3)


def test_ordering_constraints_extension(benchmark, corpus, capsys):
    baseline = subset_total(corpus, "csp")
    config = PipelineConfig(
        csp=CspConfig(encoder=EncoderConfig(ordering_constraints=True))
    )
    extended = benchmark.pedantic(
        lambda: subset_total(corpus, "csp", config), iterations=1, rounds=1
    )
    with capsys.disabled():
        print(
            f"\nordering constraints (extension): paper set "
            f"F={baseline.f_measure:.3f}, with ordering "
            f"F={extended.f_measure:.3f}"
        )
    # The extension may help and must not collapse quality.
    assert extended.f_measure >= baseline.f_measure - 0.05
    benchmark.extra_info["f_paper_set"] = round(baseline.f_measure, 3)
    benchmark.extra_info["f_with_ordering"] = round(extended.f_measure, 3)


def test_soft_assign_paper_faithful_mode(benchmark, corpus, capsys):
    baseline = subset_total(corpus, "csp")
    config = PipelineConfig(csp=CspConfig(soft_assign=False))
    faithful = benchmark.pedantic(
        lambda: subset_total(corpus, "csp", config), iterations=1, rounds=1
    )
    with capsys.disabled():
        print(
            f"\nsoft-assign relaxation: maximal partial "
            f"R={baseline.recall:.3f}, paper-faithful sparse partial "
            f"R={faithful.recall:.3f} (paper's CSP recall fell to 0.84)"
        )
    # Sparse partial assignments can only lose recall.
    assert faithful.recall <= baseline.recall + 1e-9
    benchmark.extra_info["recall_soft"] = round(baseline.recall, 3)
    benchmark.extra_info["recall_sparse"] = round(faithful.recall, 3)


def test_casefold_matching(benchmark, corpus, capsys):
    """Minnesota's case mismatch disappears under casefolded matching."""
    baseline = subset_total(corpus, "csp", sites=("minnesota",))
    config = PipelineConfig(match=MatchOptions(casefold=True))
    folded = benchmark.pedantic(
        lambda: subset_total(corpus, "csp", config, sites=("minnesota",)),
        iterations=1,
        rounds=1,
    )
    with capsys.disabled():
        print(
            f"\nminnesota case-sensitive F={baseline.f_measure:.3f}, "
            f"casefolded F={folded.f_measure:.3f}"
        )
    # Folding recovers the name anchors (more matchable evidence).
    assert folded.cor + folded.inc >= baseline.cor + baseline.inc
    benchmark.extra_info["f_sensitive"] = round(baseline.f_measure, 3)
    benchmark.extra_info["f_folded"] = round(folded.f_measure, 3)


def test_bootstrap_value(benchmark, superpages_problem, capsys):
    """Section 5.2.1's bootstrap vs a flat EM start."""
    site, table = superpages_problem
    config = ProbConfig()
    k = derive_column_count(table, config)
    lattice = Lattice.build(table, config, k)

    def fit_flat():
        params, info = run_em(lattice, config, ModelParams.uniform(k, config.seed))
        return forward_backward(lattice, params).log_likelihood, info

    def fit_boot():
        from repro.prob.bootstrap import bootstrap_params

        params, info = run_em(
            lattice, config, bootstrap_params(table, config, k)
        )
        return forward_backward(lattice, params).log_likelihood, info

    boot_ll, boot_info = benchmark(fit_boot)
    flat_ll, flat_info = fit_flat()
    with capsys.disabled():
        print(
            f"\nbootstrap: logL={boot_ll:.2f} in {boot_info.iterations} "
            f"iterations; flat start: logL={flat_ll:.2f} in "
            f"{flat_info.iterations} iterations"
        )
    # The bootstrap must not end up in a worse optimum.
    assert boot_ll >= flat_ll - abs(flat_ll) * 0.05
    benchmark.extra_info["loglik_bootstrap"] = round(boot_ll, 2)
    benchmark.extra_info["loglik_flat"] = round(flat_ll, 2)

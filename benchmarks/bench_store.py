"""Relational-store benchmark: ingest throughput and query latency.

Builds a 120-site corpus from the :func:`~repro.sitegen.sweeps.
catalog_site` family (domains alternating, detail-label vocabularies
rotating, so the attribute catalog's exact / word-overlap / no-match
paths all fire), ingests every site's wire pages into one sqlite
store, and answers a canned set of column-keyword queries against the
result.

Asserted invariants: every site inserts, a second full ingest pass is
100% ``unchanged`` (the fingerprint no-op path), every canned query
returns a non-empty ranked answer with provenance-tagged rows, and
the cross-site catalog actually unified attributes (fewer canonical
attributes than site columns).

Headlines land in ``BENCH_store.json`` (override the directory with
``BENCH_OUT_DIR``): ``ingest_rows_per_s``, ``reingest_sites_per_s``
(the no-op path), and per-pass ``query_p50_ms`` / ``query_p95_ms`` —
see ``docs/store.md`` for how to read them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter

from repro.obs import Observability
from repro.sitegen.sweeps import catalog_site
from repro.store import RelationalStore, ingest_pages, query_store

N_SITES = 120

#: Canned column-keyword queries: exact labels, word-overlap partials,
#: and a cross-domain mix.  Every one must return ranked tables.
QUERIES = (
    "owner, value",
    "parcel number",
    "name, status",
    "inmate number",
    "owner name, market value",
)

#: Query repetitions per canned query (p50/p95 need a population).
QUERY_ROUNDS = 40


def truth_entries(site):
    """A site's wire page entries, derived from its ground truth.

    The store layer is what is being measured, so rows come straight
    from :class:`~repro.sitegen.site.TrueRow` values (column = field
    position in the schema, absent fields skipped — exactly the shape
    the segmenter's wire records take on these clean grids) and names
    from the spec's detail labels.
    """
    fields = [field.name for field in site.spec.schema.fields]
    names = {
        f"L{position}": site.spec.label_for(name)
        for position, name in enumerate(fields)
    }
    entries = []
    for page in site.truth:
        records = [
            {
                "texts": [row.values[f] for f in fields if f in row.values],
                "columns": [
                    position
                    for position, f in enumerate(fields)
                    if f in row.values
                ],
            }
            for row in page.rows
        ]
        entries.append(
            {
                "url": f"{site.spec.name}-list{page.page_index}.html",
                "records": records,
                "record_count": len(records),
                "names": names,
            }
        )
    return entries


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def test_store_ingest_and_query(benchmark, tmp_path, capsys):
    corpus = [
        (site.spec.name, truth_entries(site))
        for site in (catalog_site(index) for index in range(N_SITES))
    ]
    total_rows = sum(
        entry["record_count"] for _, entries in corpus for entry in entries
    )
    store = RelationalStore(tmp_path / "bench.db", obs=Observability())

    def run_all():
        # Cold ingest: every site inserts.
        started = perf_counter()
        outcomes = [
            ingest_pages(store, site_id, "prob", entries)
            for site_id, entries in corpus
        ]
        ingest_s = perf_counter() - started
        assert outcomes == ["inserted"] * N_SITES

        # Idempotence at scale: a full second pass changes nothing.
        before = store.counts()
        started = perf_counter()
        again = [
            ingest_pages(store, site_id, "prob", entries)
            for site_id, entries in corpus
        ]
        reingest_s = perf_counter() - started
        assert again == ["unchanged"] * N_SITES
        assert store.counts() == before

        # Canned queries: non-empty ranked answers, latency population.
        latencies = []
        answers = {}
        for keywords in QUERIES:
            for _ in range(QUERY_ROUNDS):
                started = perf_counter()
                result = query_store(store, keywords, limit=20)
                latencies.append(perf_counter() - started)
            assert result.tables, f"no tables matched {keywords!r}"
            assert result.rows and result.rows[0]["site"]
            answers[keywords] = result
        return ingest_s, reingest_s, latencies, answers, before

    ingest_s, reingest_s, latencies, answers, counts = benchmark.pedantic(
        run_all, iterations=1, rounds=1
    )

    # The catalog really unified columns across sites: 120 sites with
    # 5 columns each collapse onto a few dozen shared attributes.
    assert counts["attributes"] < counts["site_columns"] / 3

    summary = {
        "sites": N_SITES,
        "rows": total_rows,
        "ingest_s": round(ingest_s, 3),
        "ingest_rows_per_s": round(total_rows / ingest_s, 1),
        "ingest_sites_per_s": round(N_SITES / ingest_s, 1),
        "reingest_s": round(reingest_s, 3),
        "reingest_sites_per_s": round(N_SITES / reingest_s, 1),
        "queries": len(QUERIES) * QUERY_ROUNDS,
        "query_p50_ms": round(_percentile(latencies, 0.50) * 1000.0, 3),
        "query_p95_ms": round(_percentile(latencies, 0.95) * 1000.0, 3),
        "attributes": counts["attributes"],
        "site_columns": counts["site_columns"],
        "cells": counts["cells"],
    }
    out_dir = Path(os.environ.get("BENCH_OUT_DIR", "."))
    out_path = out_dir / "BENCH_store.json"
    out_path.write_text(json.dumps(summary, indent=2) + "\n")
    benchmark.extra_info.update(summary)
    store.close()

    with capsys.disabled():
        print(f"\nrelational store, {N_SITES}-site corpus:")
        print(
            f"  ingest {summary['ingest_rows_per_s']:,.0f} rows/s "
            f"({summary['ingest_s']:.2f}s total)   "
            f"re-ingest no-op {summary['reingest_sites_per_s']:,.0f} sites/s"
        )
        print(
            f"  query p50 {summary['query_p50_ms']:.2f}ms   "
            f"p95 {summary['query_p95_ms']:.2f}ms   "
            f"({summary['attributes']} attributes over "
            f"{summary['site_columns']} site columns)"
        )
        for keywords, result in answers.items():
            top = result.tables[0]
            print(
                f"    {keywords!r}: {len(result.tables)} tables, "
                f"top {top.site_id} score {top.score:.2f}"
            )
        print(f"  wrote {out_path}")

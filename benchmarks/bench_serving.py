"""Serving-path economics: cold pipeline vs. warm wrapper latency.

The online service (``src/repro/serve/``, docs/serving.md) exists
because applying a cached :class:`~repro.wrapper.induce.RowWrapper` is
much cheaper than running the full pipeline.  This bench measures that
asymmetry end to end — real HTTP server, real sockets, via
:class:`~repro.serve.client.ServeClient` — and enforces the floor the
serving design is justified by: **warm p50 at least 5x faster than
cold p50** (service-reported latency, which both paths measure
identically; the shared HTTP/JSON transport cost is reported
separately via the client-side numbers and the throughput phase).

The workload mirrors real traffic: the *cold* request uploads a whole
site (the pipeline needs >= 2 list pages to induce a template); *warm*
requests then ship one list page + its detail pages each — the
incremental page-at-a-time traffic a warmed-up service actually sees.

Headline numbers go to ``BENCH_serving.json`` (directory override:
``BENCH_OUT_DIR``) so the serving perf trajectory is tracked across
PRs like ``BENCH_scaling.json`` tracks the batch runner.
"""

from __future__ import annotations

import json
import os
import statistics
import threading
import time
from pathlib import Path

from repro.serve import (
    SegmentationServer,
    SegmentationService,
    ServeClient,
    ServiceConfig,
    payload_from_pages,
)

#: Distinct sites to cold-start (one pipeline run + induction each).
SITES = ("ohio", "lee", "butler")
#: Warm requests per site for the p50.
WARM_ROUNDS = 6
#: Concurrent clients in the throughput phase.
THROUGHPUT_CLIENTS = 4
#: Warm requests each throughput client fires.
THROUGHPUT_ROUNDS = 8


def _full_payload(corpus, name):
    site = corpus.site(name)
    return payload_from_pages(
        name,
        site.list_pages,
        [site.detail_pages(i) for i in range(len(site.list_pages))],
    )


def _page_payload(corpus, name, index):
    site = corpus.site(name)
    return payload_from_pages(
        name, site.list_pages[index : index + 1], [site.detail_pages(index)]
    )


def test_warm_path_beats_cold_path(corpus, benchmark, capsys):
    service = SegmentationService(ServiceConfig(method="prob", workers=2))
    server = SegmentationServer(service, port=0)
    server.start()
    client = ServeClient(server.address, timeout_s=300.0)
    try:
        cold_s: list[float] = []
        cold_wall_s: list[float] = []
        for name in SITES:
            started = time.perf_counter()
            response = client.segment(_full_payload(corpus, name))
            cold_wall_s.append(time.perf_counter() - started)
            assert response.status == 200
            assert response.body["path"] == "pipeline", name
            cold_s.append(response.body["elapsed_s"])

        warm_s: list[float] = []
        warm_wall_s: list[float] = []
        warm_payloads = {
            name: _page_payload(corpus, name, 1) for name in SITES
        }
        for name, payload in warm_payloads.items():
            for _ in range(WARM_ROUNDS):
                started = time.perf_counter()
                response = client.segment(payload)
                warm_wall_s.append(time.perf_counter() - started)
                assert response.status == 200
                assert response.body["path"] == "wrapper", name
                assert response.body["record_count"] > 0, name
                warm_s.append(response.body["elapsed_s"])

        cold_p50 = statistics.median(cold_s)
        warm_p50 = statistics.median(warm_s)
        speedup = cold_p50 / warm_p50
        # The acceptance floor: the whole serving design is pointless
        # if the warm path is not clearly cheaper.
        assert speedup >= 5.0, (
            f"warm p50 only {speedup:.1f}x faster "
            f"({cold_p50:.3f}s -> {warm_p50:.3f}s)"
        )

        # Sustained warm throughput under concurrent clients.
        errors: list[int] = []
        lock = threading.Lock()

        def hammer(client_index: int) -> None:
            own = ServeClient(server.address, timeout_s=300.0)
            name = SITES[client_index % len(SITES)]
            for _ in range(THROUGHPUT_ROUNDS):
                response = own.segment(warm_payloads[name])
                if response.status != 200:
                    with lock:
                        errors.append(response.status)

        threads = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(THROUGHPUT_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        assert errors == [], f"throughput phase saw errors: {errors}"
        total_requests = THROUGHPUT_CLIENTS * THROUGHPUT_ROUNDS
        throughput_rps = total_requests / elapsed

        counters = service.metrics.as_dict()["counters"]
        assert counters["serve.pipeline_runs"] == len(SITES)
        assert counters.get("serve.fallbacks", 0) == 0

        summary = {
            "sites": len(SITES),
            "method": "prob",
            "workers": 2,
            "cold_p50_s": round(cold_p50, 4),
            "warm_p50_s": round(warm_p50, 6),
            "warm_speedup": round(speedup, 1),
            "cold_wall_p50_s": round(statistics.median(cold_wall_s), 4),
            "warm_wall_p50_s": round(statistics.median(warm_wall_s), 6),
            "throughput_clients": THROUGHPUT_CLIENTS,
            "throughput_requests": total_requests,
            "throughput_rps": round(throughput_rps, 1),
            "wrapper_hits": counters["serve.wrapper_hits"],
        }
        out_dir = Path(os.environ.get("BENCH_OUT_DIR", "."))
        out_path = out_dir / "BENCH_serving.json"
        out_path.write_text(json.dumps(summary, indent=2) + "\n")
        benchmark.extra_info.update(summary)

        # One representative warm round for the benchmark harness.
        benchmark.pedantic(
            lambda: client.segment(warm_payloads[SITES[0]]),
            iterations=1,
            rounds=3,
        )

        with capsys.disabled():
            print("\nserving, cold vs warm (prob, 3 sites):")
            print(
                f"  cold p50 {cold_p50:6.3f}s   warm p50 {warm_p50:8.5f}s "
                f"  speedup {speedup:6.1f}x"
            )
            print(
                f"  warm throughput {throughput_rps:6.1f} req/s "
                f"({THROUGHPUT_CLIENTS} clients, 2 workers)"
            )
            print(f"  wrote {out_path}")
    finally:
        server.shutdown(drain_timeout_s=10.0)

"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one of the paper's tables or
figures (see DESIGN.md's per-experiment index).  Rendered tables are
printed to stdout — run with ``pytest benchmarks/ --benchmark-only -s``
to see them — and the headline numbers are attached to each
benchmark's ``extra_info`` so they land in the benchmark report too.

The session also installs a metrics-only
:class:`~repro.obs.Observability` bundle, so every pipeline run any
bench performs is profiled per stage; the breakdown (total seconds
per span name, solver counters) is printed when the session ends —
the baseline profile future performance PRs measure against.
"""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import SegmentationPipeline
from repro.extraction.extracts import extract_strings
from repro.extraction.observations import ObservationTable
from repro.obs import Observability, install, render_breakdown
from repro.sitegen.corpus import build_corpus
from repro.template.finder import TemplateFinder
from repro.template.table_slot import resolve_table_regions


@pytest.fixture(scope="session", autouse=True)
def stage_profile():
    """Profile every pipeline stage across the whole bench session.

    ``keep_spans=False``: only the ``span.*.seconds`` histograms and
    the solver counters are retained, so a long session does not
    accumulate a span tree.
    """
    obs = Observability(keep_spans=False)
    previous = install(obs)
    yield obs
    install(previous)
    print()
    print("== per-stage cost profile (all benches, this session) ==")
    print(render_breakdown(obs.metrics))


@pytest.fixture(scope="session")
def corpus():
    """The 12-site corpus, rendered once per benchmark session."""
    return build_corpus()


@pytest.fixture(scope="session")
def superpages_problem(corpus):
    """The Figure 1 running example: Superpages list page 0's
    observation table (built through the real pipeline path)."""
    site = corpus.site("superpages")
    verdict = TemplateFinder().find(site.list_pages)
    regions = resolve_table_regions(site.list_pages, verdict)
    extracts = extract_strings(regions[0])
    table = ObservationTable.build(
        extracts,
        site.detail_pages(0),
        other_list_pages=[site.list_pages[1]],
    )
    return site, table


def pipeline_scores(site, method, config=None):
    """Run one method over one site; return (scores, runs)."""
    from repro.core.evaluation import score_page

    run = SegmentationPipeline(method, config).segment_generated_site(site)
    scores = [
        score_page(page_run.segmentation, truth)
        for page_run, truth in zip(run.pages, site.truth)
    ]
    return scores, run

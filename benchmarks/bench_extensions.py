"""Extension experiments: the paper's future-work items, measured.

* **enumeration heuristic** (Section 6.2 future work) — repairing the
  numbered-entry template failures;
* **hybrid segmenter** (Section 7) — "Both techniques (or a
  combination of the two) are likely to be required";
* **CSP attribute assignment** (Section 6.3) — column extraction from
  the CSP side;
* **wrapper reuse** — extracting a third, unseen list page without any
  detail pages.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import PipelineConfig
from repro.core.evaluation import PageScore
from repro.core.pipeline import SegmentationPipeline
from repro.relational.csp_columns import CspColumnAssigner
from repro.relational.evaluation import column_purity
from repro.reporting.experiment import run_corpus, run_site
from repro.sitegen.domains.propertytax import build_allegheny
from repro.sitegen.site import GeneratedSite
from repro.template.finder import TemplateFinderConfig
from repro.wrapper import apply_wrapper, induce_wrapper, score_wrapped_rows


def test_enumeration_heuristic(benchmark, corpus, capsys):
    """Numbered-entry sites with and without the future-work fix."""
    sites = ("amazon", "bnbooks", "minnesota")

    def run(strip):
        config = PipelineConfig(
            template=TemplateFinderConfig(strip_enumerations=strip)
        )
        total = PageScore()
        for name in sites:
            for row in run_site(corpus.site(name), "prob", config):
                total = total + row.score
        return total

    fixed = benchmark.pedantic(lambda: run(True), iterations=1, rounds=1)
    faithful = run(False)
    with capsys.disabled():
        print(
            f"\nnumbered-entry sites: paper-faithful F={faithful.f_measure:.3f}, "
            f"with enumeration heuristic F={fixed.f_measure:.3f}"
        )
    assert fixed.f_measure >= faithful.f_measure
    benchmark.extra_info["f_faithful"] = round(faithful.f_measure, 3)
    benchmark.extra_info["f_heuristic"] = round(fixed.f_measure, 3)


def test_hybrid_combination(benchmark, corpus, capsys):
    """The Section 7 combination over the full corpus."""
    result = benchmark.pedantic(
        lambda: run_corpus(corpus, methods=("hybrid",)),
        iterations=1,
        rounds=1,
    )
    totals = result.totals("hybrid")
    engines = [row.meta.get("engine") for row in result.rows_for("hybrid")]
    with capsys.disabled():
        print(
            f"\nhybrid: P={totals.precision:.3f} R={totals.recall:.3f} "
            f"F={totals.f_measure:.3f} "
            f"(csp engine on {engines.count('csp')} pages, "
            f"prob on {engines.count('prob')})"
        )
    # The combination should match or beat each individual method's
    # published aggregate quality handily.
    assert totals.f_measure >= 0.9
    benchmark.extra_info["f_measure"] = round(totals.f_measure, 3)
    benchmark.extra_info["csp_pages"] = engines.count("csp")


def test_csp_attribute_assignment(benchmark, corpus, capsys):
    """Section 6.3's suggested CSP column extraction, measured as
    column purity on the clean property-tax sites."""
    site = corpus.site("allegheny")
    run = SegmentationPipeline("csp").segment_generated_site(site)
    segmentation = run.pages[0].segmentation

    columns = benchmark(lambda: CspColumnAssigner().assign(segmentation))
    csp_score = column_purity(segmentation, site.truth[0], columns=columns)
    positional = column_purity(segmentation, site.truth[0])
    prob_run = SegmentationPipeline("prob").segment_generated_site(site)
    prob_score = column_purity(prob_run.pages[0].segmentation, site.truth[0])
    with capsys.disabled():
        print(
            f"\ncolumn purity (allegheny p0): positional="
            f"{positional.purity:.3f}, csp-assigned={csp_score.purity:.3f}, "
            f"probabilistic={prob_score.purity:.3f}"
        )
    assert csp_score.purity >= positional.purity
    benchmark.extra_info["purity_csp"] = round(csp_score.purity, 3)
    benchmark.extra_info["purity_prob"] = round(prob_score.purity, 3)


def test_wrapper_reuse(benchmark, capsys):
    """Learn on two pages (with details), extract a third without."""
    spec = dataclasses.replace(
        build_allegheny(), records_per_page=(20, 20, 14)
    )
    site = GeneratedSite(spec)
    pipeline_run = SegmentationPipeline("prob").segment_site(
        site.list_pages[:2],
        [site.detail_pages(0), site.detail_pages(1)],
    )
    wrapper = induce_wrapper(pipeline_run.pages[0], pipeline_run.template_verdict)

    rows = benchmark(lambda: apply_wrapper(wrapper, site.list_pages[2]))
    correct, total = score_wrapped_rows(rows, site.truth[2])
    with capsys.disabled():
        print(
            f"\nwrapper reuse: {correct}/{total} records of an unseen "
            "page extracted with zero detail-page fetches"
        )
    assert correct >= total - 1
    benchmark.extra_info["correct"] = correct
    benchmark.extra_info["total"] = total


def test_next_link_numbering_repair(benchmark, capsys):
    """Section 6.2's other future-work fix: "simply follow the 'Next'
    link ... The entry numbers of the next page will be different from
    others in the sample."  A Next-chain sample numbers entries
    continuously, so no number is once-per-page on every page and the
    template survives."""
    from repro.sitegen.domains.books import build_amazon
    from repro.template.finder import TemplateFinder

    def run(continuous):
        spec = dataclasses.replace(
            build_amazon(), numbering_continuous=continuous
        )
        site = GeneratedSite(spec)
        verdict = TemplateFinder().find(site.list_pages)
        total = PageScore()
        for row in run_site(site, "prob"):
            total = total + row.score
        return verdict.ok, total

    ok_fixed, fixed = benchmark.pedantic(
        lambda: run(True), iterations=1, rounds=1
    )
    ok_faithful, faithful = run(False)
    with capsys.disabled():
        print(
            f"\nNext-link repair (amazon): separate-query sample "
            f"template_ok={ok_faithful} F={faithful.f_measure:.3f}; "
            f"Next-chain sample template_ok={ok_fixed} "
            f"F={fixed.f_measure:.3f}"
        )
    assert not ok_faithful and ok_fixed
    assert fixed.f_measure >= faithful.f_measure
    benchmark.extra_info["f_next_chain"] = round(fixed.f_measure, 3)

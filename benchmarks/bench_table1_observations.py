"""Paper Table 1: observations of extracts on detail pages.

Regenerates the observation table for the Superpages running example
(Figure 1's site) and benchmarks observation building — the matching
of every list extract against every detail page.
"""

from __future__ import annotations

from repro.extraction.extracts import extract_strings
from repro.extraction.observations import ObservationTable
from repro.reporting.tables import render_observation_table
from repro.template.finder import TemplateFinder
from repro.template.table_slot import resolve_table_regions


def test_table1_observations(benchmark, superpages_problem, capsys):
    site, table = superpages_problem

    def build():
        verdict = TemplateFinder().find(site.list_pages)
        regions = resolve_table_regions(site.list_pages, verdict)
        extracts = extract_strings(regions[0])
        return ObservationTable.build(
            extracts,
            site.detail_pages(0),
            other_list_pages=[site.list_pages[1]],
        )

    rebuilt = benchmark(build)

    with capsys.disabled():
        print()
        print(render_observation_table(rebuilt))
        print(rebuilt.summary())

    # Shape assertions mirroring the paper's example: every record
    # contributes observations, duplicated values produce multi-page
    # D_i sets.
    assert rebuilt.detail_count == 3
    assert rebuilt.used_count >= 6
    for record in range(rebuilt.detail_count):
        assert rebuilt.candidates_for_record(record)
    benchmark.extra_info["used_extracts"] = rebuilt.used_count
    benchmark.extra_info["ignored_all_lists"] = len(rebuilt.ignored_all_lists)

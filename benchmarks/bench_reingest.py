"""Incremental re-ingest benchmark: blast radius and carried-bundle parity.

Builds the acceptance-scale mixed crawl (40 slots / 48 true sub-sites /
1300+ pages) at generation 0, fully ingests it, then advances the
corpus one churn generation (a few percent of pages mutated, one
template reskinned, one sub-site added and one removed) and re-ingests
incrementally against the generation-0 manifest.

Asserted invariants: the churn stays within the <= 10% band the
acceptance criterion is defined over, the incremental run re-processes
at most 25% of the pages, its merged output matches a from-scratch
generation-1 ingest bundle for bundle, carried bundle directories are
byte-identical to the from-scratch run's (and produce byte-identical
segmentation ``TaskResult`` digests), and invalidation provably drops
the stale sites' relational-store rows and cached wrappers.

Headlines land in ``BENCH_reingest.json`` (override the directory with
``BENCH_OUT_DIR``): ``churn_ratio``, ``reprocess_ratio`` and
``reingest_speedup`` — see ``docs/ingestion.md`` for how to read them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter

from repro.core.config import METHODS
from repro.ingest import (
    ingest_pages,
    load_previous_manifest,
    reingest_pages,
    write_bundles,
    write_reingest,
)
from repro.lifecycle import invalidate_consumers
from repro.runner import BatchRunner, RunnerConfig, tasks_from_directory
from repro.runner.cache import StageCache
from repro.serve.registry import WRAPPER_STAGE, WrapperRegistry
from repro.sitegen.mixed import MixedCorpusSpec, build_mixed_corpus, score_bundles
from repro.store import RelationalStore

SPEC0 = MixedCorpusSpec(sites=40, seed=20260807)
SPEC1 = MixedCorpusSpec(sites=40, seed=20260807, generation=1)

#: carried bundles whose segmentation digests are compared end to end
#: (a sample keeps the benchmark's wall clock dominated by ingestion).
DIGEST_SAMPLE = 6


def _assert_carried_dirs_identical(out_dir, ref_dir, carried):
    for name in carried:
        ours = sorted(p for p in (out_dir / name).rglob("*") if p.is_file())
        theirs = sorted(
            p for p in (ref_dir / name).rglob("*") if p.is_file()
        )
        assert [p.name for p in ours] == [p.name for p in theirs], name
        for mine, ref in zip(ours, theirs):
            assert mine.read_bytes() == ref.read_bytes(), str(mine)


def _digest_parity(out_dir, ref_dir, carried):
    """Segment sampled carried bundles from both trees; digests must match."""
    sample = sorted(carried)[:DIGEST_SAMPLE]
    runner = BatchRunner(RunnerConfig(workers=1))
    for root in (out_dir, ref_dir):
        for name in sample:
            assert (root / name).is_dir(), name
    ours = runner.run(
        [t for t in tasks_from_directory(out_dir) if t.task_id in sample]
    )
    theirs = runner.run(
        [t for t in tasks_from_directory(ref_dir) if t.task_id in sample]
    )
    assert {r.status for r in ours.results} == {"ok"}
    digests = lambda batch: sorted(r.digest() for r in batch.results)
    assert digests(ours) == digests(theirs)
    return len(sample)


def _assert_invalidation(tmp, stale, all_bundles):
    """Stale sites' store rows and cached wrappers must be gone."""
    with RelationalStore(tmp / "rel.db") as store:
        entry = {
            "url": "page-list0.html",
            "records": [{"texts": ["a", "b"], "columns": [0, 1]}],
            "record_count": 1,
            "names": {"L0": "Name", "L1": "Value"},
        }
        from repro.store import ingest_pages as store_ingest

        for name in all_bundles:
            store_ingest(store, name, "prob", [entry])
        cache = StageCache(tmp / "wrappers")
        registry = WrapperRegistry(cache=cache)
        for name in all_bundles:
            for method in METHODS:
                cache.store(
                    WRAPPER_STAGE,
                    WrapperRegistry._key(name, method),
                    {"fake": "wrapper"},
                )
        report = invalidate_consumers(stale, store=store, registry=registry)
        assert report.errors == []
        assert report.store_sites_removed == len(stale)
        assert report.wrappers_invalidated == len(stale) * len(METHODS)
        survivors = {row["site_id"] for row in store.sites()}
        assert survivors == set(all_bundles) - set(stale)
        for name in stale:
            for method in METHODS:
                found, _ = cache.load(
                    WRAPPER_STAGE, WrapperRegistry._key(name, method)
                )
                assert not found, (name, method)


def test_reingest_mixed_crawl(benchmark, capsys, tmp_path):
    gen0 = build_mixed_corpus(SPEC0)
    gen1 = build_mixed_corpus(SPEC1)
    assert gen0.page_count >= 1000

    gen0_html = {p.url: p.html for p in gen0.pages}
    gen1_html = {p.url: p.html for p in gen1.pages}
    churned = (
        {u for u in gen0_html if u not in gen1_html}
        | {u for u in gen1_html if u not in gen0_html}
        | {
            u
            for u in set(gen0_html) & set(gen1_html)
            if gen0_html[u] != gen1_html[u]
        }
    )
    churn_ratio = len(churned) / gen0.page_count
    assert churn_ratio <= 0.10, f"churn {churn_ratio:.2%}"

    out_dir = tmp_path / "bundles"
    started = perf_counter()
    full0 = ingest_pages(gen0.pages)
    full0_s = perf_counter() - started
    write_bundles(full0, out_dir)
    previous = load_previous_manifest(out_dir)
    assert previous is not None

    def run_incremental():
        started = perf_counter()
        report = reingest_pages(gen1.pages, previous)
        return report, perf_counter() - started

    incremental, incremental_s = benchmark.pedantic(
        run_incremental, iterations=1, rounds=1
    )
    write_reingest(incremental, out_dir)

    assert incremental.reconciles(), "page accounting must reconcile"
    reprocess_ratio = incremental.reprocessed_page_count / gen1.page_count
    assert reprocess_ratio <= 0.25, f"reprocessed {reprocess_ratio:.2%}"

    started = perf_counter()
    reference = ingest_pages(gen1.pages)
    full1_s = perf_counter() - started
    ref_dir = tmp_path / "reference"
    write_bundles(reference, ref_dir)

    merged = {e["name"]: e["pages"] for e in incremental.carried}
    for bundle in incremental.report.bundles:
        merged[bundle.name] = bundle.page_urls()
    assert merged == {b.name: b.page_urls() for b in reference.bundles}

    score = score_bundles(gen1.sites, sorted(merged.items()))
    assert score.precision >= 0.95, f"precision {score.precision:.4f}"
    assert score.recall >= 0.90, f"recall {score.recall:.4f}"

    carried = [e["name"] for e in incremental.carried]
    assert carried, "acceptance churn must leave carried bundles"
    _assert_carried_dirs_identical(out_dir, ref_dir, carried)
    digest_sample = _digest_parity(out_dir, ref_dir, carried)
    # Downstream consumers were populated from the generation-0 ingest,
    # so invalidation is checked against that bundle set (it covers
    # every stale name, including bundles gen1 removed outright).
    _assert_invalidation(
        tmp_path,
        incremental.stale_bundles,
        sorted(b.name for b in full0.bundles),
    )

    summary = {
        "pages": gen1.page_count,
        "bundles": len(merged),
        "churned_pages": len(churned),
        "churn_ratio": round(churn_ratio, 4),
        "reprocessed_pages": incremental.reprocessed_page_count,
        "reprocess_ratio": round(reprocess_ratio, 4),
        "carried_bundles": len(carried),
        "rebuilt_bundles": len(incremental.rebuilt),
        "removed_bundles": len(incremental.removed_bundles),
        "digest_parity_bundles": digest_sample,
        "bundle_precision": round(score.precision, 4),
        "bundle_recall": round(score.recall, 4),
        "full_ingest_s": round(full1_s, 3),
        "reingest_s": round(incremental_s, 3),
        "reingest_speedup": round(full1_s / incremental_s, 2),
    }
    out_dir_env = Path(os.environ.get("BENCH_OUT_DIR", "."))
    out_path = out_dir_env / "BENCH_reingest.json"
    out_path.write_text(json.dumps(summary, indent=2) + "\n")
    benchmark.extra_info.update(summary)

    with capsys.disabled():
        print(
            f"\nincremental re-ingest, {summary['pages']}-page mixed "
            f"crawl, {summary['churn_ratio']:.1%} churn "
            f"({summary['churned_pages']} pages):"
        )
        print(
            f"  re-processed {summary['reprocessed_pages']} pages "
            f"({summary['reprocess_ratio']:.1%})   carried "
            f"{summary['carried_bundles']} / rebuilt "
            f"{summary['rebuilt_bundles']} / removed "
            f"{summary['removed_bundles']} bundles"
        )
        print(
            f"  {summary['reingest_s']:.2f}s vs full "
            f"{summary['full_ingest_s']:.2f}s "
            f"({summary['reingest_speedup']:.1f}x)   precision "
            f"{summary['bundle_precision']:.4f}   recall "
            f"{summary['bundle_recall']:.4f}"
        )
        print(f"  wrote {out_path}")

"""Group fingerprinted pages into template clusters.

Pages from one template share most of their structural shingles, so
template grouping is set similarity over fingerprints.  The grouping
must satisfy two requirements from the front door's contract:

* **multi-template sites split** — a site rendering parcels with one
  template and permits with another yields two clusters, each of
  which can become its own (list chain, detail cluster) bundle;
* **near-duplicate templates merge deterministically** — two sites
  stamped from the same generator with different seeds produce
  almost-identical templates; their pages belong in one cluster, and
  which cluster survives a merge must not depend on dict order or
  timing.

The clusterer is index-fast: an inverted shingle→cluster index finds
the candidate clusters for each page in time proportional to the
page's fingerprint size, never by scanning all pages pairwise (the
difference from ``crawl/classifier.py``, which this module supersedes
at crawl scale).  All tie-breaks go to the lowest cluster id, and
cluster ids follow input order, so the result is a pure function of
the input sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ingest.fingerprint import PageProfile

__all__ = ["ClusterConfig", "TemplateCluster", "cluster_profiles"]


@dataclass(frozen=True)
class ClusterConfig:
    """Clustering thresholds.

    Attributes:
        join_threshold: minimum Jaccard similarity between a page's
            fingerprint and a cluster's shingle union for the page to
            join the cluster.  Same-template pages score 0.7+;
            different templates land well under 0.3.
        merge_threshold: minimum Jaccard similarity between two
            cluster unions for the clusters to merge in the
            near-duplicate pass.  Set above ``join_threshold``:
            merging is for templates that are *almost the same*, not
            merely related.
    """

    join_threshold: float = 0.5
    merge_threshold: float = 0.6


@dataclass
class TemplateCluster:
    """One template's pages.

    Attributes:
        cluster_id: dense id, assigned in order of first member.
        members: page indexes into the profiled crawl, input order.
        shingles: union of the members' fingerprint shingles.
    """

    cluster_id: int
    members: list[int] = field(default_factory=list)
    shingles: set[int] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.members)


def _jaccard(shared: int, size_a: int, size_b: int) -> float:
    union = size_a + size_b - shared
    if union == 0:
        return 1.0
    return shared / union


def cluster_profiles(
    profiles: list[PageProfile], config: ClusterConfig | None = None
) -> list[TemplateCluster]:
    """Cluster a profiled crawl by template fingerprint.

    Greedy pass in input order: each page joins the best existing
    cluster at or above ``join_threshold`` (candidates found through
    the inverted index, best = highest Jaccard, ties to the lowest
    cluster id), else founds a new cluster.  A second pass merges
    near-duplicate clusters (union Jaccard at or above
    ``merge_threshold``), lower id surviving, until a fixed point.
    Cluster ids are then renumbered densely in order of each
    cluster's first member, so the output is deterministic for a
    given input sequence.
    """
    config = config or ClusterConfig()
    clusters: list[TemplateCluster] = []
    # Inverted index: shingle id -> ids of clusters containing it.
    index: dict[int, list[int]] = {}

    for page_index, profile in enumerate(profiles):
        counts: dict[int, int] = {}
        for shingle in profile.shingles:
            for cluster_id in index.get(shingle, ()):
                counts[cluster_id] = counts.get(cluster_id, 0) + 1
        best_id: int | None = None
        best_score = config.join_threshold
        for cluster_id in sorted(counts):
            score = _jaccard(
                counts[cluster_id],
                len(profile.shingles),
                len(clusters[cluster_id].shingles),
            )
            if score > best_score or (
                score == best_score and best_id is None
            ):
                best_score = score
                best_id = cluster_id
        if best_id is None:
            best_id = len(clusters)
            clusters.append(TemplateCluster(best_id))
        cluster = clusters[best_id]
        cluster.members.append(page_index)
        for shingle in profile.shingles:
            if shingle not in cluster.shingles:
                cluster.shingles.add(shingle)
                index.setdefault(shingle, []).append(best_id)

    _merge_near_duplicates(clusters, config.merge_threshold)

    survivors = [cluster for cluster in clusters if cluster.members]
    survivors.sort(key=lambda cluster: cluster.members[0])
    for new_id, cluster in enumerate(survivors):
        cluster.cluster_id = new_id
    return survivors


def _merge_near_duplicates(
    clusters: list[TemplateCluster], threshold: float
) -> None:
    """Merge cluster pairs whose shingle unions are near-identical.

    Quadratic over clusters (not pages) and iterated to a fixed
    point; lower id absorbs higher, keeping the outcome independent
    of discovery order.  Emptied clusters stay in the list (with no
    members) for the caller to drop.
    """
    merged = True
    while merged:
        merged = False
        for a in range(len(clusters)):
            if not clusters[a].members:
                continue
            for b in range(a + 1, len(clusters)):
                if not clusters[b].members:
                    continue
                shared = len(clusters[a].shingles & clusters[b].shingles)
                if shared == 0:
                    continue
                score = _jaccard(
                    shared,
                    len(clusters[a].shingles),
                    len(clusters[b].shingles),
                )
                if score >= threshold:
                    clusters[a].members.extend(clusters[b].members)
                    clusters[a].members.sort()
                    clusters[a].shingles |= clusters[b].shingles
                    clusters[b].members = []
                    clusters[b].shingles = set()
                    merged = True

"""Fetch-driven ingestion: walk seed URLs into a crawl snapshot.

The front door's file-reading mode assumes somebody already crawled;
this module *is* the crawl.  :func:`fetch_crawl` walks outward from
one or more seed URLs in breadth-first discovery order, pulling every
page through the resilient retrieval stack
(:class:`~repro.crawl.resilient.ResilientFetcher`: retries with
backoff, per-site budgets, circuit breakers per URL class) so a
hostile or half-dead source degrades into recorded
:class:`~repro.crawl.resilient.CrawlHealth` gaps instead of an
aborted ingest.

The result is a :class:`FetchedCrawl`: pages in discovery order, a
content fingerprint per page (:func:`~repro.ingest.bundle.page_fingerprint`),
and the crawl health.  :func:`write_snapshot` persists all three as a
page directory plus a ``crawl.json`` manifest — the same manifest
name :mod:`repro.sitegen.mixed` writes, so
:func:`~repro.sitegen.mixed.load_crawl_pages` and ``repro ingest``
consume a snapshot exactly like an exported corpus — and
:func:`load_snapshot` round-trips it (identical page order and
fingerprints; see the manifest round-trip tests).

Snapshot writes are deterministic bytes: sorted JSON keys and LF-only
line endings, so the same crawl produces the same manifest on every
platform and fingerprint diffs (:mod:`repro.ingest.diff`) never see
phantom churn from serialization.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.crawl.crawler import extract_links
from repro.crawl.resilient import (
    GAP_BUDGET,
    CircuitBreaker,
    CrawlBudget,
    CrawlHealth,
    ResilientFetcher,
    RetryPolicy,
)
from repro.ingest.bundle import page_fingerprint
from repro.obs import Observability, current
from repro.webdoc.page import Page

__all__ = [
    "CRAWL_SNAPSHOT_NAME",
    "FetchedCrawl",
    "fetch_crawl",
    "load_snapshot",
    "write_snapshot",
]

#: Snapshot manifest name — deliberately the same file name the mixed
#: corpus generator uses, so both producers feed one consumer.
CRAWL_SNAPSHOT_NAME = "crawl.json"

#: CrawlHealth fields restored by :func:`load_snapshot` (the derived
#: keys ``gap_count`` / ``recovery_rate`` are recomputed, not stored).
_HEALTH_FIELDS = (
    "requests",
    "retries",
    "recovered",
    "transient_failures",
    "gaps",
    "quarantined_pages",
    "fallbacks",
    "breaker_trips",
    "budget_exhausted",
    "simulated_elapsed_s",
)


@dataclass
class FetchedCrawl:
    """One completed crawl: pages, content identities, health.

    Attributes:
        seeds: the URLs the walk started from, in request order.
        pages: every fetched page, in breadth-first discovery order —
            the crawl order the snapshot manifest records.
        fingerprints: URL -> content fingerprint for every fetched
            page (the diff currency of incremental re-ingest).
        health: the resilient fetcher's full account — requests,
            retries, recoveries, and a gap reason per URL given up on.
    """

    seeds: tuple[str, ...]
    pages: list[Page]
    fingerprints: dict[str, str]
    health: CrawlHealth

    @property
    def page_count(self) -> int:
        return len(self.pages)


def fetch_crawl(
    source,
    seeds: Iterable[str],
    retry: RetryPolicy | None = None,
    budget: CrawlBudget | None = None,
    breaker: CircuitBreaker | None = None,
    max_pages: int | None = None,
    obs: Observability | None = None,
) -> FetchedCrawl:
    """Walk ``seeds`` breadth-first through the resilient fetcher.

    ``source`` is anything with ``fetch(url) -> Page`` — a
    :class:`~repro.crawl.fetcher.DirectorySite`, a
    :class:`~repro.sitegen.site.GeneratedSite`, or a fault-injecting
    transport wrapping either.  Every link of every fetched page is
    followed exactly once (first-occurrence order); URLs that cannot
    be obtained within policy become health gaps, never exceptions.

    Args:
        source: page source.
        seeds: starting URLs (duplicates collapsed, order kept).
        retry: retry/backoff policy (fetcher default when None).
        budget: request/deadline budget (unlimited when None).
        breaker: circuit breaker (fetcher default when None).
        max_pages: stop *discovering* after this many fetched pages;
            frontier URLs still queued are recorded as
            ``budget_exhausted`` gaps.
        obs: observability bundle (``ingest.fetch.*`` counters plus
            the fetcher's own ``crawl.*`` accounting).
    """
    obs = obs if obs is not None else current()
    health = CrawlHealth()
    fetcher = ResilientFetcher(
        source,
        retry=retry,
        budget=budget,
        breaker=breaker,
        health=health,
        obs=obs,
    )
    seed_list = list(dict.fromkeys(seeds))
    queue: deque[str] = deque(seed_list)
    seen: set[str] = set(seed_list)
    pages: list[Page] = []
    fingerprints: dict[str, str] = {}

    with obs.span("ingest.fetch", seeds=len(seed_list)) as span:
        while queue:
            if max_pages is not None and len(pages) >= max_pages:
                health.budget_exhausted = True
                for url in queue:
                    health.record_gap(url, GAP_BUDGET)
                break
            url = queue.popleft()
            page = fetcher.try_fetch(url)
            if page is None:
                continue  # the gap and its reason are in the health
            pages.append(page)
            fingerprints[url] = page_fingerprint(page.html)
            for href in extract_links(page.html):
                if href not in seen:
                    seen.add(href)
                    queue.append(href)
        span.attributes["pages"] = len(pages)
        span.attributes["gaps"] = health.gap_count

    obs.counter("ingest.fetch.pages").inc(len(pages))
    obs.counter("ingest.fetch.gaps").inc(health.gap_count)
    return FetchedCrawl(
        seeds=tuple(seed_list),
        pages=pages,
        fingerprints=fingerprints,
        health=health,
    )


def write_snapshot(crawl: FetchedCrawl, directory: str | Path) -> Path:
    """Persist a crawl: flat page files plus the ``crawl.json`` manifest.

    The manifest records the seeds, the crawl order, a fingerprint per
    page and the crawl health — everything a later run needs to diff
    against this crawl or to re-ingest it byte-identically.  Writes
    are deterministic (sorted keys, LF-only).  Returns the manifest
    path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for page in crawl.pages:
        (directory / page.url).write_text(
            page.html, encoding="utf-8", newline="\n"
        )
    manifest = {
        "seeds": list(crawl.seeds),
        "pages": [page.url for page in crawl.pages],
        "fingerprints": dict(sorted(crawl.fingerprints.items())),
        "crawl_health": crawl.health.as_dict(),
    }
    manifest_path = directory / CRAWL_SNAPSHOT_NAME
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
        newline="\n",
    )
    return manifest_path


def load_snapshot(directory: str | Path) -> FetchedCrawl:
    """Read a :func:`write_snapshot` directory back.

    Pages come back in the recorded crawl order with the recorded
    fingerprints; the health is reconstructed from its stored fields.

    Raises:
        ValueError: no manifest, or one without the snapshot keys
            (e.g. a generator truth manifest, which has no
            fingerprints to round-trip).
    """
    directory = Path(directory)
    manifest_path = directory / CRAWL_SNAPSHOT_NAME
    if not manifest_path.is_file():
        raise ValueError(f"no crawl snapshot manifest in {directory}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if "fingerprints" not in manifest:
        raise ValueError(
            f"{manifest_path} is not a fetch snapshot (no fingerprints)"
        )
    health_dict = manifest.get("crawl_health") or {}
    health = CrawlHealth(
        **{
            name: health_dict[name]
            for name in _HEALTH_FIELDS
            if name in health_dict
        }
    )
    pages = [
        Page(
            url=name,
            html=(directory / name).read_text(encoding="utf-8"),
        )
        for name in manifest["pages"]
    ]
    return FetchedCrawl(
        seeds=tuple(manifest.get("seeds", ())),
        pages=pages,
        fingerprints=dict(manifest["fingerprints"]),
        health=health,
    )

"""The ingestion front door: from raw crawl to runnable site bundles.

Everything below this package assumes one clean list+detail site; the
paper's Section 3 vision starts from an arbitrary entry point.  This
package closes the gap: point :func:`ingest_pages` at a soup of
crawled pages and it fingerprints every page's template structure
(:mod:`~repro.ingest.fingerprint`), classifies pages as
list/detail/other (:mod:`~repro.ingest.classify`), groups them into
template clusters (:mod:`~repro.ingest.cluster`), and assembles
(list-chain, detail-cluster) pairs into batch-runner-ready bundles
with every unassignable page explicitly quarantined
(:mod:`~repro.ingest.bundle`).

The CLI front end is ``repro ingest CRAWL_DIR --out BUNDLES_DIR``;
the output feeds straight into ``repro segment-dir BUNDLES_DIR``.
"""

from repro.ingest.bundle import (
    INGEST_MANIFEST_NAME,
    IngestConfig,
    IngestReport,
    QuarantinedPage,
    SiteBundle,
    ingest_pages,
    write_bundles,
)
from repro.ingest.classify import ClassifyConfig, classify_profile, classify_profiles
from repro.ingest.cluster import ClusterConfig, TemplateCluster, cluster_profiles
from repro.ingest.fingerprint import (
    PageProfile,
    ShingleSpace,
    profile_page,
    profile_pages,
)

__all__ = [
    "INGEST_MANIFEST_NAME",
    "ClassifyConfig",
    "ClusterConfig",
    "IngestConfig",
    "IngestReport",
    "PageProfile",
    "QuarantinedPage",
    "ShingleSpace",
    "SiteBundle",
    "TemplateCluster",
    "classify_profile",
    "classify_profiles",
    "cluster_profiles",
    "ingest_pages",
    "profile_page",
    "profile_pages",
    "write_bundles",
]

"""The ingestion front door: from raw crawl to runnable site bundles.

Everything below this package assumes one clean list+detail site; the
paper's Section 3 vision starts from an arbitrary entry point.  This
package closes the gap: point :func:`ingest_pages` at a soup of
crawled pages and it fingerprints every page's template structure
(:mod:`~repro.ingest.fingerprint`), classifies pages as
list/detail/other (:mod:`~repro.ingest.classify`), groups them into
template clusters (:mod:`~repro.ingest.cluster`), and assembles
(list-chain, detail-cluster) pairs into batch-runner-ready bundles
with every unassignable page explicitly quarantined
(:mod:`~repro.ingest.bundle`).

The CLI front end is ``repro ingest CRAWL_DIR --out BUNDLES_DIR``;
the output feeds straight into ``repro segment-dir BUNDLES_DIR``.

Two lifecycle companions extend the directory-reading path:
:mod:`~repro.ingest.fetch` walks seed URLs through the resilient
crawler into a ``crawl.json`` snapshot (``repro ingest --fetch``),
and :mod:`~repro.ingest.diff` re-ingests only what a fingerprint
diff against the previous manifest says changed (``--incremental``),
carrying unchanged bundles forward byte-identically.
"""

from repro.ingest.bundle import (
    INGEST_MANIFEST_NAME,
    IngestConfig,
    IngestReport,
    QuarantinedPage,
    SiteBundle,
    ingest_pages,
    page_fingerprint,
    write_bundles,
)
from repro.ingest.classify import ClassifyConfig, classify_profile, classify_profiles
from repro.ingest.cluster import ClusterConfig, TemplateCluster, cluster_profiles
from repro.ingest.diff import (
    CrawlDiff,
    ReingestPlan,
    ReingestReport,
    diff_fingerprints,
    load_previous_manifest,
    plan_reingest,
    reingest_pages,
    write_reingest,
)
from repro.ingest.fetch import (
    CRAWL_SNAPSHOT_NAME,
    FetchedCrawl,
    fetch_crawl,
    load_snapshot,
    write_snapshot,
)
from repro.ingest.fingerprint import (
    PageProfile,
    ShingleSpace,
    profile_page,
    profile_pages,
)

__all__ = [
    "CRAWL_SNAPSHOT_NAME",
    "INGEST_MANIFEST_NAME",
    "ClassifyConfig",
    "ClusterConfig",
    "CrawlDiff",
    "FetchedCrawl",
    "IngestConfig",
    "IngestReport",
    "PageProfile",
    "QuarantinedPage",
    "ReingestPlan",
    "ReingestReport",
    "ShingleSpace",
    "SiteBundle",
    "TemplateCluster",
    "classify_profile",
    "classify_profiles",
    "cluster_profiles",
    "diff_fingerprints",
    "fetch_crawl",
    "ingest_pages",
    "load_previous_manifest",
    "load_snapshot",
    "page_fingerprint",
    "plan_reingest",
    "profile_page",
    "profile_pages",
    "reingest_pages",
    "write_bundles",
    "write_reingest",
    "write_snapshot",
]

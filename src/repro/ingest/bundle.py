"""Assemble template clusters into runnable site bundles.

The last ingest stage turns "a crawl, clustered by template" into the
exact shape the batch runner eats: per discovered sub-site, a chain
of list pages plus each list page's detail pages in record order.
The assembly logic follows the paper's navigation story:

1. A cluster most of whose members classify as "list" is a candidate
   list template.  Its members are chained by their "Next" links
   (chains only follow links that stay inside the cluster — a list
   page's Next never jumps templates).
2. Each chain's outgoing links are resolved against the crawl; the
   detail cluster is the template cluster that absorbs the majority
   of them.  A chain whose links scatter across many clusters is a
   portal, not a results chain, and is quarantined.
3. Per list page, the links that land in the detail cluster — in
   first-occurrence order, which is record order — become that page's
   detail pages, and the (chain, details) pair becomes a
   :class:`SiteBundle`.

**Nothing is dropped silently.**  Every input page ends the run
either inside a bundle or in the quarantine list with a reason
(``form`` / ``portal`` / ``short-chain`` / ``thin-list`` / ``orphan``
/ ``decoy`` / ``unlinked`` / ``duplicate-url``), the counts reconcile
by construction, and the same accounting is exported as ``ingest.*``
counters and a quarantine manifest for offline inspection.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.ingest.classify import (
    DETAIL,
    LIST,
    ClassifyConfig,
    classify_profiles,
)
from repro.ingest.cluster import (
    ClusterConfig,
    TemplateCluster,
    cluster_profiles,
)
from repro.ingest.fingerprint import PageProfile, ShingleSpace, profile_pages
from repro.obs import Observability, current
from repro.webdoc.page import Page
from repro.webdoc.store import save_sample

__all__ = [
    "IngestConfig",
    "IngestReport",
    "QuarantinedPage",
    "SiteBundle",
    "ingest_pages",
    "page_fingerprint",
    "write_bundles",
]

INGEST_MANIFEST_NAME = "ingest_manifest.json"

#: Quarantine reasons, in the order the manifest reports them.
QUARANTINE_REASONS = (
    "duplicate-url",  # second page with an already-seen URL
    "form",  # search/entry page (contains a <form>)
    "portal",  # list-like page whose links scatter across templates
    "short-chain",  # a Next chain below the minimum length
    "thin-list",  # a chain page with too few resolved details
    "orphan",  # structurally unique page (singleton cluster)
    "decoy",  # shared template never claimed as a detail cluster
    "unlinked",  # member of a claimed detail cluster no list links to
)


@dataclass(frozen=True)
class IngestConfig:
    """Knobs for the whole front door.

    Attributes:
        classify: page-type thresholds.
        cluster: template-cluster thresholds.
        min_chain: minimum list pages per bundle.  One-page "chains"
            are indistinguishable from portals and link hubs.
        min_details: minimum detail pages per list page.
        concentration: minimum fraction of a chain's candidate detail
            links that must land in a single cluster.  Real list
            pages concentrate (every row is the same template);
            portals scatter.
    """

    classify: ClassifyConfig = field(default_factory=ClassifyConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    min_chain: int = 2
    min_details: int = 2
    concentration: float = 0.5


@dataclass
class SiteBundle:
    """One discovered sub-site, in batch-runner shape.

    ``name`` is derived from the chain head's URL (stem of the file
    name), which is unique per bundle by construction.
    """

    name: str
    list_pages: list[Page]
    detail_pages_per_list: list[list[Page]]
    list_cluster_id: int
    detail_cluster_id: int

    @property
    def page_count(self) -> int:
        return len(self.list_pages) + sum(
            len(details) for details in self.detail_pages_per_list
        )

    def page_urls(self) -> list[str]:
        urls = [page.url for page in self.list_pages]
        for details in self.detail_pages_per_list:
            urls.extend(page.url for page in details)
        return urls


@dataclass(frozen=True)
class QuarantinedPage:
    """One page the bundler refused, and why."""

    url: str
    reason: str


def page_fingerprint(html: str) -> str:
    """Content identity of one page: SHA-256 of its UTF-8 bytes.

    This is the unit of change detection for the whole lifecycle
    (fetch snapshots, incremental re-ingest, store/wrapper
    invalidation): a page whose bytes did not change cannot have
    changed its template, its links or its records, so everything
    derived from it is still valid.
    """
    return hashlib.sha256(html.encode("utf-8")).hexdigest()


@dataclass
class IngestReport:
    """The full, reconciled outcome of one ingest run.

    Beyond the page accounting, the report carries the lifecycle
    context of the run: per-page content fingerprints (so the *next*
    ingest of the same crawl can diff against this one — see
    :mod:`repro.ingest.diff`) and, for fetch-driven runs, the
    :class:`~repro.crawl.resilient.CrawlHealth` in JSON-ready form so
    a degraded crawl is visible in the manifest instead of silent.
    """

    page_count: int
    cluster_count: int
    bundles: list[SiteBundle]
    quarantined: list[QuarantinedPage]
    fingerprints: dict[str, str] = field(default_factory=dict)
    crawl_health: dict | None = None

    @property
    def bundled_page_count(self) -> int:
        return sum(bundle.page_count for bundle in self.bundles)

    def reconciles(self) -> bool:
        """Every input page bundled or quarantined, no double counting."""
        return self.bundled_page_count + len(self.quarantined) == self.page_count

    def quarantine_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for page in self.quarantined:
            counts[page.reason] = counts.get(page.reason, 0) + 1
        return dict(
            sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        )

    def as_dict(self) -> dict:
        """JSON-ready summary (the quarantine manifest's schema)."""
        return {
            "pages": self.page_count,
            "clusters": self.cluster_count,
            "bundled": self.bundled_page_count,
            "quarantined": len(self.quarantined),
            "reconciled": self.reconciles(),
            "quarantine_counts": self.quarantine_counts(),
            "bundles": [
                {
                    "name": bundle.name,
                    "list_pages": [p.url for p in bundle.list_pages],
                    "detail_counts": [
                        len(details)
                        for details in bundle.detail_pages_per_list
                    ],
                    "pages": bundle.page_urls(),
                }
                for bundle in self.bundles
            ],
            "quarantine": [
                {"url": page.url, "reason": page.reason}
                for page in self.quarantined
            ],
            "fingerprints": dict(sorted(self.fingerprints.items())),
            "crawl_health": self.crawl_health,
            # Schema stability with incremental runs: a full ingest has
            # no diff, but the key is always present (see ingest/diff.py).
            "diff": None,
        }


def ingest_pages(
    pages: list[Page],
    config: IngestConfig | None = None,
    obs: Observability | None = None,
) -> IngestReport:
    """Run the whole front door over a crawl of arbitrary pages.

    Fingerprint → classify → cluster → bundle, with every stage timed
    under an ``ingest.*`` span and the page accounting exported as
    ``ingest.*`` counters.  The result reconciles by construction:
    every input page is in exactly one bundle or the quarantine list.
    """
    config = config or IngestConfig()
    obs = obs or current()

    with obs.span("ingest.run", pages=len(pages)) as run_span:
        unique_pages, duplicates = _drop_duplicate_urls(pages)

        with obs.span("ingest.fingerprint", pages=len(unique_pages)) as span:
            space = ShingleSpace()
            profiles = profile_pages(unique_pages, space)
            span.attributes["shingles"] = len(space)

        with obs.span("ingest.classify") as span:
            kinds = classify_profiles(profiles, config.classify)
            for kind in (LIST, DETAIL, "other"):
                span.attributes[kind] = kinds.count(kind)

        with obs.span("ingest.cluster") as span:
            clusters = cluster_profiles(profiles, config.cluster)
            span.attributes["clusters"] = len(clusters)

        with obs.span("ingest.bundle") as span:
            bundles, quarantined = _assemble(
                unique_pages, profiles, kinds, clusters, config
            )
            span.attributes["bundles"] = len(bundles)

        quarantined.extend(duplicates)
        report = IngestReport(
            page_count=len(pages),
            cluster_count=len(clusters),
            bundles=bundles,
            quarantined=quarantined,
            fingerprints={
                page.url: page_fingerprint(page.html)
                for page in unique_pages
            },
        )
        run_span.attributes["bundles"] = len(bundles)
        run_span.attributes["quarantined"] = len(quarantined)

        obs.counter("ingest.pages").inc(len(pages))
        obs.counter("ingest.clusters").inc(len(clusters))
        obs.counter("ingest.bundles").inc(len(bundles))
        obs.counter("ingest.pages.bundled").inc(report.bundled_page_count)
        obs.counter("ingest.pages.quarantined").inc(len(quarantined))
        for reason, count in report.quarantine_counts().items():
            obs.counter(f"ingest.quarantine.{reason}").inc(count)

    return report


def _drop_duplicate_urls(
    pages: list[Page],
) -> tuple[list[Page], list[QuarantinedPage]]:
    """Keep the first page per URL; quarantine later duplicates."""
    unique: list[Page] = []
    seen: set[str] = set()
    duplicates: list[QuarantinedPage] = []
    for page in pages:
        if page.url in seen:
            duplicates.append(QuarantinedPage(page.url, "duplicate-url"))
        else:
            seen.add(page.url)
            unique.append(page)
    return unique, duplicates


def _list_dominant(cluster: TemplateCluster, kinds: list[str]) -> bool:
    """Most members classify as list pages."""
    list_members = sum(1 for i in cluster.members if kinds[i] == LIST)
    return list_members * 2 > len(cluster.members)


def _chains(
    cluster: TemplateCluster,
    profiles: list[PageProfile],
    url_to_index: dict[str, int],
) -> list[list[int]]:
    """Next-chains inside one cluster, in first-member order.

    A chain head is a member no other member's Next link targets;
    each head's chain follows Next links while they resolve inside
    the cluster.  Cycles (a → b → a leaves no head) are broken by
    treating the earliest unvisited member as a head, so every member
    lands in exactly one chain.
    """
    members = set(cluster.members)
    next_of: dict[int, int] = {}
    targets: set[int] = set()
    for i in cluster.members:
        next_url = profiles[i].next_url
        if next_url is None:
            continue
        j = url_to_index.get(next_url)
        if j is not None and j in members:
            next_of[i] = j
            targets.add(j)

    chains: list[list[int]] = []
    visited: set[int] = set()
    heads = [i for i in cluster.members if i not in targets]
    # Cycle members are nobody's head; sweep them up afterwards.
    for head in heads + cluster.members:
        if head in visited:
            continue
        chain = []
        node: int | None = head
        while node is not None and node not in visited:
            visited.add(node)
            chain.append(node)
            node = next_of.get(node)
        chains.append(chain)
    return chains


def _assemble(
    pages: list[Page],
    profiles: list[PageProfile],
    kinds: list[str],
    clusters: list[TemplateCluster],
    config: IngestConfig,
) -> tuple[list[SiteBundle], list[QuarantinedPage]]:
    """Pair list chains with detail clusters; quarantine the rest."""
    url_to_index = {profile.url: i for i, profile in enumerate(profiles)}
    cluster_of: dict[int, int] = {}
    for cluster in clusters:
        for member in cluster.members:
            cluster_of[member] = cluster.cluster_id
    list_cluster_ids = {
        cluster.cluster_id
        for cluster in clusters
        if _list_dominant(cluster, kinds)
    }

    bundles: list[SiteBundle] = []
    assigned: dict[int, str] = {}  # page index -> "" (bundled) or reason
    claimed_detail_clusters: set[int] = set()

    for cluster in clusters:
        if cluster.cluster_id not in list_cluster_ids:
            continue
        for chain in _chains(cluster, profiles, url_to_index):
            outcome = _try_bundle(
                chain,
                pages,
                profiles,
                url_to_index,
                cluster_of,
                list_cluster_ids,
                assigned,
                config,
            )
            if isinstance(outcome, SiteBundle):
                outcome.list_cluster_id = cluster.cluster_id
                bundles.append(outcome)
                claimed_detail_clusters.add(outcome.detail_cluster_id)
            else:
                for i in chain:
                    assigned[i] = outcome

    quarantined: list[QuarantinedPage] = []
    for i, profile in enumerate(profiles):
        reason = assigned.get(i)
        if reason == "":
            continue  # bundled
        if reason is None:
            reason = _leftover_reason(
                i, profile, cluster_of, clusters,
                list_cluster_ids, claimed_detail_clusters,
            )
        quarantined.append(QuarantinedPage(profile.url, reason))
    return bundles, quarantined


def _try_bundle(
    chain: list[int],
    pages: list[Page],
    profiles: list[PageProfile],
    url_to_index: dict[str, int],
    cluster_of: dict[int, int],
    list_cluster_ids: set[int],
    assigned: dict[int, str],
    config: IngestConfig,
) -> SiteBundle | str:
    """Bundle one chain, or return its quarantine reason."""
    chain_set = set(chain)
    # Candidate detail links: the chain's outlinks that resolve to
    # crawled pages outside list clusters and outside the chain, and
    # are not already bundled elsewhere.
    per_page_candidates: list[list[int]] = []
    votes: dict[int, int] = {}
    total_candidates = 0
    for i in chain:
        candidates: list[int] = []
        for href in profiles[i].links:
            j = url_to_index.get(href)
            if (
                j is None
                or j in chain_set
                or assigned.get(j) == ""
                or cluster_of[j] in list_cluster_ids
            ):
                continue
            candidates.append(j)
            votes[cluster_of[j]] = votes.get(cluster_of[j], 0) + 1
            total_candidates += 1
        per_page_candidates.append(candidates)

    if total_candidates == 0:
        return "portal" if len(chain) > 1 else "short-chain"
    detail_cluster_id = min(
        votes, key=lambda cid: (-votes[cid], cid)
    )
    if votes[detail_cluster_id] / total_candidates < config.concentration:
        return "portal"
    if len(chain) < config.min_chain:
        return "short-chain"

    details_per_list: list[list[Page]] = []
    for candidates in per_page_candidates:
        details = [
            pages[j]
            for j in candidates
            if cluster_of[j] == detail_cluster_id
        ]
        if len(details) < config.min_details:
            return "thin-list"
        details_per_list.append(details)

    head_url = profiles[chain[0]].url
    bundle = SiteBundle(
        name=Path(head_url).stem or head_url,
        list_pages=[pages[i] for i in chain],
        detail_pages_per_list=details_per_list,
        list_cluster_id=-1,  # caller fills in
        detail_cluster_id=detail_cluster_id,
    )
    for i in chain:
        assigned[i] = ""
    for candidates in per_page_candidates:
        for j in candidates:
            if cluster_of[j] == detail_cluster_id:
                assigned[j] = ""
    return bundle


def _leftover_reason(
    i: int,
    profile: PageProfile,
    cluster_of: dict[int, int],
    clusters: list[TemplateCluster],
    list_cluster_ids: set[int],
    claimed_detail_clusters: set[int],
) -> str:
    """Why a page neither bundled nor failed with its chain."""
    if profile.has_form:
        return "form"
    cluster = clusters[cluster_of[i]]
    if len(cluster.members) == 1:
        return "orphan"
    if cluster.cluster_id in claimed_detail_clusters:
        return "unlinked"
    if cluster.cluster_id in list_cluster_ids:
        return "portal"
    return "decoy"


def write_bundles(
    report: IngestReport, out_dir: str | Path
) -> Path:
    """Materialize bundles as sample subdirectories plus a manifest.

    Each bundle becomes ``out_dir/<name>/`` in the standard sample
    layout (``sample.json`` + page files), so
    ``tasks_from_directory(out_dir)`` — and therefore ``repro
    segment-dir out_dir`` — consumes the output directly.  The
    quarantine manifest (:data:`INGEST_MANIFEST_NAME`) records the
    full accounting next to the bundles.  Returns the manifest path.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for bundle in report.bundles:
        save_sample(
            out_dir / bundle.name,
            bundle.name,
            bundle.list_pages,
            bundle.detail_pages_per_list,
        )
    manifest_path = out_dir / INGEST_MANIFEST_NAME
    manifest_path.write_text(
        json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
        newline="\n",
    )
    return manifest_path

"""Page-type classification: list / detail / other.

The paper's Section 3 navigation assumes the system can tell result
("list") pages from record ("detail") pages from everything else.
Over an arbitrary crawl that distinction comes from three structural
signals, all already collected by the fingerprint pass:

* **link fanout** — a list page links out to a screenful of records;
  a detail page carries only a handful of chrome links; ads and other
  dead ends often link nowhere.
* **repeating structure** — a list page renders one row template many
  times, so most of its structural shingles are repeats.
* **forms** — a page with a ``<form>`` is a search entry point, not a
  data page, whatever else it looks like.

The classification is a deterministic *prior*: the bundler
(:mod:`repro.ingest.bundle`) trusts it only in aggregate (a cluster
is treated as a list cluster when most members classify as lists) and
demotes pages the chain/fanout evidence contradicts — a portal page
classifies as "list" here but never survives bundling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ingest.fingerprint import PageProfile

__all__ = ["ClassifyConfig", "PageKind", "classify_profile", "classify_profiles"]

#: The three page types, as string constants (JSON-friendly).
PageKind = str

LIST: PageKind = "list"
DETAIL: PageKind = "detail"
OTHER: PageKind = "other"


@dataclass(frozen=True)
class ClassifyConfig:
    """Classification thresholds.

    Attributes:
        min_list_fanout: minimum distinct outgoing links for a list
            page.  A results page links to every row's record plus
            chrome; generated list pages sit well above 10.
        min_list_repeat: minimum :attr:`PageProfile.repeat_ratio` for
            a list page.  Row templates repeat, so list pages score
            0.5+; one-off pages score near 0.
        max_detail_fanout: maximum fanout for a detail page.  Record
            pages carry only chrome links (home / search / footer).
    """

    min_list_fanout: int = 6
    min_list_repeat: float = 0.25
    max_detail_fanout: int = 5


def classify_profile(
    profile: PageProfile, config: ClassifyConfig | None = None
) -> PageKind:
    """Classify one fingerprinted page as list / detail / other."""
    config = config or ClassifyConfig()
    if profile.has_form:
        return OTHER
    fanout = profile.link_fanout
    if (
        fanout >= config.min_list_fanout
        and profile.repeat_ratio >= config.min_list_repeat
    ):
        return LIST
    if 1 <= fanout <= config.max_detail_fanout:
        return DETAIL
    return OTHER


def classify_profiles(
    profiles: list[PageProfile], config: ClassifyConfig | None = None
) -> list[PageKind]:
    """Classify every profile; output parallels the input."""
    config = config or ClassifyConfig()
    return [classify_profile(profile, config) for profile in profiles]

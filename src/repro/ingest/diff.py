"""Incremental re-ingest: fingerprint-diff a fresh crawl, redo less.

A site that changed three detail pages should not cost a full
re-cluster of thirteen hundred.  This module implements the diff
path of the ingest lifecycle:

1. :func:`diff_fingerprints` compares the fresh crawl's per-page
   content fingerprints against the previous ingest manifest's and
   classifies every URL as unchanged / changed / added / removed
   (:class:`CrawlDiff`);
2. :func:`plan_reingest` maps the dirty URLs onto the previous run's
   bundles.  A bundle is **stale** when any of its pages changed or
   vanished, or when a dirty page links into it (an added or edited
   page can only re-wire bundles it links to — a clean page's links
   cannot change without its bytes changing, so dirty pages' forward
   links bound the blast radius).  Stale bundles' pages, the dirty
   pages themselves, and any previously quarantined page a dirty page
   links to form the re-ingest subset; everything else is carried
   forward untouched;
3. :func:`reingest_pages` runs the normal front door over just the
   subset and merges the outcome with the carried bundles into a
   :class:`ReingestReport` that reconciles over the *whole* fresh
   crawl — carried pages + re-bundled pages + quarantined pages ==
   input pages, same invariant as a full ingest;
4. :func:`write_reingest` materializes it: stale bundle directories
   are deleted, rebuilt ones rewritten, carried ones left
   byte-identical on disk (the digest-parity guarantee), and the
   merged manifest is itself a valid "previous" for the next
   incremental run.

The diff outcome is exported as ``ingest.diff.{unchanged, changed,
added, removed}`` counters plus ``ingest.carried.bundles`` /
``ingest.rebuilt.bundles``; stale bundle names feed
:mod:`repro.lifecycle` so store rows and cached wrappers die with
their templates.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.crawl.crawler import extract_links
from repro.ingest.bundle import (
    INGEST_MANIFEST_NAME,
    IngestConfig,
    IngestReport,
    QuarantinedPage,
    _drop_duplicate_urls,
    ingest_pages,
    page_fingerprint,
)
from repro.obs import Observability, current
from repro.webdoc.page import Page
from repro.webdoc.store import save_sample

__all__ = [
    "CrawlDiff",
    "ReingestPlan",
    "ReingestReport",
    "diff_fingerprints",
    "load_previous_manifest",
    "plan_reingest",
    "reingest_pages",
    "write_reingest",
]


@dataclass(frozen=True)
class CrawlDiff:
    """URL-level outcome of comparing two crawls by content."""

    unchanged: tuple[str, ...]
    changed: tuple[str, ...]
    added: tuple[str, ...]
    removed: tuple[str, ...]

    def counts(self) -> dict[str, int]:
        """JSON-ready counter form (the ``--json`` payload's ``diff``)."""
        return {
            "unchanged": len(self.unchanged),
            "changed": len(self.changed),
            "added": len(self.added),
            "removed": len(self.removed),
        }

    @property
    def dirty(self) -> frozenset[str]:
        """URLs whose current bytes were never ingested: changed+added."""
        return frozenset(self.changed) | frozenset(self.added)


def diff_fingerprints(
    previous: dict[str, str], fresh: dict[str, str]
) -> CrawlDiff:
    """Classify every URL across two fingerprint maps (sorted output)."""
    unchanged: list[str] = []
    changed: list[str] = []
    added: list[str] = []
    for url in sorted(fresh):
        old = previous.get(url)
        if old is None:
            added.append(url)
        elif old == fresh[url]:
            unchanged.append(url)
        else:
            changed.append(url)
    removed = sorted(url for url in previous if url not in fresh)
    return CrawlDiff(
        unchanged=tuple(unchanged),
        changed=tuple(changed),
        added=tuple(added),
        removed=tuple(removed),
    )


@dataclass
class ReingestPlan:
    """What one incremental run will redo, carry, and invalidate.

    Attributes:
        diff: the URL-level crawl diff.
        reingest_urls: the re-ingest subset, in crawl order.
        carried: previous-manifest bundle entries carried forward
            verbatim (dicts with ``name`` / ``list_pages`` /
            ``detail_counts`` / ``pages``).
        carried_quarantine: previously quarantined pages still present
            and unchanged, kept with their original reasons.
        stale_bundles: bundle names invalidated by this run (their
            directories, store rows and wrappers are all stale),
            sorted.
    """

    diff: CrawlDiff
    reingest_urls: list[str]
    carried: list[dict]
    carried_quarantine: list[QuarantinedPage]
    stale_bundles: list[str]


def load_previous_manifest(out_dir: str | Path) -> dict | None:
    """The previous run's ingest manifest, if one usable for diffing.

    Returns None when the manifest is missing, unparseable, or
    predates the lifecycle fields (no per-page fingerprints / no
    per-bundle page lists) — callers fall back to a full ingest.
    """
    path = Path(out_dir) / INGEST_MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or not manifest.get("fingerprints"):
        return None
    bundles = manifest.get("bundles", [])
    if any("pages" not in entry for entry in bundles):
        return None
    return manifest


def plan_reingest(
    previous: dict,
    pages: list[Page],
    fingerprints: dict[str, str],
) -> ReingestPlan:
    """Decide the re-ingest subset (see the module docstring for why).

    Args:
        previous: the previous ingest manifest
            (:func:`load_previous_manifest`).
        pages: the fresh crawl, duplicate URLs already dropped.
        fingerprints: URL -> content fingerprint of ``pages``.
    """
    diff = diff_fingerprints(previous["fingerprints"], fingerprints)
    current_urls = set(fingerprints)
    page_by_url = {page.url: page for page in pages}

    bundle_of: dict[str, str] = {}
    for entry in previous.get("bundles", []):
        for url in entry["pages"]:
            bundle_of[url] = entry["name"]
    previous_quarantine = {
        item["url"]: item["reason"]
        for item in previous.get("quarantine", [])
    }

    # Forward links of dirty pages bound how far a change can re-wire
    # the bundle graph: only pages whose bytes changed can link (or
    # stop linking) anywhere new.
    dirty = diff.dirty
    dirty_targets: set[str] = set()
    for url in dirty:
        dirty_targets.update(extract_links(page_by_url[url].html))

    stale: set[str] = set()
    for url in list(diff.changed) + list(diff.removed):
        name = bundle_of.get(url)
        if name is not None:
            stale.add(name)
    for url in dirty_targets:
        name = bundle_of.get(url)
        if name is not None:
            stale.add(name)

    reingest: set[str] = set(dirty)
    carried: list[dict] = []
    for entry in previous.get("bundles", []):
        if entry["name"] in stale:
            reingest.update(
                url for url in entry["pages"] if url in current_urls
            )
        else:
            carried.append(entry)
    # A dirty page linking at a previously quarantined page may claim
    # it now (a new list page adopting "unlinked" details); give those
    # pages a second chance inside the subset.
    reingest.update(
        url
        for url in dirty_targets
        if url in previous_quarantine and url in current_urls
    )

    # Everything else carries forward: bundle pages stay bundled,
    # quarantined pages stay quarantined with their original reasons.
    carried_pages = {url for entry in carried for url in entry["pages"]}
    carried_quarantine = [
        QuarantinedPage(url, reason)
        for url, reason in previous_quarantine.items()
        if url in current_urls and url not in reingest
    ]
    leftovers = (
        current_urls
        - reingest
        - carried_pages
        - {page.url for page in carried_quarantine}
    )
    # Safety net: an unchanged page the previous run never accounted
    # for (foreign manifest) re-ingests rather than vanishing.
    reingest.update(leftovers)

    return ReingestPlan(
        diff=diff,
        reingest_urls=[
            page.url for page in pages if page.url in reingest
        ],
        carried=carried,
        carried_quarantine=carried_quarantine,
        stale_bundles=sorted(stale),
    )


@dataclass
class ReingestReport:
    """The reconciled outcome of one incremental re-ingest.

    Same accounting contract as a full
    :class:`~repro.ingest.bundle.IngestReport` — every fresh-crawl
    page is in exactly one carried bundle, one rebuilt bundle, or the
    quarantine list — plus the lifecycle facts: the diff, what was
    carried vs rebuilt vs removed, and which bundle names downstream
    consumers must invalidate (:attr:`stale_bundles`).
    """

    page_count: int
    diff: CrawlDiff
    report: IngestReport  #: the front door's run over the subset only
    carried: list[dict]
    quarantined: list[QuarantinedPage]  #: merged: subset + carried
    stale_bundles: list[str]
    removed_bundles: list[str]
    fingerprints: dict[str, str]
    crawl_health: dict | None = None

    @property
    def carried_page_count(self) -> int:
        return sum(len(entry["pages"]) for entry in self.carried)

    @property
    def bundled_page_count(self) -> int:
        return self.carried_page_count + self.report.bundled_page_count

    @property
    def bundle_count(self) -> int:
        return len(self.carried) + len(self.report.bundles)

    @property
    def reprocessed_page_count(self) -> int:
        """Pages the front door actually re-ran (the savings metric)."""
        return self.report.page_count

    @property
    def rebuilt(self) -> list[str]:
        return [bundle.name for bundle in self.report.bundles]

    def reconciles(self) -> bool:
        """Every fresh-crawl page carried, rebuilt, or quarantined."""
        return (
            self.bundled_page_count + len(self.quarantined)
            == self.page_count
        )

    def quarantine_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for page in self.quarantined:
            counts[page.reason] = counts.get(page.reason, 0) + 1
        return dict(
            sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        )

    def as_dict(self) -> dict:
        """JSON-ready merged summary — a valid "previous" manifest."""
        bundles = list(self.carried) + [
            {
                "name": bundle.name,
                "list_pages": [p.url for p in bundle.list_pages],
                "detail_counts": [
                    len(details) for details in bundle.detail_pages_per_list
                ],
                "pages": bundle.page_urls(),
            }
            for bundle in self.report.bundles
        ]
        return {
            "pages": self.page_count,
            "clusters": self.report.cluster_count,
            "bundled": self.bundled_page_count,
            "quarantined": len(self.quarantined),
            "reconciled": self.reconciles(),
            "quarantine_counts": self.quarantine_counts(),
            "bundles": sorted(bundles, key=lambda entry: entry["name"]),
            "quarantine": [
                {"url": page.url, "reason": page.reason}
                for page in self.quarantined
            ],
            "fingerprints": dict(sorted(self.fingerprints.items())),
            "crawl_health": self.crawl_health,
            "diff": self.diff.counts(),
            "reprocessed": self.reprocessed_page_count,
            "carried": sorted(entry["name"] for entry in self.carried),
            "rebuilt": sorted(self.rebuilt),
            "stale_bundles": list(self.stale_bundles),
            "removed_bundles": list(self.removed_bundles),
        }


def reingest_pages(
    pages: list[Page],
    previous: dict,
    config: IngestConfig | None = None,
    obs: Observability | None = None,
) -> ReingestReport:
    """Diff ``pages`` against ``previous`` and re-ingest only the dirty part.

    The carried portion is never re-profiled, re-classified or
    re-clustered — its manifest entries ride through verbatim, which
    is what keeps carried bundle directories byte-identical on disk.
    """
    obs = obs if obs is not None else current()
    with obs.span("ingest.reingest", pages=len(pages)) as span:
        unique_pages, duplicates = _drop_duplicate_urls(pages)
        fingerprints = {
            page.url: page_fingerprint(page.html) for page in unique_pages
        }
        plan = plan_reingest(previous, unique_pages, fingerprints)
        for name in ("unchanged", "changed", "added", "removed"):
            obs.counter(f"ingest.diff.{name}").inc(
                len(getattr(plan.diff, name))
            )

        subset_urls = set(plan.reingest_urls)
        subset = [
            page for page in unique_pages if page.url in subset_urls
        ]
        if subset:
            sub_report = ingest_pages(subset, config, obs=obs)
        else:
            sub_report = IngestReport(
                page_count=0,
                cluster_count=0,
                bundles=[],
                quarantined=[],
            )
        rebuilt_names = {bundle.name for bundle in sub_report.bundles}
        removed_bundles = sorted(
            set(plan.stale_bundles) - rebuilt_names
        )
        obs.counter("ingest.carried.bundles").inc(len(plan.carried))
        obs.counter("ingest.rebuilt.bundles").inc(len(rebuilt_names))
        span.attributes["reprocessed"] = len(subset)
        span.attributes["carried"] = len(plan.carried)
        span.attributes["stale"] = len(plan.stale_bundles)

        return ReingestReport(
            page_count=len(pages),
            diff=plan.diff,
            report=sub_report,
            carried=plan.carried,
            quarantined=(
                list(sub_report.quarantined)
                + plan.carried_quarantine
                + duplicates
            ),
            stale_bundles=plan.stale_bundles,
            removed_bundles=removed_bundles,
            fingerprints=fingerprints,
            crawl_health=None,
        )


def write_reingest(
    reingest: ReingestReport, out_dir: str | Path
) -> Path:
    """Apply one incremental run to a bundle directory.

    Stale bundle directories are deleted (rebuilt ones come straight
    back from the subset run; vanished ones stay gone), carried
    directories are not touched — their bytes are the previous run's,
    which is the point — and the merged manifest replaces
    :data:`~repro.ingest.bundle.INGEST_MANIFEST_NAME`.  Returns the
    manifest path.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name in reingest.stale_bundles:
        shutil.rmtree(out_dir / name, ignore_errors=True)
    for bundle in reingest.report.bundles:
        save_sample(
            out_dir / bundle.name,
            bundle.name,
            bundle.list_pages,
            bundle.detail_pages_per_list,
        )
    manifest_path = out_dir / INGEST_MANIFEST_NAME
    manifest_path.write_text(
        json.dumps(reingest.as_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
        newline="\n",
    )
    return manifest_path

"""Structural template fingerprints for arbitrary crawled pages.

Two pages generated from one template share almost all of their markup
*structure* even when their visible text is completely different.  The
front door exploits that: each page is lexed once (reusing the
:mod:`repro.webdoc.html` lexer) into a sequence of structural *atoms*
— tag opens/closes with their class attribute, plus a collapsed symbol
for every text run — and the atom sequence is shingled into k-grams.
Two pages from the same template then share most of their shingle
*sets*, and template grouping becomes set similarity.

Unlike ``crawl/classifier.py``'s pairwise Jaccard over token-text
sets, fingerprints are built for index-fast comparison: atoms and
shingles are interned through a corpus-scoped
:class:`~repro.webdoc.interning.TokenTable` (PR 7's dense-int
interning), so a page's fingerprint is a sorted tuple of small ints
and the clusterer (:mod:`repro.ingest.cluster`) can find similar
pages through an inverted shingle→cluster index instead of comparing
every pair of pages.

The same single lexer pass also collects the page-level signals the
classifier (:mod:`repro.ingest.classify`) needs: distinct outgoing
links in first-occurrence order (= record order on a list page), the
"Next" link if any, whether the page contains a form, and how
repetitive the structure is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.webdoc.html import EventKind, lex_html
from repro.webdoc.interning import TokenTable
from repro.webdoc.page import Page

__all__ = ["PageProfile", "ShingleSpace", "profile_page", "profile_pages"]

#: Shingle width over the structural atom sequence.  Four atoms is
#: roughly one "cell" of markup (`<td> <a> T </a>` …): wide enough
#: that different row layouts produce disjoint shingles, narrow
#: enough that small per-page variation (pager arrows, ad slots)
#: moves only a few shingles.
SHINGLE_K = 4

#: Collapsed atom for any non-whitespace text run: fingerprints are
#: structural, so all visible text looks the same.
_TEXT_ATOM = "T"


@dataclass(frozen=True)
class PageProfile:
    """Everything the front door knows about one page after one lex pass.

    Attributes:
        url: the page's address (identifier only, never fetched).
        shingles: sorted distinct shingle ids — the structural
            fingerprint.  Ids are scoped to the
            :class:`ShingleSpace` that produced them.
        shingle_total: total shingle count including repeats; with
            ``len(shingles)`` this gives the repetition signal.
        links: distinct outgoing hrefs in first-occurrence order
            (fragment-only and empty hrefs skipped).  On a list page
            first-occurrence order is record order.
        next_url: the href of the first anchor whose text is "Next"
            (case-insensitive), if any — the paper's pager signal.
        has_form: whether the page contains a ``<form>`` tag (search
            entry points, not data pages).
        text_runs: number of non-whitespace text runs, a cheap size
            proxy.
    """

    url: str
    shingles: tuple[int, ...]
    shingle_total: int
    links: tuple[str, ...]
    next_url: str | None
    has_form: bool
    text_runs: int

    @property
    def link_fanout(self) -> int:
        """How many distinct pages this one links to."""
        return len(self.links)

    @property
    def repeat_ratio(self) -> float:
        """Fraction of shingles that are repeats, in [0, 1].

        A list page renders one row template N times, so most of its
        shingles occur N times and the ratio is high; a one-off page
        repeats almost nothing.
        """
        if self.shingle_total == 0:
            return 0.0
        return 1.0 - len(self.shingles) / self.shingle_total


class ShingleSpace:
    """Corpus-scoped interning of structural atoms and shingles.

    One space is shared by every page of one ingest run so shingle
    ids are comparable across pages (the same scoping rule as
    :class:`~repro.webdoc.interning.TokenTable`, which it reuses for
    the atom alphabet).  Shingle k-grams — tuples of atom ids — get
    their own dense ids so a fingerprint is a flat int tuple.
    """

    __slots__ = ("atoms", "_shingle_ids", "k")

    def __init__(self, k: int = SHINGLE_K) -> None:
        if k < 1:
            raise ValueError(f"shingle width must be >= 1, got {k}")
        self.atoms = TokenTable()
        self._shingle_ids: dict[tuple[int, ...], int] = {}
        self.k = k

    def __len__(self) -> int:
        return len(self._shingle_ids)

    def shingle_id(self, gram: tuple[int, ...]) -> int:
        """The dense id of an atom-id k-gram, assigning one if new."""
        table = self._shingle_ids
        found = table.get(gram)
        if found is None:
            found = len(table)
            table[gram] = found
        return found


def _atom_for_open(event) -> str:
    """The structural atom of a TAG_OPEN event.

    The ``class`` attribute participates because generated chrome
    uses classes to mark structure (``<div class="hdr">`` vs a plain
    ``<div>``); other attribute *values* (hrefs, ids) are per-page
    noise and are ignored.
    """
    cls = event.attrs.get("class")
    if cls:
        return f"<{event.data}.{cls}>"
    return f"<{event.data}>"


def profile_page(page: Page, space: ShingleSpace) -> PageProfile:
    """Fingerprint one page with a single lexer pass."""
    atom_ids: list[int] = []
    links: list[str] = []
    seen_links: set[str] = set()
    next_url: str | None = None
    has_form = False
    text_runs = 0

    current_href: str | None = None
    current_text: list[str] = []
    intern = space.atoms.intern

    for event in lex_html(page.html):
        kind = event.kind
        if kind is EventKind.TAG_OPEN:
            atom_ids.append(intern(_atom_for_open(event)))
            name = event.data
            if name == "form":
                has_form = True
            elif name == "a":
                current_href = None
                current_text = []
                href = event.attrs.get("href", "").strip()
                if href and not href.startswith("#"):
                    current_href = href
                    if href not in seen_links:
                        seen_links.add(href)
                        links.append(href)
        elif kind is EventKind.TAG_CLOSE:
            atom_ids.append(intern(f"</{event.data}>"))
            if event.data == "a" and current_href is not None:
                if next_url is None:
                    text = " ".join(" ".join(current_text).split())
                    if text.lower() == "next":
                        next_url = current_href
                current_href = None
        elif kind is EventKind.TEXT:
            if not event.data.isspace():
                atom_ids.append(intern(_TEXT_ATOM))
                text_runs += 1
                if current_href is not None:
                    current_text.append(event.data)

    k = space.k
    if not atom_ids:
        grams: list[tuple[int, ...]] = []
    elif len(atom_ids) < k:
        grams = [tuple(atom_ids)]
    else:
        grams = [
            tuple(atom_ids[i : i + k])
            for i in range(len(atom_ids) - k + 1)
        ]
    shingle_id = space.shingle_id
    ids = [shingle_id(gram) for gram in grams]

    return PageProfile(
        url=page.url,
        shingles=tuple(sorted(set(ids))),
        shingle_total=len(ids),
        links=tuple(links),
        next_url=next_url,
        has_form=has_form,
        text_runs=text_runs,
    )


def profile_pages(
    pages: list[Page], space: ShingleSpace | None = None
) -> list[PageProfile]:
    """Fingerprint a crawl: one profile per page, shared shingle space."""
    if space is None:
        space = ShingleSpace()
    return [profile_page(page, space) for page in pages]

"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream reader (e.g. ``| head``) closed the pipe early.
        # Point stdout at devnull so the interpreter's exit flush
        # cannot raise again, and exit like a well-behaved filter.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)

"""The hidden-web site simulator.

A :class:`SiteSpec` describes one site declaratively (schema, layout,
record counts, quirks); :class:`GeneratedSite` renders it into a fully
deterministic set of pages with the structure the paper relies on:

* **list pages** — chrome (header, ads, result line), a table of
  record rows each linking to its detail page, chrome (footer);
* **detail pages** — one per record, rendered from a different
  template, showing the record's fields (possibly re-spelled or
  omitted by quirks) plus detail-only extras;
* **decoy pages** — advertisement pages linked from list pages, for
  exercising the crawler's list/detail classifier.

Ground truth is captured as character spans: each rendered row records
``(record_index, start, end)`` into the list page's HTML, so any
extract can later be attributed to its true record via its token
offsets, independent of layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dataclass_field
from typing import Callable

from repro.core.exceptions import FetchError, SiteGenError
from repro.sitegen.corruptions import Quirks
from repro.sitegen.rendering import HtmlBuilder, ad_sentence, link
from repro.sitegen.rng import SiteRng
from repro.sitegen.schema import RecordSchema
from repro.webdoc.entities import encode_entities
from repro.webdoc.page import Page

__all__ = ["RowLayout", "SiteSpec", "TrueRow", "ListPageTruth", "GeneratedSite"]


class RowLayout(enum.Enum):
    """How record rows are laid out on list pages (Section 6.1: "Some
    used grid-like tables ... others were more free-form")."""

    GRID = "grid"  #: bordered ``<table>`` with one ``<tr>`` per record
    BLOCKS = "blocks"  #: free-form ``<div>`` blocks with ``<br>`` separators
    NUMBERED = "numbered"  #: numbered ``<p>`` entries ("1.", "2.", ...)
    FLAT = "flat"  #: one container; ``<br><br>`` between records, ``<br>``
    #: between fields — the layout that defeats naive tag splitting,
    #: since the same tag separates both records and fields


@dataclass(frozen=True)
class SiteSpec:
    """Declarative description of one simulated site.

    Attributes:
        name: url-safe identifier (``"superpages"``).
        title: display title used in the chrome.
        domain: information domain (``"whitepages"``, ``"books"``,
            ``"propertytax"``, ``"corrections"``).
        schema: the record schema.
        records_per_page: record count of each list page (the paper
            uses two list pages per site).
        layout: row layout.
        quirks: injected pathologies.
        seed: generation seed.
        detail_labels: per-field label shown on detail pages
            (defaults to the capitalized field name).
        detail_extras: optional generator of extra detail-only
            ``(label, value)`` rows per record.
        detail_link_text: text of each row's detail link.
        post_process: optional hook mutating a page's record dicts
            after generation (used to force quirk preconditions, e.g.
            a shared town or a "Parole" status).
        ad_link_count: decoy advertisement links per list page.
        ad_table: lay the advertisement bar out with a ``<table>`` —
            the non-table use of table tags the paper warns about,
            which misleads tag-based baselines.
        numbering_continuous: NUMBERED layouts count across pages
            ("11.", "12.", ... on the second results page) instead of
            restarting at "1.".  This is what a crawler gets by
            following the "Next" link instead of sampling separate
            queries — the paper's suggested repair: "One method is to
            simply follow the 'Next' link... The entry numbers of the
            next page will be different from others in the sample."
            (Section 6.2.)
    """

    name: str
    title: str
    domain: str
    schema: RecordSchema
    records_per_page: tuple[int, ...]
    layout: RowLayout
    quirks: Quirks = dataclass_field(default_factory=Quirks)
    seed: int = 0
    detail_labels: dict[str, str] = dataclass_field(default_factory=dict)
    detail_extras: Callable[[SiteRng, dict], list[tuple[str, str]]] | None = None
    detail_link_text: str = "More Info"
    post_process: Callable[[SiteRng, list[dict], int], None] | None = None
    ad_link_count: int = 1
    ad_table: bool = False
    numbering_continuous: bool = False

    def label_for(self, field_name: str) -> str:
        """Detail-page label of a field."""
        return self.detail_labels.get(field_name, field_name.capitalize())


@dataclass(frozen=True)
class TrueRow:
    """Ground truth for one record row of a list page.

    Attributes:
        record_index: 0-based index within the page (= detail index).
        record_id: globally unique record identifier.
        values: list-view field values (post-quirk spelling).
        detail_url: URL of the record's detail page.
        span: ``(start, end)`` character range of the row in the list
            page HTML.
    """

    record_index: int
    record_id: str
    values: dict[str, str]
    detail_url: str
    span: tuple[int, int]


@dataclass(frozen=True)
class ListPageTruth:
    """Ground truth for one list page."""

    page_index: int
    rows: tuple[TrueRow, ...]

    def row_of_offset(self, offset: int) -> TrueRow | None:
        """The row whose span contains a character offset, if any."""
        for row in self.rows:
            start, end = row.span
            if start <= offset < end:
                return row
        return None


class GeneratedSite:
    """A fully rendered simulated site."""

    def __init__(self, spec: SiteSpec) -> None:
        if len(spec.records_per_page) < 2:
            raise SiteGenError(
                f"{spec.name}: need at least two list pages for template "
                "induction (paper setup)"
            )
        self.spec = spec
        self.list_pages: list[Page] = []
        self.truth: list[ListPageTruth] = []
        self._detail_pages: list[list[Page]] = []
        self._by_url: dict[str, Page] = {}
        self._build()

    # -- public API ----------------------------------------------------------

    def detail_pages(self, page_index: int) -> list[Page]:
        """Detail pages of one list page, in row (link) order."""
        return list(self._detail_pages[page_index])

    def fetch(self, url: str) -> Page:
        """Serve a page by URL (the simulated HTTP layer).

        Raises:
            FetchError: unknown URL.
        """
        page = self._by_url.get(url)
        if page is None:
            raise FetchError(f"{self.spec.name}: no such page {url!r}")
        return page

    def urls(self) -> list[str]:
        """Every URL the site serves."""
        return sorted(self._by_url)

    # -- generation ------------------------------------------------------------

    def _build(self) -> None:
        spec = self.spec
        rng = SiteRng(spec.seed)
        record_rng = rng.fork("records")
        noise_rng = rng.fork("noise")

        numbering_offset = 0
        for page_index, count in enumerate(spec.records_per_page):
            self._numbering_offset = (
                numbering_offset if spec.numbering_continuous else 0
            )
            numbering_offset += count
            records = [spec.schema.generate(record_rng) for _ in range(count)]
            if spec.post_process is not None:
                spec.post_process(record_rng, records, page_index)

            extras_per_row: list[list[tuple[str, str]]] = []
            for row_index, record in enumerate(records):
                if spec.detail_extras is None:
                    extras_per_row.append([])
                else:
                    extras_rng = SiteRng(
                        spec.seed * 100003 + page_index * 1009 + row_index
                    )
                    extras_per_row.append(spec.detail_extras(extras_rng, record))

            detail_urls = [
                f"{spec.name}-p{page_index}-detail{row}.html"
                for row in range(count)
            ]
            detail_pages = [
                self._render_detail_page(
                    page_index, row, records, extras_per_row[row],
                    detail_urls[row], noise_rng,
                )
                for row in range(count)
            ]
            self._detail_pages.append(detail_pages)
            for page in detail_pages:
                self._by_url[page.url] = page

            list_page, truth = self._render_list_page(
                page_index, records, extras_per_row, detail_urls, noise_rng
            )
            self.list_pages.append(list_page)
            self.truth.append(truth)
            self._by_url[list_page.url] = list_page

        for ad_page in self._render_ad_pages(noise_rng):
            self._by_url[ad_page.url] = ad_page

        index_page = self._render_index_page()
        self._by_url[index_page.url] = index_page
        self.index_page = index_page

    def _render_index_page(self) -> Page:
        """The site's entry point: a search form plus a sample-search
        link into the first results page (the paper's "pointer to the
        top-level page — index page or a form")."""
        spec = self.spec
        builder = HtmlBuilder()
        builder.add("<html><head><title>")
        builder.add_text(f"{spec.title} Online Directory")
        builder.add("</title></head><body>")
        builder.add(f"<h1>{encode_entities(spec.title)}</h1>")
        builder.add(
            '<form action="search.html" method="get">'
            '<input name="q" type="text"> '
            '<input type="submit" value="Search"></form>'
        )
        builder.add("<p>Try a ")
        builder.add(link(f"{spec.name}-list0.html", "sample search"))
        builder.add("</p>")
        builder.add(
            "<p class=\"ftr\">Copyright 2004. All rights reserved.</p>"
            "</body></html>"
        )
        return Page(url=f"{spec.name}-index.html", html=builder.build(), kind="other")

    # -- list pages --------------------------------------------------------------

    def _render_list_page(
        self,
        page_index: int,
        records: list[dict],
        extras_per_row: list[list[tuple[str, str]]],
        detail_urls: list[str],
        noise_rng: SiteRng,
    ) -> tuple[Page, ListPageTruth]:
        spec = self.spec
        builder = HtmlBuilder()
        url = f"{spec.name}-list{page_index}.html"

        self._list_header(
            builder, page_index, records, extras_per_row, noise_rng
        )

        rows: list[TrueRow] = []
        if spec.layout is RowLayout.GRID:
            builder.add('<table border="1" cellpadding="2">')
            header_cells = "".join(
                f"<th>{encode_entities(spec.label_for(name))}</th>"
                for name in spec.schema.list_fields
            )
            builder.add(f"<tr>{header_cells}<th></th></tr>")
        elif spec.layout is RowLayout.FLAT:
            builder.add('<div class="results">')
        for row_index, record in enumerate(records):
            rows.append(
                self._render_row(
                    builder, page_index, row_index, record, detail_urls[row_index]
                )
            )
        if spec.layout is RowLayout.GRID:
            builder.add("</table>")
        elif spec.layout is RowLayout.FLAT:
            builder.add("</div>")

        self._pager(builder, page_index)
        self._list_footer(builder, len(records))
        page = Page(url=url, html=builder.build(), kind="list")
        return page, ListPageTruth(page_index=page_index, rows=tuple(rows))

    def _list_header(
        self,
        builder: HtmlBuilder,
        page_index: int,
        records: list[dict],
        extras_per_row: list[list[tuple[str, str]]],
        noise_rng: SiteRng,
    ) -> None:
        spec = self.spec
        count = len(records)
        builder.add("<html><head><title>")
        builder.add_text(f"{spec.title} Online Directory")
        builder.add("</title></head><body>")
        builder.add(f"<div class=\"hdr\"><h1>{encode_entities(spec.title)}</h1>")
        builder.add(
            link("index.html", "Home")
            + " "
            + link("search.html", "Search Again")
            + " "
            + link("help.html", "Help")
        )
        builder.add("</div>")

        # Advertisement bar: per-page noise plus decoy links.
        if spec.ad_table:
            builder.add('<table class="ads"><tr><td>')
            builder.add_text(ad_sentence(noise_rng, 4))
            builder.add("</td><td>")
            builder.add_text(ad_sentence(noise_rng, 4))
            builder.add("</td></tr></table>")
        builder.add('<p class="ads">')
        builder.add_text(ad_sentence(noise_rng))
        for ad_index in range(spec.ad_link_count):
            builder.add(" ")
            builder.add(
                link(
                    f"{spec.name}-ad{ad_index}.html",
                    ad_sentence(noise_rng, 3),
                )
            )
        if page_index in spec.quirks.ad_contamination:
            # Strings that also occur on some detail pages (Yahoo
            # People page 1, the book sites' promo boxes): the
            # identifiers of two mid-list records plus one record's
            # detail-only extra.  Quoting *mid-list* records makes the
            # junk extracts genuinely ambiguous: they compete with the
            # real occurrences for the same detail-page positions.
            first_field = spec.schema.fields[0].name
            quoted_rows = sorted({len(records) // 2, len(records) - 1})
            for row_index in quoted_rows:
                value = spec.quirks.list_view(
                    first_field, records[row_index][first_field], row_index
                )
                builder.add(" <b>")
                builder.add_text(value)
                builder.add("</b>")
            if extras_per_row and extras_per_row[0]:
                label, value = extras_per_row[0][0]
                builder.add(" <b>")
                builder.add_text(f"{label} {value}")
                builder.add("</b>")
        builder.add("</p>")

        builder.add("<h2>Matching Listings</h2>")
        builder.add(
            f"<p>Displaying {count} results for your query</p>"
        )

    def _pager(self, builder: HtmlBuilder, page_index: int) -> None:
        """Previous/Next navigation between the result pages."""
        spec = self.spec
        builder.add('<p class="pager">')
        if page_index > 0:
            builder.add(
                link(f"{spec.name}-list{page_index - 1}.html", "Previous")
            )
            builder.add(" ")
        if page_index + 1 < len(spec.records_per_page):
            builder.add(link(f"{spec.name}-list{page_index + 1}.html", "Next"))
        builder.add("</p>")

    def _list_footer(self, builder: HtmlBuilder, count: int) -> None:
        spec = self.spec
        if spec.quirks.duplicate_boilerplate:
            # Repeat the whole chrome — headings, nav, the result line
            # (with its count) and, on grid sites, the column-header
            # skeleton — so no chrome token is unique per page and no
            # usable template exists (Table 4 note *a*).
            builder.add(f"<div class=\"ftr\"><h1>{encode_entities(spec.title)}</h1>")
            builder.add(
                link("index.html", "Home")
                + " "
                + link("search.html", "Search Again")
                + " "
                + link("help.html", "Help")
            )
            builder.add("<p>")
            builder.add_text(f"{spec.title} Online Directory")
            builder.add("</p><h2>Matching Listings</h2>")
            builder.add(f"<p>Displaying {count} results for your query</p>")
            if spec.layout is RowLayout.GRID:
                header_cells = "".join(
                    f"<th>{encode_entities(spec.label_for(name))}</th>"
                    for name in spec.schema.list_fields
                )
                builder.add(
                    f'<table border="1" cellpadding="2">'
                    f"<tr>{header_cells}<th></th></tr></table>"
                )
            builder.add(
                "<p>Copyright 2004. All rights reserved. Copyright 2004. "
                "All rights reserved. "
                + link("terms.html", "Terms")
                + " "
                + link("privacy.html", "Privacy")
                + " "
                + link("terms.html", "Terms")
                + " "
                + link("privacy.html", "Privacy")
                + "</p></div>"
            )
        else:
            builder.add(
                "<p class=\"ftr\">Copyright 2004. All rights reserved. "
                + link("terms.html", "Terms")
                + " "
                + link("privacy.html", "Privacy")
                + "</p>"
            )
        builder.add("</body></html>")

    def _render_row(
        self,
        builder: HtmlBuilder,
        page_index: int,
        row_index: int,
        record: dict,
        detail_url: str,
    ) -> TrueRow:
        spec = self.spec
        quirks = spec.quirks
        start = builder.offset

        list_values = {
            name: quirks.list_view(name, record[name], row_index)
            for name in spec.schema.list_fields
            if name in record
        }
        ordered = [
            (name, list_values[name])
            for name in spec.schema.list_fields
            if name in list_values
        ]
        first_name, first_value = ordered[0]
        rest = ordered[1:]

        if spec.layout is RowLayout.GRID:
            builder.add("<tr><td>")
            builder.add(link(detail_url, first_value))
            builder.add("</td>")
            for _, value in rest:
                builder.add("<td>")
                builder.add_text(value)
                builder.add("</td>")
            builder.add("<td>")
            builder.add(link(detail_url, spec.detail_link_text))
            builder.add("</td></tr>")
        elif spec.layout is RowLayout.BLOCKS:
            builder.add('<div class="listing"><b>')
            builder.add(link(detail_url, first_value))
            builder.add("</b>")
            for _, value in rest:
                builder.add("<br>")
                builder.add_text(value)
            builder.add("<br>")
            builder.add(link(detail_url, spec.detail_link_text))
            builder.add("</div>")
        elif spec.layout is RowLayout.FLAT:
            if row_index > 0:
                builder.add("<br><br>")
            builder.add("<b>")
            builder.add(link(detail_url, first_value))
            builder.add("</b>")
            for _, value in rest:
                builder.add("<br>")
                builder.add_text(value)
            builder.add("<br>")
            builder.add(link(detail_url, spec.detail_link_text))
        elif spec.layout is RowLayout.NUMBERED:
            builder.add("<p><b>")
            builder.add_text(f"{self._numbering_offset + row_index + 1}.")
            builder.add("</b> ")
            builder.add(link(detail_url, first_value))
            for _, value in rest:
                builder.add("<br>")
                builder.add_text(value)
            builder.add(" ")
            builder.add(link(detail_url, spec.detail_link_text))
            builder.add("</p>")
        else:  # pragma: no cover - exhaustive enum
            raise SiteGenError(f"unknown layout {spec.layout}")

        end = builder.offset
        return TrueRow(
            record_index=row_index,
            record_id=f"{spec.name}-p{page_index}-r{row_index}",
            values=list_values,
            detail_url=detail_url,
            span=(start, end),
        )

    # -- detail pages ----------------------------------------------------------

    def _render_detail_page(
        self,
        page_index: int,
        row_index: int,
        records: list[dict],
        extras: list[tuple[str, str]],
        url: str,
        noise_rng: SiteRng,
    ) -> Page:
        spec = self.spec
        quirks = spec.quirks
        record = records[row_index]
        builder = HtmlBuilder()

        builder.add("<html><head><title>")
        builder.add_text(f"{spec.title} Record Details")
        builder.add("</title></head><body>")
        builder.add(f"<div class=\"hdr\"><h2>{encode_entities(spec.title)}</h2>")
        builder.add(
            link("index.html", "Home")
            + " "
            + link("search.html", "Search Again")
        )
        builder.add("</div><h3>Full Record</h3>")

        builder.add("<table>")
        for name in spec.schema.detail_fields:
            if name not in record:
                continue
            if quirks.detail_omits(name, page_index, row_index):
                continue
            value = quirks.detail_view(name, record[name])
            builder.add("<tr><td><i>")
            builder.add_text(spec.label_for(name) + ":")
            builder.add("</i></td><td>")
            builder.add_text(value)
            builder.add("</td></tr>")
        for label, value in extras:
            builder.add("<tr><td><i>")
            builder.add_text(label + ":")
            builder.add("</i></td><td>")
            builder.add_text(value)
            builder.add("</td></tr>")
        builder.add("</table>")

        mismatch = quirks.value_mismatch
        if mismatch is not None and mismatch.plant_record == row_index:
            builder.add("<p>")
            builder.add_text(
                f"Case note: {mismatch.list_value} board hearing pending review"
            )
            builder.add("</p>")

        for mention in quirks.planted_mentions:
            if (
                mention.page == page_index
                and row_index in mention.target_records
                and mention.source_record < len(records)
                and mention.field in records[mention.source_record]
            ):
                builder.add("<p>")
                builder.add_text(
                    mention.label
                    + ": "
                    + quirks.list_view(
                        mention.field,
                        records[mention.source_record][mention.field],
                        mention.source_record,
                    )
                )
                builder.add("</p>")

        if quirks.similar_names > 0 and row_index % quirks.similar_names_stride == 0:
            builder.add('<div class="similar"><h4>Similar Records</h4>')
            first_field = spec.schema.fields[0].name
            high = min(len(records), row_index + 1 + quirks.similar_names)
            for later in range(row_index + 1, high):
                builder.add("<p>")
                builder.add_text(
                    quirks.list_view(
                        first_field, records[later][first_field], later
                    )
                )
                builder.add("</p>")
            builder.add("</div>")

        if quirks.history_contamination > 0 and row_index > 0:
            builder.add('<div class="history"><h4>Recently Viewed</h4>')
            first_field = spec.schema.fields[0].name
            low = max(0, row_index - quirks.history_contamination)
            for earlier in range(low, row_index):
                builder.add("<p>")
                builder.add_text(records[earlier][first_field])
                builder.add("</p>")
            builder.add("</div>")

        builder.add(
            "<p class=\"ftr\">Copyright 2004. All rights reserved. "
            + link("terms.html", "Terms")
            + "</p></body></html>"
        )
        return Page(url=url, html=builder.build(), kind="detail")

    # -- decoys ------------------------------------------------------------------

    def _render_ad_pages(self, noise_rng: SiteRng) -> list[Page]:
        spec = self.spec
        pages: list[Page] = []
        for ad_index in range(spec.ad_link_count):
            builder = HtmlBuilder()
            builder.add("<html><head><title>Special Offer</title></head><body><h1>")
            builder.add_text(ad_sentence(noise_rng, 4))
            builder.add("</h1><p>")
            builder.add_text(ad_sentence(noise_rng, 20))
            builder.add("</p></body></html>")
            pages.append(
                Page(
                    url=f"{spec.name}-ad{ad_index}.html",
                    html=builder.build(),
                    kind="other",
                )
            )
        return pages

"""Synthetic domain data for the 12-site corpus.

Generators for the four information domains of the paper's evaluation
(Section 6.1): white pages (people, addresses, phones), property tax
(parcels, owners, valuations), corrections (inmates, offenses,
facilities) and book sellers (titles, authors, publishers, prices).

Values are produced combinatorially from modest pools, giving enough
diversity that list pages from the same site rarely share token values
by accident (which matters to the unique-token template finder), while
remaining deterministic under :class:`~repro.sitegen.rng.SiteRng`.

One deliberate convention: phone numbers are rendered as a single
token (``740-335-5512``) rather than ``(740) 335-5512``, so that a
shared area code can never become a spurious template token on clean
sites.  Sites that are *supposed* to break template finding get their
breakage from explicit quirks instead (see
:mod:`repro.sitegen.corruptions`).
"""

from __future__ import annotations

from repro.sitegen.rng import SiteRng

__all__ = [
    "person_name",
    "full_person_name",
    "street_address",
    "city_state",
    "city_of",
    "state_of",
    "phone_number",
    "zip_code",
    "book_title",
    "author_names",
    "publisher",
    "price",
    "isbn",
    "year",
    "parcel_id",
    "assessed_value",
    "acreage",
    "land_use",
    "inmate_id",
    "offense",
    "facility",
    "custody_status",
    "admission_date",
    "date_of_birth",
]

_FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "Michael", "Linda", "William",
    "Barbara", "David", "Susan", "Richard", "Jessica", "Joseph", "Sarah",
    "Thomas", "Karen", "Charles", "Nancy", "Christopher", "Lisa", "Daniel",
    "Margaret", "Matthew", "Betty", "Anthony", "Sandra", "Donald", "Ashley",
    "Mark", "Dorothy", "Paul", "Kimberly", "Steven", "Emily", "Andrew",
    "Donna", "Kenneth", "Michelle", "Joshua", "Carol", "Kevin", "Amanda",
    "Brian", "Melissa", "George", "Deborah", "Edward", "Stephanie",
    "Ronald", "Rebecca", "Timothy", "Laura", "Jason", "Sharon", "Jeffrey",
    "Cynthia", "Ryan", "Kathleen", "Jacob", "Amy", "Gary", "Shirley",
    "Nicholas", "Angela", "Eric", "Helen", "Jonathan", "Anna", "Stephen",
    "Brenda", "Larry", "Pamela", "Justin", "Nicole", "Scott", "Ruth",
    "Brandon", "Katherine", "Benjamin", "Samantha", "Samuel", "Christine",
    "Gregory", "Emma", "Frank", "Catherine", "Alexander", "Debra",
    "Raymond", "Virginia", "Patrick", "Rachel", "Jack", "Carolyn",
    "Dennis", "Janet", "Jerry", "Maria", "Tyler", "Heather",
]

_LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
    "Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
    "Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
    "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
    "Ross", "Foster", "Jimenez", "Powell", "Jenkins", "Perry", "Russell",
    "Sullivan", "Bell", "Coleman", "Butler", "Henderson", "Barnes",
    "Fisher", "Vasquez", "Simmons", "Romero", "Jordan", "Patterson",
    "Alexander", "Hamilton", "Graham", "Reynolds", "Griffin", "Wallace",
]

_MIDDLE_INITIALS = "ABCDEFGHJKLMNPRSTW"

_STREET_NAMES = [
    "Washington", "Maple", "Oak", "Cedar", "Elm", "Lake", "Hill", "Pine",
    "Walnut", "Spring", "Ridge", "Church", "Main", "Park", "High",
    "Sunset", "Railroad", "Mill", "River", "Meadow", "Forest", "Highland",
    "Franklin", "Jefferson", "Madison", "Monroe", "Adams", "Jackson",
    "Lincoln", "Grant", "Cherry", "Dogwood", "Hickory", "Laurel",
    "Magnolia", "Sycamore", "Willow", "Aspen", "Birch", "Chestnut",
    "Colonial", "Country", "Creekside", "Fairview", "Garden", "Hillcrest",
    "Lakeview", "Orchard", "Prospect", "Riverside", "Sherwood", "Valley",
]

_STREET_SUFFIXES = ["St.", "Ave.", "Rd.", "Dr.", "Ln.", "Blvd.", "Ct.", "Pl."]

_CITIES_BY_STATE = {
    "OH": ["Findlay", "Columbus", "Dayton", "Toledo", "Akron", "Marion",
           "Lima", "Mansfield", "Newark", "Lancaster", "Zanesville",
           "Springfield", "Sandusky", "Ashland", "Wooster", "Delaware"],
    "PA": ["Pittsburgh", "Monroeville", "Bethel", "Carnegie", "Duquesne",
           "McKeesport", "Penn Hills", "Plum", "Clairton", "Verona",
           "Wilkinsburg", "Munhall", "Braddock", "Swissvale", "Etna"],
    "MI": ["Detroit", "Lansing", "Flint", "Saginaw", "Jackson", "Monroe",
           "Pontiac", "Warren", "Livonia", "Westland", "Taylor", "Novi"],
    "MN": ["Minneapolis", "Duluth", "Rochester", "Bloomington", "Mankato",
           "Moorhead", "Winona", "Faribault", "Bemidji", "Hibbing"],
    "FL": ["Fort Myers", "Cape Coral", "Estero", "Sanibel", "Alva",
           "Bokeelia", "Matlacha", "Captiva", "Tice", "Buckingham"],
    "ON": ["Toronto", "Ottawa", "Hamilton", "London", "Windsor", "Kingston",
           "Sudbury", "Barrie", "Guelph", "Kitchener", "Oshawa", "Sarnia"],
    "BC": ["Vancouver", "Victoria", "Kelowna", "Kamloops", "Nanaimo",
           "Burnaby", "Richmond", "Surrey", "Abbotsford", "Chilliwack"],
    "CA": ["Los Angeles", "San Diego", "Fresno", "Sacramento", "Oakland",
           "Bakersfield", "Anaheim", "Stockton", "Riverside", "Modesto"],
    "NY": ["Albany", "Buffalo", "Rochester", "Syracuse", "Yonkers",
           "Utica", "Schenectady", "Binghamton", "Troy", "Elmira"],
}

_OFFENSES = [
    "Burglary", "Robbery", "Felonious Assault", "Drug Trafficking",
    "Grand Theft", "Forgery", "Receiving Stolen Property", "Arson",
    "Breaking and Entering", "Vandalism", "Fraud", "Escape",
    "Drug Possession", "Weapons Violation", "Aggravated Menacing",
    "Obstructing Justice", "Identity Theft", "Vehicular Assault",
]

_FACILITIES = [
    "Marion Correctional Institution", "Pickaway Correctional Institution",
    "Chillicothe Correctional Institution", "Lebanon Correctional Institution",
    "Noble Correctional Institution", "Richland Correctional Institution",
    "Stillwater State Prison", "Rush City Facility", "Faribault Facility",
    "Lino Lakes Facility", "Saginaw Correctional Facility",
    "Parnall Correctional Facility", "Lakeland Correctional Facility",
    "Thumb Correctional Facility",
]

_CUSTODY_STATUSES = ["Incarcerated", "Parole", "Probation", "Released", "Supervised"]

_TITLE_ADJECTIVES = [
    "Silent", "Hidden", "Broken", "Golden", "Crimson", "Forgotten",
    "Distant", "Burning", "Frozen", "Endless", "Sacred", "Shattered",
    "Wandering", "Ancient", "Midnight", "Emerald", "Scarlet", "Hollow",
    "Restless", "Luminous", "Quiet", "Savage", "Gentle", "Iron",
]

_TITLE_NOUNS = [
    "River", "Garden", "Empire", "Harvest", "Shadow", "Horizon",
    "Compass", "Lantern", "Orchard", "Winter", "Summer", "Voyage",
    "Covenant", "Labyrinth", "Meridian", "Sonata", "Paradox", "Citadel",
    "Archive", "Prophecy", "Tempest", "Mosaic", "Pilgrim", "Threshold",
]

_TITLE_PATTERNS = [
    "The {adj} {noun}",
    "{adj} {noun}",
    "The {noun} of {noun2}",
    "A {adj} {noun}",
    "{noun} and {noun2}",
    "Beyond the {adj} {noun}",
    "Children of the {noun}",
    "The Last {noun}",
]

_PUBLISHERS = [
    "Harbor House", "Meridian Press", "Blue Lantern Books", "Stonebridge",
    "Willow Creek Publishing", "Northfield Press", "Cardinal Books",
    "Summit House", "Bayside Press", "Foxglove Publishing",
]

_LAND_USES = [
    "Single Family", "Two Family", "Vacant Land", "Commercial",
    "Agricultural", "Industrial", "Condominium", "Multi Family",
]


def person_name(rng: SiteRng) -> str:
    """``First Last``."""
    return f"{rng.pick(_FIRST_NAMES)} {rng.pick(_LAST_NAMES)}"


def full_person_name(rng: SiteRng) -> str:
    """``First M. Last`` about half the time, else ``First Last``."""
    first = rng.pick(_FIRST_NAMES)
    last = rng.pick(_LAST_NAMES)
    if rng.chance(0.5):
        return f"{first} {rng.pick(_MIDDLE_INITIALS)}. {last}"
    return f"{first} {last}"


def street_address(rng: SiteRng) -> str:
    """``4217 Maple Ave.``-style street address."""
    number = rng.randint(100, 9899)
    return f"{number} {rng.pick(_STREET_NAMES)} {rng.pick(_STREET_SUFFIXES)}"


def state_of(region: str) -> str:
    """Validate and echo a region code used by the city pools."""
    if region not in _CITIES_BY_STATE:
        raise KeyError(f"unknown region {region!r}")
    return region


def city_of(rng: SiteRng, region: str) -> str:
    """A city in the region."""
    return rng.pick(_CITIES_BY_STATE[state_of(region)])


def city_state(rng: SiteRng, region: str) -> str:
    """``City, ST``."""
    return f"{city_of(rng, region)}, {region}"


def phone_number(rng: SiteRng, area_codes: tuple[str, ...] = ("740", "419", "614")) -> str:
    """Single-token phone number ``740-335-5512``."""
    return f"{rng.pick(area_codes)}-{rng.digits(3)}-{rng.digits(4)}"


def zip_code(rng: SiteRng) -> str:
    """Five-digit ZIP code."""
    return f"{rng.randint(10000, 99899)}"


def book_title(rng: SiteRng) -> str:
    """A combinatorial book title."""
    pattern = rng.pick(_TITLE_PATTERNS)
    noun = rng.pick(_TITLE_NOUNS)
    noun2 = rng.pick([n for n in _TITLE_NOUNS if n != noun])
    return pattern.format(adj=rng.pick(_TITLE_ADJECTIVES), noun=noun, noun2=noun2)


def author_names(rng: SiteRng, count: int) -> list[str]:
    """``count`` distinct author names."""
    names: list[str] = []
    while len(names) < count:
        name = person_name(rng)
        if name not in names:
            names.append(name)
    return names


def publisher(rng: SiteRng) -> str:
    """A publishing house."""
    return rng.pick(_PUBLISHERS)


def price(rng: SiteRng, low: float = 5.0, high: float = 45.0) -> str:
    """``$23.95``-style price (dollar sign is a separator token, the
    amount is the matchable extract)."""
    dollars = rng.randint(int(low), int(high) - 1)
    cents = rng.pick(["95", "99", "50", "25", "00"])
    return f"${dollars}.{cents}"


def isbn(rng: SiteRng) -> str:
    """Ten-digit ISBN-like identifier."""
    return f"0-{rng.digits(3)}-{rng.digits(5)}-{rng.digits(1)}"


def year(rng: SiteRng, low: int = 1988, high: int = 2004) -> str:
    """Publication year."""
    return str(rng.randint(low, high))


def parcel_id(rng: SiteRng) -> str:
    """County parcel identifier ``23-041-0882``."""
    return f"{rng.digits(2)}-{rng.digits(3)}-{rng.digits(4)}"


def assessed_value(rng: SiteRng, low: int = 18, high: int = 420) -> str:
    """Assessed value in dollars, comma-grouped (one token)."""
    thousands = rng.randint(low, high)
    hundreds = rng.pick(["000", "100", "200", "300", "400", "500", "600",
                         "700", "800", "900"])
    return f"{thousands},{hundreds}"


def acreage(rng: SiteRng) -> str:
    """Lot acreage ``1.84``."""
    return f"{rng.randint(0, 12)}.{rng.digits(2)}"


def land_use(rng: SiteRng) -> str:
    """Land-use classification."""
    return rng.pick(_LAND_USES)


def inmate_id(rng: SiteRng, prefix: str = "A") -> str:
    """Offender number ``A483-221``."""
    return f"{prefix}{rng.digits(3)}-{rng.digits(3)}"


def offense(rng: SiteRng) -> str:
    """An offense description."""
    return rng.pick(_OFFENSES)


def facility(rng: SiteRng) -> str:
    """A correctional facility name."""
    return rng.pick(_FACILITIES)


def custody_status(rng: SiteRng) -> str:
    """Custody status label."""
    return rng.pick(_CUSTODY_STATUSES)


def admission_date(rng: SiteRng) -> str:
    """``06-14-1999``-style date (single hyphenated token)."""
    return f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}-{rng.randint(1991, 2003)}"


def date_of_birth(rng: SiteRng) -> str:
    """``03-22-1961``-style date of birth."""
    return f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}-{rng.randint(1948, 1984)}"

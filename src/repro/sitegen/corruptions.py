"""The data pathologies of the paper's 12 sites (Section 6.3).

Each quirk reproduces a *specific* failure the paper reports, so that
the evaluation exhibits the same qualitative behaviour:

* numbered entries — entries numbered ``1.``, ``2.``, ... appear once
  per page on every page, join the page template and shatter the table
  slot ("In the first three sites, the entries were numbered.  Thus,
  sequences such as '1.' will be found on every page.") — Amazon,
  BNBooks, Minnesota.  This one is a *layout*
  (:attr:`~repro.sitegen.site.RowLayout.NUMBERED`), not a quirk flag.
* ``duplicate_boilerplate`` — the navigation chrome is repeated in the
  footer, so no token is unique-per-page and no usable template is
  found — Yahoo People, Superpages.
* ``et_al_authors`` — long author lists abbreviated "First Last, et
  al." on list pages but printed in full on detail pages — Amazon.
* ``case_mismatch_fields`` — fields rendered ALL-CAPS on the list page
  but Title Case on detail pages, defeating the case-sensitive matcher
  — Minnesota.
* ``value_mismatch`` — a field whose list value differs from its
  detail value, with the list value additionally planted on one
  unrelated detail page in a different context ("status of a paroled
  inmate was listed as 'Parole' on list pages and 'Parolee' on detail
  pages.  Unfortunately, the string 'Parole' appeared on another page
  in a completely different context.") — Michigan.
* ``missing_detail_field`` — one record's town missing from its detail
  page while present on the list page and shared by every other record
  — Canada411.
* ``history_contamination`` — each detail page shows the titles of the
  previously "viewed" detail pages (Amazon's browsing-history feature,
  which "completely derail[ed] the CSP algorithm").
* ``similar_names`` — detail pages cross-reference the *list-view*
  identifier of the following records ("Similar Offenders" boxes);
  ``similar_names_stride`` limits the boxes to every n-th detail page,
  keeping the corruption an *exception* rather than the norm (a
  systematic shift would re-define the learned structure instead of
  violating it).
  Combined with a case mismatch, a record's identifier then matches
  only the *wrong* detail pages — evidence the CSP must honor as a
  hard constraint but the probabilistic model can override through its
  learned column structure (Minnesota).
* ``ad_contamination`` — a list page carries advertisement strings
  that also occur on some detail pages, which under the whole-page
  fallback become spurious extracts — Yahoo People page 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ValueMismatch", "MissingDetailField", "PlantedMention", "Quirks"]


@dataclass(frozen=True)
class ValueMismatch:
    """A field spelled differently on list and detail pages.

    Attributes:
        field: field name.
        list_value: value as rendered on the list page.
        detail_value: value as rendered on detail pages.
        plant_record: index (within each list page) of the record whose
            detail page additionally mentions ``list_value`` in an
            unrelated sentence; -1 disables planting.
    """

    field: str
    list_value: str
    detail_value: str
    plant_record: int = -1


@dataclass(frozen=True)
class MissingDetailField:
    """A field present on the list row but absent from one detail page.

    Attributes:
        field: field name.
        page: which list page's records are affected.
        record: index of the affected record within that page.
    """

    field: str
    page: int
    record: int


@dataclass(frozen=True)
class PlantedMention:
    """A record's list-view field value planted on *other* detail pages.

    The planted string makes the list extract match only far-away,
    wrong detail pages.  A hard-constraint solver must honor that
    evidence (unsatisfiable together with the far records' own pinned
    extracts -> relaxation -> partial assignment), while the
    probabilistic model pays its ``d_epsilon`` floor once and keeps
    the extract near its true position (paper Section 6.3).

    Attributes:
        page: which list page's records are involved.
        field: the field whose list-view value is planted.
        source_record: the record whose value is quoted.
        target_records: detail pages (record indices) receiving the
            mention.
        label: lead-in text of the planted paragraph.
    """

    page: int
    field: str
    source_record: int
    target_records: tuple[int, ...]
    label: str = "Case Officer"


@dataclass(frozen=True)
class Quirks:
    """Per-site pathology switches (all off = a clean site)."""

    duplicate_boilerplate: bool = False
    et_al_field: str | None = None
    case_mismatch_fields: tuple[str, ...] = ()
    case_mismatch_stride: int = 1
    value_mismatch: ValueMismatch | None = None
    missing_detail_field: MissingDetailField | None = None
    history_contamination: int = 0
    similar_names: int = 0
    similar_names_stride: int = 1
    planted_mentions: tuple[PlantedMention, ...] = ()
    ad_contamination: tuple[int, ...] = ()

    def list_view(
        self, field_name: str, value: str, row_index: int = 0
    ) -> str:
        """The list page's spelling of a field value.

        ``row_index`` drives ``case_mismatch_stride``: only every
        n-th record's value is re-cased, modelling the partial
        data-entry inconsistency of the real Minnesota site.
        """
        if (
            field_name in self.case_mismatch_fields
            and row_index % self.case_mismatch_stride == 0
        ):
            return value.upper()
        if (
            self.et_al_field is not None
            and field_name == self.et_al_field
            and ", " in value
        ):
            # "First Author, Second Author, ..." -> "First Author, et al."
            return value.split(", ", 1)[0] + ", et al."
        return value

    def detail_view(self, field_name: str, value: str) -> str:
        """The detail page's spelling of a field value."""
        mismatch = self.value_mismatch
        if (
            mismatch is not None
            and field_name == mismatch.field
            and value == mismatch.list_value
        ):
            return mismatch.detail_value
        return value

    def detail_omits(self, field_name: str, page: int, record: int) -> bool:
        """Is this field suppressed on this record's detail page?"""
        missing = self.missing_detail_field
        return (
            missing is not None
            and missing.field == field_name
            and missing.page == page
            and missing.record == record
        )

"""An adversarial mixed crawl: many sites plus distractor page soup.

Every other sitegen family produces one clean site at a time; the
ingestion front door (:mod:`repro.ingest`) needs the opposite — a
single flat crawl mixing dozens of sites' pages with everything a real
crawl drags in:

* **multi-template sites** — every ``multi_template_every``-th site
  slot renders *two* sub-sites from different templates (grid vs
  free-form layout, different domain) plus a portal page linking both,
  so correct ingestion must split one "site" into two bundles;
* **near-duplicate templates** — the family rotates a small set of
  layout/domain variants across many sites, so unrelated sites share
  almost-identical templates and correct ingestion must *not* split on
  textual differences (labels, record data);
* **distractors** — per-site search forms and advertisement pages,
  plus standalone search hubs, portal pages, an ad farm stamped from
  the sites' own ad template, and structurally unique orphan pages.

Everything is generated from one integer seed and the output is
byte-identical across runs; the ground truth (which pages belong to
which sub-site, which are distractors) rides along so ingestion
precision/recall can be scored exactly.

**Generations.**  Real sites change between crawls, so a spec can
also carry ``generation=G``: generation 0 is the base corpus, and
each later generation applies one seeded churn step on top of the
previous one — ``churn_removed`` sub-sites vanish, ``churn_reskins``
sub-sites are re-rendered from a *different* template (every page's
bytes change, the URL set mostly survives), ``churn_added`` new
sub-sites appear, and ``churn_mutations`` detail pages get an
in-place content edit (one appended paragraph; the template, and
therefore the page's cluster, survives).  Pages untouched by churn
are **byte-identical** across generations — the invariant the
fingerprint-diff re-ingest path (:mod:`repro.ingest.diff`) is
benchmarked against — and distractor pages never churn (portal link
targets are pinned to the generation-0 membership, so a portal may
dangle at a removed site exactly like a stale link on the live web).
The last generation's churn rides along as ground truth
(:class:`GenerationChurn`).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.sitegen.domains.corrections import (
    _corrections_extras,
    _inmate_schema,
    _no_categorical_singletons,
)
from repro.sitegen.domains.propertytax import _parcel_schema, _tax_extras
from repro.sitegen.rendering import HtmlBuilder, NOISE_WORDS, ad_sentence, link
from repro.sitegen.rng import SiteRng
from repro.sitegen.site import GeneratedSite, RowLayout, SiteSpec
from repro.sitegen.sweeps import _INMATE_LABELS, _PARCEL_LABELS
from repro.webdoc.page import Page

__all__ = [
    "CRAWL_MANIFEST_NAME",
    "BundleScore",
    "GenerationChurn",
    "MixedCorpus",
    "MixedCorpusSpec",
    "TrueSite",
    "build_mixed_corpus",
    "load_crawl_pages",
    "score_bundles",
    "write_crawl",
]

CRAWL_MANIFEST_NAME = "crawl.json"

#: Plain single-template slot names (``mix007``); only these churn,
#: so multi-template slots and their stitched portals stay stable.
_PLAIN_SITE = re.compile(r"^mix\d+$")

#: The template rotation: (domain, schema factory, detail extras,
#: post-process hook, row layout).  Layouts alternate grid/free-form
#: so a multi-template slot (which pairs consecutive variants) always
#: combines two structurally distinct templates.
_VARIANTS = (
    ("propertytax", lambda: _parcel_schema("PA"), _tax_extras, None, RowLayout.GRID),
    (
        "corrections",
        lambda: _inmate_schema("MX"),
        _corrections_extras,
        _no_categorical_singletons,
        RowLayout.FLAT,
    ),
    (
        "corrections",
        lambda: _inmate_schema("MZ"),
        _corrections_extras,
        _no_categorical_singletons,
        RowLayout.GRID,
    ),
    ("propertytax", lambda: _parcel_schema("PA"), _tax_extras, None, RowLayout.FLAT),
)

_ORPHAN_TAGS = (
    "div", "p", "span", "ul", "li", "h2", "h3",
    "blockquote", "em", "pre", "dl", "dt", "dd", "code",
)


@dataclass(frozen=True)
class MixedCorpusSpec:
    """Declarative description of one mixed crawl.

    Attributes:
        sites: number of site *slots*.  Every
            ``multi_template_every``-th slot holds two sub-sites, so
            the true site count is larger (see
            :meth:`expected_site_count`).
        seed: master seed; everything derives from it.
        records: records per list page (each sub-site has two list
            pages).
        multi_template_every: slot period of multi-template sites.
        orphans / form_pages / portal_pages / ad_farm_pages:
            standalone distractor counts; ``None`` scales each with
            ``sites`` so the default mix stays above one distractor
            page in four.
        generation: how many seeded churn steps to apply on top of
            the base corpus (0 = the base; see the module docstring).
        churn_mutations / churn_reskins / churn_added /
        churn_removed: per-generation churn sizes — detail pages
            edited in place, sub-sites re-templated, sub-sites added,
            sub-sites removed.
    """

    sites: int = 40
    seed: int = 0
    records: int = 9
    multi_template_every: int = 5
    orphans: int | None = None
    form_pages: int | None = None
    portal_pages: int | None = None
    ad_farm_pages: int | None = None
    generation: int = 0
    churn_mutations: int = 6
    churn_reskins: int = 1
    churn_added: int = 1
    churn_removed: int = 1

    @property
    def orphan_count(self) -> int:
        return self.orphans if self.orphans is not None else 3 * self.sites

    @property
    def form_page_count(self) -> int:
        return self.form_pages if self.form_pages is not None else self.sites

    @property
    def portal_page_count(self) -> int:
        if self.portal_pages is not None:
            return self.portal_pages
        return max(2, self.sites // 3)

    @property
    def ad_farm_page_count(self) -> int:
        if self.ad_farm_pages is not None:
            return self.ad_farm_pages
        return 2 * self.sites

    def slot_names(self, slot: int) -> list[str]:
        """Sub-site names of one slot (two for multi-template slots)."""
        base = f"mix{slot:03d}"
        if self.multi_template_every > 0 and (
            slot % self.multi_template_every == 2
        ):
            return [f"{base}a", f"{base}b"]
        return [base]

    def expected_site_count(self) -> int:
        """True (sub-)site count across all slots."""
        return sum(len(self.slot_names(slot)) for slot in range(self.sites))


@dataclass(frozen=True)
class TrueSite:
    """Ground truth for one sub-site inside the crawl."""

    name: str
    list_urls: tuple[str, ...]
    detail_urls_per_list: tuple[tuple[str, ...], ...]

    def page_urls(self) -> list[str]:
        """All true member URLs: list pages then details, in order."""
        urls = list(self.list_urls)
        for details in self.detail_urls_per_list:
            urls.extend(details)
        return urls


@dataclass(frozen=True)
class GenerationChurn:
    """Ground truth of one generation step (the *last* one applied).

    URLs/names are relative to the previous generation: ``mutated``
    pages exist in both with different bytes, ``reskinned`` sites
    exist in both with every page's bytes changed, ``added`` /
    ``removed`` sites exist only after / only before.
    """

    generation: int
    mutated: tuple[str, ...]  #: detail URLs edited in place
    reskinned: tuple[str, ...]  #: site names re-rendered from a new template
    added: tuple[str, ...]  #: new sub-site names
    removed: tuple[str, ...]  #: dropped sub-site names

    def as_dict(self) -> dict:
        return {
            "generation": self.generation,
            "mutated": list(self.mutated),
            "reskinned": list(self.reskinned),
            "added": list(self.added),
            "removed": list(self.removed),
        }


@dataclass
class MixedCorpus:
    """One generated crawl plus its ground truth.

    ``pages`` is the crawl itself — every page in a deterministic
    shuffled order with ``kind=None``, exactly as anonymous as a real
    crawl.  ``generated`` keeps the underlying :class:`GeneratedSite`
    objects so tests can run the clean single-site path against the
    same sub-sites.  ``churn`` records the last generation step
    applied (None for generation 0).
    """

    spec: MixedCorpusSpec
    pages: list[Page]
    sites: list[TrueSite]
    distractor_urls: frozenset[str]
    generated: dict[str, GeneratedSite]
    churn: GenerationChurn | None = None

    @property
    def page_count(self) -> int:
        return len(self.pages)

    def truth_urls(self) -> frozenset[str]:
        urls: set[str] = set()
        for site in self.sites:
            urls.update(site.page_urls())
        return frozenset(urls)

    @property
    def distractor_ratio(self) -> float:
        return len(self.distractor_urls) / len(self.pages)


def _sub_site(
    name: str, variant_index: int, label_index: int, records: int, seed: int
) -> GeneratedSite:
    domain, schema_factory, extras, post, layout = _VARIANTS[
        variant_index % len(_VARIANTS)
    ]
    if domain == "propertytax":
        labels = _PARCEL_LABELS[label_index % len(_PARCEL_LABELS)]
    else:
        labels = _INMATE_LABELS[label_index % len(_INMATE_LABELS)]
    spec = SiteSpec(
        name=name,
        title=f"Mixed {name}",
        domain=domain,
        schema=schema_factory(),
        records_per_page=(records, records),
        layout=layout,
        seed=seed,
        detail_labels=dict(labels),
        detail_extras=extras,
        post_process=post,
    )
    return GeneratedSite(spec)


def _orphan_page(index: int, seed: int) -> Page:
    """A structurally unique dead-end page (no links, no form)."""
    rng = SiteRng(seed * 7919 + index)
    builder = HtmlBuilder()
    builder.add("<html><head><title>")
    builder.add_text(f"Archive item {index}")
    builder.add("</title></head><body>")
    # A random tag sequence per orphan: no two orphans (and no orphan
    # and any template) share enough structure to cluster together.
    for _ in range(6 + index % 9):
        tag = rng.pick(_ORPHAN_TAGS)
        builder.add(f"<{tag}>")
        builder.add_text(
            " ".join(rng.pick(NOISE_WORDS) for _ in range(rng.randint(1, 5)))
        )
        builder.add(f"</{tag}>")
        if rng.chance(0.4):
            inner = rng.pick(_ORPHAN_TAGS)
            builder.add(f"<{inner}>")
            builder.add_text(rng.pick(NOISE_WORDS))
            builder.add(f"</{inner}>")
    builder.add("</body></html>")
    return Page(url=f"orphan-{index:03d}.html", html=builder.build())


def _form_page(index: int, seed: int) -> Page:
    """A standalone search hub: all form, no data."""
    rng = SiteRng(seed * 104729 + index)
    builder = HtmlBuilder()
    builder.add("<html><head><title>")
    builder.add_text(f"Search Hub {index}")
    builder.add("</title></head><body><h1>")
    builder.add_text(ad_sentence(rng, 3))
    builder.add("</h1>")
    builder.add(
        '<form action="results.html" method="get">'
        '<input name="q" type="text"> '
        '<select name="state"><option>Any</option></select> '
        '<input type="submit" value="Find"></form>'
    )
    builder.add("<p>")
    builder.add_text(ad_sentence(rng, 10))
    builder.add("</p></body></html>")
    return Page(url=f"searchhub-{index:03d}.html", html=builder.build())


def _portal_page(url: str, title: str, targets: list[str], seed: int) -> Page:
    """A link hub: repeating list-like structure, heterogeneous targets."""
    rng = SiteRng(seed)
    builder = HtmlBuilder()
    builder.add("<html><head><title>")
    builder.add_text(title)
    builder.add("</title></head><body><h1>")
    builder.add_text(title)
    builder.add("</h1><ul>")
    for target in targets:
        builder.add("<li>")
        builder.add(link(target, ad_sentence(rng, 2)))
        builder.add("</li>")
    builder.add("</ul></body></html>")
    return Page(url=url, html=builder.build())


def _ad_farm_page(index: int, seed: int) -> Page:
    """An off-site ad stamped from the sites' own ad template."""
    rng = SiteRng(seed * 15485863 + index)
    builder = HtmlBuilder()
    builder.add("<html><head><title>Special Offer</title></head><body><h1>")
    builder.add_text(ad_sentence(rng, 4))
    builder.add("</h1><p>")
    builder.add_text(ad_sentence(rng, 20))
    builder.add("</p></body></html>")
    return Page(url=f"adfarm-{index:03d}.html", html=builder.build())


def _truth_of(site: GeneratedSite) -> TrueSite:
    """The ground-truth membership of one generated sub-site."""
    return TrueSite(
        name=site.spec.name,
        list_urls=tuple(page.url for page in site.list_pages),
        detail_urls_per_list=tuple(
            tuple(page.url for page in site.detail_pages(i))
            for i in range(len(site.list_pages))
        ),
    )


def build_mixed_corpus(spec: MixedCorpusSpec | None = None) -> MixedCorpus:
    """Generate the crawl.  Deterministic: one seed, one byte stream.

    With ``spec.generation > 0`` the base corpus is churned that many
    times (see the module docstring); every page not named by the
    churn is byte-identical to its previous-generation self.
    """
    spec = spec or MixedCorpusSpec()
    by_url: dict[str, str] = {}
    sites: list[TrueSite] = []
    distractors: set[str] = set()
    generated: dict[str, GeneratedSite] = {}
    variant_of: dict[str, int] = {}

    def add_page(url: str, html: str, distractor: bool) -> None:
        if url in by_url:
            raise ValueError(f"mixed corpus generated duplicate url {url!r}")
        by_url[url] = html
        if distractor:
            distractors.add(url)

    def add_site(site: GeneratedSite) -> TrueSite:
        name = site.spec.name
        generated[name] = site
        truth = _truth_of(site)
        sites.append(truth)
        truth_urls = set(truth.page_urls())
        for url in site.urls():
            add_page(url, site.fetch(url).html, url not in truth_urls)
        return truth

    def drop_site(name: str) -> None:
        site = generated.pop(name)
        for url in site.urls():
            by_url.pop(url, None)
            distractors.discard(url)
        sites[:] = [truth for truth in sites if truth.name != name]

    variant_cursor = 0
    for slot in range(spec.sites):
        names = spec.slot_names(slot)
        slot_sites: list[GeneratedSite] = []
        for name in names:
            site = _sub_site(
                name,
                variant_index=variant_cursor,
                label_index=slot % 3,
                records=spec.records,
                seed=spec.seed * 1000003 + slot * 31 + len(slot_sites),
            )
            variant_of[name] = variant_cursor
            variant_cursor += 1
            slot_sites.append(site)
            add_site(site)
        if len(slot_sites) > 1:
            # A portal stitching the slot's sub-sites together: the
            # "one site, several templates" entry page.
            targets = []
            for site in slot_sites:
                name = site.spec.name
                targets += [
                    f"{name}-list0.html",
                    f"{name}-index.html",
                    f"{name}-ad0.html",
                ]
            portal = _portal_page(
                url=f"mix{slot:03d}-portal.html",
                title=f"Mixed Portal {slot}",
                targets=targets,
                seed=spec.seed * 523 + slot,
            )
            add_page(portal.url, portal.html, True)

    # Portal link targets are pinned to the generation-0 membership
    # *before* churn: distractor pages never change across
    # generations, even when a target site has since been removed
    # (a dangling portal link, like the live web's stale directories).
    base_list0_urls = [site.list_urls[0] for site in sites]

    churn: GenerationChurn | None = None
    for gen in range(1, spec.generation + 1):
        rng = SiteRng(spec.seed).fork(f"generation-{gen}")
        plain = sorted(
            truth.name for truth in sites if _PLAIN_SITE.match(truth.name)
        )

        removed: list[str] = []
        for _ in range(min(spec.churn_removed, max(0, len(plain) - 2))):
            name = rng.pick(plain)
            plain.remove(name)
            removed.append(name)
            drop_site(name)

        reskinned: list[str] = []
        for _ in range(min(spec.churn_reskins, len(plain))):
            name = rng.pick(plain)
            plain.remove(name)
            reskinned.append(name)
            drop_site(name)
            # A different variant index is a different template *and*
            # a different row layout (the rotation alternates
            # grid/flat), so every page's bytes change.
            variant = variant_of[name] + 1 + rng.randint(0, len(_VARIANTS) - 2)
            variant_of[name] = variant
            add_site(
                _sub_site(
                    name,
                    variant_index=variant,
                    label_index=rng.randint(0, 5),
                    records=spec.records,
                    seed=spec.seed * 1000003 + 999331 * gen + rng.randint(0, 997),
                )
            )

        added: list[str] = []
        for index in range(spec.churn_added):
            name = f"gen{gen}site{index}"
            added.append(name)
            variant = rng.randint(0, len(_VARIANTS) - 1)
            variant_of[name] = variant
            add_site(
                _sub_site(
                    name,
                    variant_index=variant,
                    label_index=rng.randint(0, 5),
                    records=spec.records,
                    seed=spec.seed * 1000003 + 15485863 * gen + index,
                )
            )

        frozen = set(reskinned) | set(added)
        eligible = sorted(
            url
            for truth in sites
            if truth.name not in frozen
            for details in truth.detail_urls_per_list
            for url in details
        )
        mutated = rng.sample(
            eligible, min(spec.churn_mutations, len(eligible))
        )
        for url in mutated:
            marker = (
                f'<p class="updated">Record updated: generation {gen}, '
                f"rev {rng.randint(1000, 9999)}.</p>"
            )
            html = by_url[url]
            if "</body>" in html:
                by_url[url] = html.replace("</body>", marker + "</body>", 1)
            else:  # pragma: no cover - every template closes its body
                by_url[url] = html + marker

        churn = GenerationChurn(
            generation=gen,
            mutated=tuple(sorted(mutated)),
            reskinned=tuple(sorted(reskinned)),
            added=tuple(sorted(added)),
            removed=tuple(sorted(removed)),
        )

    for index in range(spec.orphan_count):
        page = _orphan_page(index, spec.seed)
        add_page(page.url, page.html, True)
    for index in range(spec.form_page_count):
        page = _form_page(index, spec.seed)
        add_page(page.url, page.html, True)
    for index in range(spec.ad_farm_page_count):
        page = _ad_farm_page(index, spec.seed)
        add_page(page.url, page.html, True)

    portal_rng = SiteRng(spec.seed * 2971 + 17)
    list0_urls = base_list0_urls
    for index in range(spec.portal_page_count):
        targets = portal_rng.sample(list0_urls, min(8, len(list0_urls)))
        targets += [
            f"adfarm-{portal_rng.randint(0, max(0, spec.ad_farm_page_count - 1)):03d}.html"
            for _ in range(2)
            if spec.ad_farm_page_count > 0
        ]
        page = _portal_page(
            url=f"portal-{index:03d}.html",
            title=f"Directory Portal {index}",
            targets=targets,
            seed=spec.seed * 6421 + index,
        )
        add_page(page.url, page.html, True)

    shuffle_rng = SiteRng(spec.seed).fork("crawl-order")
    order = shuffle_rng.shuffled(sorted(by_url))
    pages = [Page(url=url, html=by_url[url]) for url in order]
    return MixedCorpus(
        spec=spec,
        pages=pages,
        sites=sites,
        distractor_urls=frozenset(distractors),
        generated=generated,
        churn=churn,
    )


def write_crawl(corpus: MixedCorpus, directory: str | Path) -> Path:
    """Dump the crawl flat into ``directory`` plus a truth manifest.

    Page URLs become file names; :data:`CRAWL_MANIFEST_NAME` records
    the crawl order, the ground-truth site structure and the
    distractor set.  Returns the manifest path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for page in corpus.pages:
        (directory / page.url).write_text(page.html, encoding="utf-8")
    manifest = {
        "seed": corpus.spec.seed,
        "generation": corpus.spec.generation,
        "churn": corpus.churn.as_dict() if corpus.churn else None,
        "pages": [page.url for page in corpus.pages],
        "distractors": sorted(corpus.distractor_urls),
        "sites": [
            {
                "name": site.name,
                "lists": list(site.list_urls),
                "details": [list(urls) for urls in site.detail_urls_per_list],
            }
            for site in corpus.sites
        ],
    }
    manifest_path = directory / CRAWL_MANIFEST_NAME
    manifest_path.write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8", newline="\n"
    )
    return manifest_path


def load_crawl_pages(directory: str | Path) -> list[Page]:
    """Read a crawl directory back into anonymous pages.

    With a :data:`CRAWL_MANIFEST_NAME` present the recorded crawl
    order is preserved; otherwise every ``*.html`` file is read in
    sorted name order.  Either way the pages carry no role hints.
    """
    directory = Path(directory)
    manifest_path = directory / CRAWL_MANIFEST_NAME
    if manifest_path.is_file():
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        names = list(manifest["pages"])
    else:
        names = sorted(
            path.name for path in directory.glob("*.html") if path.is_file()
        )
    if not names:
        raise ValueError(f"no crawl pages found in {directory}")
    return [
        Page(url=name, html=(directory / name).read_text(encoding="utf-8"))
        for name in names
    ]


@dataclass(frozen=True)
class BundleScore:
    """How well a set of bundles matches the corpus ground truth.

    Each bundle is credited against the true sub-site owning the
    majority of its pages; ``precision`` is the fraction of bundled
    pages credited, ``recall`` the fraction of all true site pages
    recovered.
    """

    precision: float
    recall: float
    bundled_pages: int
    truth_pages: int
    exact_bundles: int

    def as_dict(self) -> dict:
        return {
            "bundle_precision": round(self.precision, 4),
            "bundle_recall": round(self.recall, 4),
            "bundled_pages": self.bundled_pages,
            "truth_pages": self.truth_pages,
            "exact_bundles": self.exact_bundles,
        }


def score_bundles(
    sites: list[TrueSite], bundles: list[tuple[str, list[str]]]
) -> BundleScore:
    """Score ``(name, page urls)`` bundles against the ground truth."""
    owner: dict[str, str] = {}
    for site in sites:
        for url in site.page_urls():
            owner[url] = site.name
    truth_pages = len(owner)

    bundled_pages = 0
    correct = 0
    exact = 0
    for _, urls in bundles:
        bundled_pages += len(urls)
        votes: dict[str, int] = {}
        for url in urls:
            site_name = owner.get(url)
            if site_name is not None:
                votes[site_name] = votes.get(site_name, 0) + 1
        if not votes:
            continue
        majority = max(sorted(votes), key=lambda name: votes[name])
        correct += votes[majority]
        majority_urls = {
            url for url, name in owner.items() if name == majority
        }
        if majority_urls == set(urls):
            exact += 1

    precision = correct / bundled_pages if bundled_pages else 0.0
    recall = correct / truth_pages if truth_pages else 0.0
    return BundleScore(
        precision=precision,
        recall=recall,
        bundled_pages=bundled_pages,
        truth_pages=truth_pages,
        exact_bundles=exact,
    )

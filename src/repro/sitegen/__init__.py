"""Hidden-web site simulator: the 12-site evaluation corpus."""

from repro.sitegen.corpus import (
    SITE_BUILDERS,
    TABLE4_ORDER,
    Corpus,
    build_corpus,
    build_site,
)
from repro.sitegen.corruptions import MissingDetailField, Quirks, ValueMismatch
from repro.sitegen.faults import FaultKind, FaultPlan, FaultyTransport
from repro.sitegen.rng import SiteRng
from repro.sitegen.schema import FieldSpec, RecordSchema
from repro.sitegen.site import (
    GeneratedSite,
    ListPageTruth,
    RowLayout,
    SiteSpec,
    TrueRow,
)

__all__ = [
    "Corpus",
    "FaultKind",
    "FaultPlan",
    "FaultyTransport",
    "FieldSpec",
    "GeneratedSite",
    "ListPageTruth",
    "MissingDetailField",
    "Quirks",
    "RecordSchema",
    "RowLayout",
    "SITE_BUILDERS",
    "SiteRng",
    "SiteSpec",
    "TABLE4_ORDER",
    "TrueRow",
    "ValueMismatch",
    "build_corpus",
    "build_site",
]

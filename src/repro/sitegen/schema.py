"""Record schemas: what fields a site's records carry.

A :class:`RecordSchema` generates record value dictionaries.  The
paper's modelling assumption — "in all of the domains that we have
examined the first column, which usually contains the most salient
identifier, such as the Name, is never missing" (Section 5.1) — is
enforced here: the schema refuses a ``missing_rate`` on its first
field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.exceptions import SiteGenError
from repro.sitegen.rng import SiteRng

__all__ = ["FieldSpec", "RecordSchema"]


@dataclass(frozen=True)
class FieldSpec:
    """One field of a record.

    Attributes:
        name: field name (also the key in record value dicts).
        make: value generator.
        missing_rate: probability the field is absent from a record
            entirely (from both views) — the "missing columns" the
            period model accommodates.
        detail_only: shown on detail pages but never on list rows.
        list_only: shown on list rows but never on detail pages (such
            values can never be matched, exercising the unmatched-
            extract attachment rule).
    """

    name: str
    make: Callable[[SiteRng], str]
    missing_rate: float = 0.0
    detail_only: bool = False
    list_only: bool = False


@dataclass
class RecordSchema:
    """An ordered collection of field specs."""

    fields: list[FieldSpec]

    def __post_init__(self) -> None:
        if not self.fields:
            raise SiteGenError("a schema needs at least one field")
        names = [spec.name for spec in self.fields]
        if len(set(names)) != len(names):
            raise SiteGenError(f"duplicate field names in schema: {names}")
        first = self.fields[0]
        if first.missing_rate > 0:
            raise SiteGenError(
                "the first (identifier) field must never be missing "
                f"(got missing_rate={first.missing_rate} on {first.name!r})"
            )
        if first.detail_only or first.list_only:
            raise SiteGenError(
                "the first field must appear on both list and detail pages"
            )

    @property
    def list_fields(self) -> list[str]:
        """Field names shown on list rows, in order."""
        return [spec.name for spec in self.fields if not spec.detail_only]

    @property
    def detail_fields(self) -> list[str]:
        """Field names shown on detail pages, in order."""
        return [spec.name for spec in self.fields if not spec.list_only]

    def field_named(self, name: str) -> FieldSpec:
        """Look up a field spec by name."""
        for spec in self.fields:
            if spec.name == name:
                return spec
        raise KeyError(f"no field named {name!r}")

    def generate(self, rng: SiteRng) -> dict[str, str]:
        """Generate one record's values (missing fields omitted)."""
        values: dict[str, str] = {}
        for spec in self.fields:
            if spec.missing_rate > 0 and rng.chance(spec.missing_rate):
                continue
            values[spec.name] = spec.make(rng)
        return values

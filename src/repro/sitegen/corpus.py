"""The 12-site evaluation corpus (paper Section 6.1).

    "The data set consisted of list and detail pages from 12 Web sites
    in four different information domains, including book sellers
    (Amazon, BNBooks), property tax sites (Buttler, Allegheny, Lee
    counties), white pages (Superpages, Yahoo, Canada411,
    SprintCanada) and corrections (Ohio, Minnesotta, Michigan)
    domains.  From each site, we randomly selected two list pages and
    manually downloaded the detail pages."

:func:`build_corpus` renders all 12 sites deterministically.  Site
order matches Table 4's rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sitegen.domains.books import build_amazon, build_bnbooks
from repro.sitegen.domains.corrections import (
    build_michigan,
    build_minnesota,
    build_ohio,
)
from repro.sitegen.domains.propertytax import (
    build_allegheny,
    build_butler,
    build_lee,
)
from repro.sitegen.domains.whitepages import (
    build_canada411,
    build_sprint_canada,
    build_superpages,
    build_yahoo_people,
)
from repro.sitegen.site import GeneratedSite, SiteSpec

__all__ = ["SITE_BUILDERS", "TABLE4_ORDER", "Corpus", "build_corpus", "build_site"]

#: Builders by site name.
SITE_BUILDERS: dict[str, Callable[[], SiteSpec]] = {
    "amazon": build_amazon,
    "bnbooks": build_bnbooks,
    "allegheny": build_allegheny,
    "butler": build_butler,
    "lee": build_lee,
    "michigan": build_michigan,
    "minnesota": build_minnesota,
    "ohio": build_ohio,
    "canada411": build_canada411,
    "sprintcanada": build_sprint_canada,
    "yahoo": build_yahoo_people,
    "superpages": build_superpages,
}

#: Row order of the paper's Table 4.
TABLE4_ORDER: tuple[str, ...] = (
    "amazon",
    "bnbooks",
    "allegheny",
    "butler",
    "lee",
    "michigan",
    "minnesota",
    "ohio",
    "canada411",
    "sprintcanada",
    "yahoo",
    "superpages",
)


@dataclass
class Corpus:
    """The rendered corpus, ordered like Table 4."""

    sites: list[GeneratedSite]

    def site(self, name: str) -> GeneratedSite:
        """Look up a site by name."""
        for site in self.sites:
            if site.spec.name == name:
                return site
        raise KeyError(f"no site named {name!r}")

    @property
    def names(self) -> list[str]:
        return [site.spec.name for site in self.sites]

    @property
    def total_list_pages(self) -> int:
        return sum(len(site.list_pages) for site in self.sites)

    @property
    def total_records(self) -> int:
        return sum(
            sum(site.spec.records_per_page) for site in self.sites
        )


def build_site(name: str) -> GeneratedSite:
    """Render one corpus site by name."""
    try:
        builder = SITE_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown site {name!r}; known: {sorted(SITE_BUILDERS)}"
        ) from None
    return GeneratedSite(builder())


def build_corpus() -> Corpus:
    """Render all 12 sites in Table 4 order."""
    return Corpus(sites=[build_site(name) for name in TABLE4_ORDER])

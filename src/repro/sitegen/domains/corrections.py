"""Corrections sites: Ohio, Michigan and Minnesota.

Table 4 shapes reproduced here:

* **Ohio** (10 / 10) — clean grid; both methods near-perfect.
* **Michigan** (7 / 16) — the "Parole" / "Parolee" value mismatch:
  the status field reads "Parole" on list rows but "Parolee" on detail
  pages, and "the string 'Parole' appeared on another page in a
  completely different context", leaving WSAT(OIP) with unsatisfiable
  constraints (notes *c*, *d* on page 2).
* **Minnesota** (11 / 19) — numbered entries (template failure, notes
  *a*, *b*) plus "a case mismatch between attribute values on list and
  detail pages": inmate names are ALL-CAPS on list rows, Title Case on
  detail pages, so the case-sensitive matcher loses the anchor field.
"""

from __future__ import annotations

from repro.sitegen import datagen
from repro.sitegen.corruptions import PlantedMention, Quirks, ValueMismatch
from repro.sitegen.domains.common import ensure_no_singletons
from repro.sitegen.rng import SiteRng
from repro.sitegen.schema import FieldSpec, RecordSchema
from repro.sitegen.site import RowLayout, SiteSpec

__all__ = ["build_ohio", "build_michigan", "build_minnesota"]


def _inmate_schema(id_prefix: str) -> RecordSchema:
    def make_id(rng: SiteRng) -> str:
        return datagen.inmate_id(rng, prefix=id_prefix)

    return RecordSchema(
        fields=[
            FieldSpec("name", datagen.full_person_name),
            FieldSpec("number", make_id),
            FieldSpec("offense", datagen.offense),
            FieldSpec("facility", datagen.facility, missing_rate=0.1),
            FieldSpec("status", datagen.custody_status),
        ]
    )


def _corrections_extras(rng: SiteRng, record: dict) -> list[tuple[str, str]]:
    return [
        ("Admitted", datagen.admission_date(rng)),
        ("Date of Birth", datagen.date_of_birth(rng)),
    ]


def _no_categorical_singletons(
    rng: SiteRng, records: list[dict], page: int
) -> None:
    """Keep low-cardinality values from becoming page-unique tokens."""
    for field in ("offense", "facility", "status"):
        ensure_no_singletons(rng, records, field)


def build_ohio(seed: int = 301) -> SiteSpec:
    """Ohio Department of Corrections offender search — clean grid."""
    return SiteSpec(
        name="ohio",
        title="Ohio Offender Search",
        domain="corrections",
        schema=_inmate_schema("A"),
        records_per_page=(10, 10),
        layout=RowLayout.GRID,
        seed=seed,
        detail_labels={"number": "Offender Number", "status": "Status"},
        detail_extras=_corrections_extras,
        post_process=_no_categorical_singletons,
    )


def _michigan_post(rng: SiteRng, records: list[dict], page: int) -> None:
    """Stage the Parole/Parolee pathology on page 1 only.

    Page 0 carries no paroled inmates at all; page 1 gets several.
    Keeping "Parole" off page 0's list makes sure the page-1 "Parole"
    extracts are *not* dropped by the appears-on-all-list-pages filter
    — they must survive to collide with the string planted on the
    unrelated detail page, as on the real site (Table 4 notes *c*,
    *d* appear on Michigan's second row only).
    """
    for record in records:
        if record.get("status") == "Parole":
            record["status"] = "Incarcerated"
    _no_categorical_singletons(rng, records, page)
    if page == 1:
        paroled = max(2, len(records) // 5)
        for index in range(paroled):
            # Spread paroled inmates through the page, avoiding record
            # 0 (whose detail page carries the planted string).
            records[1 + (index * 3) % (len(records) - 1)]["status"] = "Parole"


def build_michigan(seed: int = 302) -> SiteSpec:
    """Michigan OTIS, with the Parole/Parolee mismatch."""
    return SiteSpec(
        name="michigan",
        title="Michigan Offender Tracking",
        domain="corrections",
        schema=_inmate_schema("M"),
        records_per_page=(7, 16),
        layout=RowLayout.GRID,
        quirks=Quirks(
            value_mismatch=ValueMismatch(
                field="status",
                list_value="Parole",
                detail_value="Parolee",
                plant_record=0,
            ),
        ),
        seed=seed,
        detail_labels={"number": "MDOC Number"},
        detail_extras=_corrections_extras,
        post_process=_michigan_post,
    )


def build_minnesota(seed: int = 303) -> SiteSpec:
    """Minnesota DOC, numbered entries + name case mismatch."""
    return SiteSpec(
        name="minnesota",
        title="Minnesota Offender Locator",
        domain="corrections",
        schema=_inmate_schema("K"),
        records_per_page=(11, 19),
        layout=RowLayout.NUMBERED,
        quirks=Quirks(
            case_mismatch_fields=("name",),
            case_mismatch_stride=2,
            planted_mentions=(
                # ALL-CAPS inmate names that coincide with staff-name
                # mentions on far, unrelated detail pages: hard
                # evidence the CSP cannot satisfy, noise the
                # probabilistic model absorbs.
                PlantedMention(page=0, field="name", source_record=6,
                               target_records=(1, 9)),
                PlantedMention(page=0, field="name", source_record=4,
                               target_records=(8,)),
                PlantedMention(page=1, field="name", source_record=12,
                               target_records=(3, 16)),
                PlantedMention(page=1, field="name", source_record=8,
                               target_records=(14,)),
            ),
        ),
        seed=seed,
        detail_labels={"number": "OID Number"},
        detail_extras=_corrections_extras,
        post_process=_no_categorical_singletons,
    )

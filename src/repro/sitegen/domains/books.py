"""Book-seller sites: Amazon and BNBooks — the corpus's hardest cases.

The paper could not correctly segment either book site: numbered
entries broke the page template, and under the whole-page fallback
"many of the strings in the list page, that were not part of the list,
appeared in detail pages, confounding our algorithms".  Additionally
on Amazon: long author lists abbreviated "FirstName LastName, et al"
on list pages but printed in full on detail pages, and the site's
browsing-history feature "led to title[s] of books from previously
downloaded detail pages to appear on unrelated pages, completely
derailing the CSP algorithm".

Reproduced here:

* numbered layout on both sites (template failure, notes *a*, *b*);
* promo strings on list pages quoting some records' detail content
  (``ad_contamination``);
* on Amazon, ``et_al_field`` abbreviation and ``history_contamination``
  (each detail page shows the two previously viewed titles).
"""

from __future__ import annotations

from repro.sitegen import datagen
from repro.sitegen.corruptions import Quirks
from repro.sitegen.rng import SiteRng
from repro.sitegen.schema import FieldSpec, RecordSchema
from repro.sitegen.site import RowLayout, SiteSpec

__all__ = ["build_amazon", "build_bnbooks"]


def _authors(rng: SiteRng) -> str:
    """1-4 authors, comma-joined; 3+ triggers et-al abbreviation."""
    count = rng.pick_weighted([1, 2, 3, 4], [0.45, 0.3, 0.15, 0.1])
    return ", ".join(datagen.author_names(rng, count))


def _book_schema() -> RecordSchema:
    return RecordSchema(
        fields=[
            FieldSpec("title", datagen.book_title),
            FieldSpec("authors", _authors),
            FieldSpec("price", datagen.price),
            FieldSpec("year", datagen.year, missing_rate=0.1),
        ]
    )


def _book_extras(rng: SiteRng, record: dict) -> list[tuple[str, str]]:
    return [
        ("ISBN", datagen.isbn(rng)),
        ("Publisher", datagen.publisher(rng)),
    ]


def build_amazon(seed: int = 401) -> SiteSpec:
    """Amazon-style book list with every pathology the paper reports."""
    return SiteSpec(
        name="amazon",
        title="Amazon Books",
        domain="books",
        schema=_book_schema(),
        records_per_page=(10, 10),
        layout=RowLayout.NUMBERED,
        quirks=Quirks(
            et_al_field="authors",
            history_contamination=2,
            ad_contamination=(0, 1),
        ),
        seed=seed,
        detail_labels={"authors": "Authors", "price": "Our Price"},
        detail_extras=_book_extras,
        detail_link_text="More Info",
    )


def build_bnbooks(seed: int = 402) -> SiteSpec:
    """Barnes&Noble-style book list: numbered entries + list promos."""
    return SiteSpec(
        name="bnbooks",
        title="BN Books",
        domain="books",
        schema=_book_schema(),
        records_per_page=(10, 10),
        layout=RowLayout.NUMBERED,
        quirks=Quirks(
            ad_contamination=(0, 1),
        ),
        seed=seed,
        detail_labels={"price": "List Price"},
        detail_extras=_book_extras,
    )

"""White-pages sites: Superpages, Yahoo People, Canada411, SprintCanada.

Table 4 shapes reproduced here:

* **Superpages** (3 / 15 records) — duplicated boilerplate destroys the
  page template (note *a*), so the entire page is used (note *b*);
  the data itself is clean, so segmentation still mostly works.
* **Yahoo People** (10 / 10) — same template problem, plus
  advertisement strings on list page 1 that also occur on detail pages
  (the paper: "many strings that were not part of the table found
  matches on detail pages").
* **Canada411** (25 / 5) — clean template, but on page 2 one record's
  town is "missing on the detail page but not on the list page" while
  "the town name was the same as in other records", the exact
  inconsistency that made WSAT(OIP) fail.
* **SprintCanada** (20 / 20) — clean; towns are shared between
  records, which costs the probabilistic method precision (InC) but
  not the CSP.
"""

from __future__ import annotations

from repro.sitegen import datagen
from repro.sitegen.corruptions import MissingDetailField, Quirks
from repro.sitegen.rng import SiteRng
from repro.sitegen.schema import FieldSpec, RecordSchema
from repro.sitegen.site import RowLayout, SiteSpec

__all__ = [
    "build_superpages",
    "build_yahoo_people",
    "build_canada411",
    "build_sprint_canada",
]


def _us_schema(region: str) -> RecordSchema:
    """name / address / "City, ST ZIP" / phone."""

    def citystatezip(rng: SiteRng) -> str:
        return f"{datagen.city_state(rng, region)} {datagen.zip_code(rng)}"

    return RecordSchema(
        fields=[
            FieldSpec("name", datagen.full_person_name),
            FieldSpec("address", datagen.street_address, missing_rate=0.1),
            FieldSpec("citystate", citystatezip),
            FieldSpec("phone", datagen.phone_number),
        ]
    )


def _ca_schema(region: str) -> RecordSchema:
    def citystate(rng: SiteRng) -> str:
        return datagen.city_state(rng, region)

    def ca_phone(rng: SiteRng) -> str:
        return datagen.phone_number(rng, area_codes=("416", "613", "905"))

    return RecordSchema(
        fields=[
            FieldSpec("name", datagen.full_person_name),
            FieldSpec("address", datagen.street_address, missing_rate=0.15),
            FieldSpec("citystate", citystate),
            FieldSpec("phone", ca_phone),
        ]
    )


def _listing_extras(rng: SiteRng, record: dict) -> list[tuple[str, str]]:
    """Detail-only rows: a unique listing id and an update date."""
    return [
        ("Listing ID", f"LID-{rng.digits(6)}"),
        ("Updated", datagen.admission_date(rng)),
    ]


def build_superpages(seed: int = 101) -> SiteSpec:
    """Verizon Superpages (Figure 1's running example)."""
    return SiteSpec(
        name="superpages",
        title="SuperPages",
        domain="whitepages",
        schema=_us_schema("OH"),
        records_per_page=(3, 15),
        layout=RowLayout.FLAT,
        quirks=Quirks(duplicate_boilerplate=True),
        seed=seed,
        detail_labels={"citystate": "City / State"},
        detail_extras=_listing_extras,
    )


def build_yahoo_people(seed: int = 102) -> SiteSpec:
    """Yahoo People Search."""
    return SiteSpec(
        name="yahoo",
        title="Yahoo People",
        domain="whitepages",
        schema=_us_schema("CA"),
        records_per_page=(10, 10),
        layout=RowLayout.GRID,
        ad_table=True,
        quirks=Quirks(
            duplicate_boilerplate=True,
            ad_contamination=(0,),
        ),
        seed=seed,
        detail_extras=_listing_extras,
    )


def _canada411_post(rng: SiteRng, records: list[dict], page: int) -> None:
    """Share towns across records; page 2 shares a single town.

    Towns are fixed constants disjoint between the two pages, so the
    shared-town extract can never be dropped by the appears-on-all-
    list-pages filter — it must survive to trigger the missing-detail
    inconsistency on page 2.
    """
    if page == 1:
        for record in records:
            record["citystate"] = "Sudbury, ON"
        return
    for record in records:
        record["citystate"] = rng.pick(["Toronto, ON", "Ottawa, ON"])


def build_canada411(seed: int = 103) -> SiteSpec:
    """Canada411, with the paper's missing-town inconsistency."""
    return SiteSpec(
        name="canada411",
        title="Canada411",
        domain="whitepages",
        schema=_ca_schema("ON"),
        records_per_page=(25, 5),
        layout=RowLayout.FLAT,
        quirks=Quirks(
            missing_detail_field=MissingDetailField(
                field="citystate", page=1, record=2
            ),
        ),
        seed=seed,
        post_process=_canada411_post,
        detail_extras=_listing_extras,
    )


def _sprint_post(rng: SiteRng, records: list[dict], page: int) -> None:
    """Limit each page to a couple of towns (shared values)."""
    towns = [records[0]["citystate"], records[-1]["citystate"]]
    towns = list(dict.fromkeys(towns))
    for record in records:
        record["citystate"] = rng.pick(towns)


def build_sprint_canada(seed: int = 104) -> SiteSpec:
    """SprintCanada directory (clean grid site)."""
    return SiteSpec(
        name="sprintcanada",
        title="SprintCanada",
        domain="whitepages",
        schema=_ca_schema("BC"),
        records_per_page=(20, 20),
        layout=RowLayout.GRID,
        ad_table=True,
        seed=seed,
        post_process=_sprint_post,
        detail_extras=_listing_extras,
    )

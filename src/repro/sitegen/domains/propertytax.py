"""Property-tax sites: Allegheny, Butler and Lee counties.

The paper's cleanest domain — government sites with grid-like tables
and consistent data ("Commercial sites had the greatest complexity...
government sites" less so).  All three segment perfectly for the CSP
and near-perfectly for the probabilistic method in Table 4, so these
builders inject no quirks; they differ in layout, schema richness and
record counts (20/20, 15/12, 16/5).
"""

from __future__ import annotations

from repro.sitegen import datagen
from repro.sitegen.rng import SiteRng
from repro.sitegen.schema import FieldSpec, RecordSchema
from repro.sitegen.site import RowLayout, SiteSpec

__all__ = ["build_allegheny", "build_butler", "build_lee"]


def _tax_extras(rng: SiteRng, record: dict) -> list[tuple[str, str]]:
    return [
        ("Tax Year", "2003"),
        ("School District", f"District {rng.randint(1, 40)} {rng.digits(4)}"),
    ]


def _parcel_schema(region: str) -> RecordSchema:
    def citystatezip(rng: SiteRng) -> str:
        return f"{datagen.city_state(rng, region)} {datagen.zip_code(rng)}"

    return RecordSchema(
        fields=[
            FieldSpec("parcel", datagen.parcel_id),
            FieldSpec("owner", datagen.full_person_name),
            FieldSpec("address", datagen.street_address),
            FieldSpec("citystate", citystatezip, missing_rate=0.1),
            FieldSpec("value", datagen.assessed_value),
        ]
    )


def build_allegheny(seed: int = 201) -> SiteSpec:
    """Allegheny County (PA) assessment search — big clean grid."""
    return SiteSpec(
        name="allegheny",
        title="Allegheny County Assessment",
        domain="propertytax",
        schema=_parcel_schema("PA"),
        records_per_page=(20, 20),
        layout=RowLayout.GRID,
        seed=seed,
        detail_labels={
            "parcel": "Parcel ID",
            "citystate": "Municipality",
            "value": "Assessed Value",
        },
        detail_extras=_tax_extras,
    )


def build_butler(seed: int = 202) -> SiteSpec:
    """Butler County (OH) auditor — clean grid with acreage."""
    schema = RecordSchema(
        fields=[
            FieldSpec("parcel", datagen.parcel_id),
            FieldSpec("owner", datagen.full_person_name),
            FieldSpec("address", datagen.street_address),
            FieldSpec("acreage", datagen.acreage, missing_rate=0.15),
            FieldSpec("value", datagen.assessed_value),
        ]
    )
    return SiteSpec(
        name="butler",
        title="Butler County Auditor",
        domain="propertytax",
        schema=schema,
        records_per_page=(15, 12),
        layout=RowLayout.GRID,
        seed=seed,
        detail_labels={
            "parcel": "Parcel Number",
            "value": "Market Value",
        },
        detail_extras=_tax_extras,
    )


def build_lee(seed: int = 203) -> SiteSpec:
    """Lee County (FL) property appraiser — free-form blocks."""
    return SiteSpec(
        name="lee",
        title="Lee County Property Appraiser",
        domain="propertytax",
        schema=_parcel_schema("FL"),
        records_per_page=(16, 5),
        layout=RowLayout.FLAT,
        seed=seed,
        detail_labels={
            "parcel": "Folio ID",
            "citystate": "Site City",
            "value": "Just Value",
        },
        detail_extras=_tax_extras,
    )

"""Domain vocabularies for the 12-site simulator.

Each module supplies the fake-but-plausible data one 2003-era domain
needs — person names and phone books (:mod:`~repro.sitegen.domains.whitepages`),
book catalogues (:mod:`~repro.sitegen.domains.books`), inmate rosters
(:mod:`~repro.sitegen.domains.corrections`), parcel records
(:mod:`~repro.sitegen.domains.propertytax`) — plus the shared helpers
in :mod:`~repro.sitegen.domains.common`.  Site specs in
:mod:`repro.sitegen.corpus` pick a domain by name.
"""

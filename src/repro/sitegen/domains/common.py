"""Shared helpers for the domain site builders."""

from __future__ import annotations

from collections import Counter

from repro.sitegen.rng import SiteRng

__all__ = ["ensure_no_singletons"]


def ensure_no_singletons(
    rng: SiteRng, records: list[dict], field: str
) -> None:
    """Make every value of ``field`` occur 0 or >= 2 times on the page.

    Low-cardinality categorical values (facility names, offenses,
    statuses) that happen to occur exactly once on *each* sample page
    would qualify as unique-per-page template tokens and thread through
    the table, shattering it.  Real template-generated sites do not
    fragment on such values because real template finders see more
    pages; with only two sample pages (the paper's setup) we instead
    keep categorical values from being page-unique at all, by
    reassigning each singleton to a value that already occurs at least
    twice (or duplicating it onto another record when the page is too
    small to have one).
    """
    while True:
        counts = Counter(
            record[field] for record in records if field in record
        )
        singles = [value for value, count in counts.items() if count == 1]
        if not singles:
            return
        # Fix one singleton per pass; earlier fixes change the counts,
        # so they are recomputed before touching the next one.
        value = singles[0]
        frequent = [v for v, count in counts.items() if count >= 2]
        holder = next(r for r in records if r.get(field) == value)
        if frequent:
            holder[field] = rng.pick(frequent)
        else:
            # No frequent value yet: copy this one onto a second
            # record, making it a pair.
            others = [
                other
                for other in records
                if other is not holder and field in other
            ]
            if not others:
                return
            rng.pick(others)[field] = value

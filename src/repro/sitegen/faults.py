"""Deterministic fault injection for simulated crawls.

The paper's vision (Section 3) has the system "automatically navigate
the site, retrieving all pages" — which on the real web means
timeouts, dead links, half-downloaded documents and servers that melt
under load.  The simulator's :class:`~repro.sitegen.site.GeneratedSite`
never misbehaves, so nothing downstream ever had to cope.

:class:`FaultPlan` + :class:`FaultyTransport` close that gap: a seeded,
fully deterministic fault model layered over any object with a
``fetch(url)`` method.  Determinism is the point — every decision
(does this URL fail?  how many times?  where is the payload cut?) is a
pure function of ``(plan.seed, url)``, so a chaos run is exactly
reproducible and every gap a crawl reports can be replayed.

Fault classes, mirroring what a crawler sees in the wild:

* **transient** — the first *k* attempts raise
  :class:`~repro.core.exceptions.TransientFetchError` (a timeout /
  connection reset), then the page is served normally;
* **permanent** — every attempt raises
  :class:`~repro.core.exceptions.PermanentFetchError` (a 404);
* **truncated** — the connection "drops" mid-body: the page is served
  with its HTML cut at a deterministic fraction;
* **garbled** — the payload arrives corrupted: a deterministic sprinkle
  of characters is overwritten with junk;
* **latency** — the page is slow; no real sleeping happens, the
  simulated cost is exposed via :meth:`FaultyTransport.latency_of` and
  charged against the resilient fetcher's deadline budget.
"""

from __future__ import annotations

import enum
import hashlib
import random
import string
import zlib
from dataclasses import dataclass

from repro.core.exceptions import (
    ConfigError,
    PermanentFetchError,
    TransientFetchError,
)
from repro.webdoc.page import Page

__all__ = ["FaultKind", "FaultPlan", "FaultyTransport", "stable_unit"]

#: Characters used to overwrite garbled payload positions.
_GARBLE_ALPHABET = string.ascii_letters + string.digits + " ~^"


class FaultKind(enum.Enum):
    """The failure mode a :class:`FaultPlan` assigns to one URL."""

    NONE = "none"
    TRANSIENT = "transient"
    PERMANENT = "permanent"
    TRUNCATED = "truncated"
    GARBLED = "garbled"


def stable_unit(key: str) -> float:
    """A deterministic, well-mixed draw in [0, 1) from ``key``.

    SHA-256 rather than ``hash()`` (salted per interpreter) or CRC-32
    (linear: flipping one key bit XORs the output by a constant, so
    nearby seeds would make near-identical decisions for every URL).
    """
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _unit(seed: int, salt: str, url: str) -> float:
    """A deterministic draw in [0, 1) from ``(seed, salt, url)``."""
    return stable_unit(f"{seed}:{salt}:{url}")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of which URLs fail, and how.

    Rates are marginal probabilities over the URL space; each URL draws
    once and the draw is bucketed in a fixed precedence order
    (permanent, transient, truncated, garbled), so the rates must sum
    to at most 1.

    Attributes:
        seed: the master seed; two plans with equal fields make
            identical decisions for every URL.
        transient_rate: fraction of URLs that fail transiently.
        permanent_rate: fraction of URLs that 404 forever.
        truncated_rate: fraction of URLs served with a cut payload.
        garbled_rate: fraction of URLs served with corrupted bytes.
        latency_rate: fraction of URLs that are slow (orthogonal to the
            failure buckets — a transient URL can also be slow).
        latency_s: simulated seconds added to each slow URL's fetch.
        max_transient_failures: a transient URL fails between 1 and
            this many times before recovering (per-URL count drawn
            deterministically).
    """

    seed: int = 0
    transient_rate: float = 0.0
    permanent_rate: float = 0.0
    truncated_rate: float = 0.0
    garbled_rate: float = 0.0
    latency_rate: float = 0.0
    latency_s: float = 0.25
    max_transient_failures: int = 2

    def __post_init__(self) -> None:
        rates = (
            self.transient_rate,
            self.permanent_rate,
            self.truncated_rate,
            self.garbled_rate,
            self.latency_rate,
        )
        if any(rate < 0.0 or rate > 1.0 for rate in rates):
            raise ConfigError(f"fault rates must lie in [0, 1]: {rates}")
        fault_total = sum(rates[:4])
        if fault_total > 1.0:
            raise ConfigError(
                f"fault rates sum to {fault_total:.3f} > 1; each URL can "
                "only fail one way"
            )
        if self.max_transient_failures < 1:
            raise ConfigError("max_transient_failures must be >= 1")
        if self.latency_s < 0.0:
            raise ConfigError("latency_s must be >= 0")

    def fault_for(self, url: str) -> FaultKind:
        """The failure mode assigned to ``url`` (pure, reproducible)."""
        draw = _unit(self.seed, "kind", url)
        edge = self.permanent_rate
        if draw < edge:
            return FaultKind.PERMANENT
        edge += self.transient_rate
        if draw < edge:
            return FaultKind.TRANSIENT
        edge += self.truncated_rate
        if draw < edge:
            return FaultKind.TRUNCATED
        edge += self.garbled_rate
        if draw < edge:
            return FaultKind.GARBLED
        return FaultKind.NONE

    def failures_before_recovery(self, url: str) -> int:
        """How many attempts a TRANSIENT url fails before serving."""
        span = self.max_transient_failures
        return 1 + int(_unit(self.seed, "count", url) * span)

    def latency_of(self, url: str) -> float:
        """Simulated extra seconds one fetch of ``url`` costs."""
        if _unit(self.seed, "slow", url) < self.latency_rate:
            return self.latency_s
        return 0.0

    def truncation_point(self, url: str, length: int) -> int:
        """Where a TRUNCATED url's payload is cut (30-90% through)."""
        fraction = 0.3 + 0.6 * _unit(self.seed, "cut", url)
        return max(1, int(length * fraction))


class FaultyTransport:
    """A ``fetch(url)`` source that injects a :class:`FaultPlan`.

    Wraps anything with ``fetch(url) -> Page`` (normally a
    :class:`~repro.sitegen.site.GeneratedSite`).  Damaged payloads are
    rendered once per URL and cached, so repeated fetches observe the
    same corruption — like re-downloading from a broken cache.

    Attributes:
        attempts: fetch attempts per URL (drives transient recovery).
        faults_raised: count of fetches that raised, by fault kind.
    """

    def __init__(self, site, plan: FaultPlan) -> None:
        self.site = site
        self.plan = plan
        self.attempts: dict[str, int] = {}
        self.faults_raised: dict[str, int] = {}
        self._damaged: dict[str, Page] = {}

    def latency_of(self, url: str) -> float:
        """Simulated latency of fetching ``url`` (seconds)."""
        return self.plan.latency_of(url)

    def fetch(self, url: str) -> Page:
        """Serve ``url`` through the fault plan.

        Raises:
            PermanentFetchError: the plan 404s this URL.
            TransientFetchError: the plan fails this attempt; a later
                attempt will succeed.
            FetchError: the underlying site does not serve this URL.
        """
        self.attempts[url] = self.attempts.get(url, 0) + 1
        kind = self.plan.fault_for(url)
        if kind is FaultKind.PERMANENT:
            self._count_fault(kind)
            raise PermanentFetchError(f"injected 404 for {url!r}")
        if kind is FaultKind.TRANSIENT:
            if self.attempts[url] <= self.plan.failures_before_recovery(url):
                self._count_fault(kind)
                raise TransientFetchError(
                    f"injected timeout for {url!r} "
                    f"(attempt {self.attempts[url]})"
                )
        page = self.site.fetch(url)
        if kind is FaultKind.TRUNCATED:
            return self._damaged_page(url, page, self._truncate)
        if kind is FaultKind.GARBLED:
            return self._damaged_page(url, page, self._garble)
        return page

    def _count_fault(self, kind: FaultKind) -> None:
        self.faults_raised[kind.value] = self.faults_raised.get(kind.value, 0) + 1

    def _damaged_page(self, url: str, page: Page, damage) -> Page:
        cached = self._damaged.get(url)
        if cached is None:
            cached = Page(url=page.url, html=damage(url, page.html), kind=page.kind)
            self._damaged[url] = cached
        return cached

    def _truncate(self, url: str, html: str) -> str:
        return html[: self.plan.truncation_point(url, len(html))]

    def _garble(self, url: str, html: str) -> str:
        """Overwrite ~5% of characters, deterministically per URL."""
        rng = random.Random(zlib.crc32(f"{self.plan.seed}:garble:{url}".encode()))
        chars = list(html)
        for index in range(len(chars)):
            if rng.random() < 0.05:
                chars[index] = rng.choice(_GARBLE_ALPHABET)
        return "".join(chars)

"""Deterministic randomness helpers for site generation.

Every site is generated from a single integer seed; the corpus is
therefore fully reproducible, which the evaluation and the benchmark
suite rely on.  :class:`SiteRng` is a thin wrapper over
:class:`random.Random` with the handful of idioms the generators use.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence, TypeVar

__all__ = ["SiteRng"]

T = TypeVar("T")


class SiteRng:
    """Seedable random source with generation-friendly helpers."""

    def __init__(self, seed: int) -> None:
        self._random = random.Random(seed)

    def pick(self, items: Sequence[T]) -> T:
        """One uniformly random element."""
        return items[self._random.randrange(len(items))]

    def pick_weighted(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """One element, weighted."""
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """``count`` distinct elements (count capped at len(items))."""
        count = min(count, len(items))
        return self._random.sample(list(items), count)

    def shuffled(self, items: Sequence[T]) -> list[T]:
        """A shuffled copy."""
        copy = list(items)
        self._random.shuffle(copy)
        return copy

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._random.randint(low, high)

    def digits(self, count: int) -> str:
        """``count`` random digits as a string."""
        return "".join(str(self._random.randrange(10)) for _ in range(count))

    def fork(self, label: str) -> "SiteRng":
        """An independent stream derived from this one and ``label``.

        Forking lets record generation and page-noise generation use
        separate streams, so adding noise never perturbs record data.
        The label is hashed with CRC-32, not ``hash()``, so forks stay
        deterministic across processes (``hash(str)`` is salted).
        """
        return SiteRng(self._random.getrandbits(32) ^ zlib.crc32(label.encode()))

"""Parameterized sites for sweep experiments.

The corpus fixes each site's corruption level to what the paper
reports; sweep experiments need the level as a dial instead.  The
builders here produce families of sites varying one factor:

* :func:`noisy_site` — a corrections-style site with ``plants``
  far-pointing planted mentions per page (the inconsistency type that
  breaks hard constraints), for robustness curves;
* :func:`sized_site` — a clean grid site with a chosen record count,
  for timing/scaling curves;
* :func:`catalog_site` — one of an unbounded family of small sites
  alternating domain and rotating detail-label vocabulary, for
  store-scale corpora where cross-site attribute matching has real
  work to do (some sites share a label exactly, some by word overlap,
  some not at all).
"""

from __future__ import annotations

from repro.sitegen import datagen
from repro.sitegen.corruptions import PlantedMention, Quirks
from repro.sitegen.domains.corrections import (
    _corrections_extras,
    _inmate_schema,
    _no_categorical_singletons,
)
from repro.sitegen.domains.propertytax import _parcel_schema, _tax_extras
from repro.sitegen.site import GeneratedSite, RowLayout, SiteSpec

__all__ = ["catalog_site", "noisy_site", "sized_site"]


def noisy_site(
    plants: int, records: int = 15, seed: int = 900
) -> GeneratedSite:
    """A corrections-style site with ``plants`` inconsistencies per page.

    Each plant quotes one record's name on one far detail page (like
    Michigan's stray "Parole"), so `plants` counts independent hard
    conflicts the solvers must survive.
    """
    mentions: list[PlantedMention] = []
    for page in range(2):
        for index in range(plants):
            # Sources land on even rows, which the stride-2 case
            # mismatch renders ALL-CAPS: their names never match their
            # own detail page, so the planted mention is the extract's
            # *only* (and wrong) evidence — a genuine hard conflict.
            source = (2 + index * 4) % records
            source -= source % 2
            target = (source + records // 2) % records
            mentions.append(
                PlantedMention(
                    page=page,
                    field="name",
                    source_record=source,
                    target_records=(target,),
                )
            )
    spec = SiteSpec(
        name=f"sweep-noise-{plants}",
        title="Sweep Corrections",
        domain="corrections",
        schema=_inmate_schema("S"),
        records_per_page=(records, records),
        layout=RowLayout.GRID,
        quirks=Quirks(
            case_mismatch_fields=("name",),
            case_mismatch_stride=2,
            planted_mentions=tuple(mentions),
        ),
        seed=seed,
        detail_extras=_corrections_extras,
        post_process=_no_categorical_singletons,
    )
    return GeneratedSite(spec)


#: Label vocabularies the catalog family rotates through — the same
#: spread the real corpus shows (e.g. "Assessed Value" / "Market
#: Value" / "Just Value" across the three county assessors).
_PARCEL_LABELS = (
    {"parcel": "Parcel ID", "owner": "Owner", "value": "Assessed Value"},
    {"parcel": "Parcel Number", "owner": "Owner Name", "value": "Market Value"},
    {"parcel": "Folio ID", "owner": "Owner", "value": "Just Value"},
)
_INMATE_LABELS = (
    {"name": "Name", "number": "Offender Number", "status": "Status"},
    {"name": "Inmate Name", "number": "Inmate Number", "status": "Status"},
    {"name": "Name", "number": "ID Number", "status": "Custody Status"},
)


def catalog_site(
    index: int, records: int = 8, seed: int = 902
) -> GeneratedSite:
    """Site ``index`` of the unbounded store-benchmark family.

    Even indices are property-tax grids, odd ones corrections grids;
    within a domain the detail labels rotate through three variant
    vocabularies, so a corpus of these exercises the attribute
    catalog's exact, word-overlap and no-match paths alike.
    """
    if index % 2 == 0:
        domain, schema = "propertytax", _parcel_schema("PA")
        labels = _PARCEL_LABELS[(index // 2) % len(_PARCEL_LABELS)]
        extras = _tax_extras
        post = None
    else:
        domain, schema = "corrections", _inmate_schema("C")
        labels = _INMATE_LABELS[(index // 2) % len(_INMATE_LABELS)]
        extras = _corrections_extras
        post = _no_categorical_singletons
    spec = SiteSpec(
        name=f"catalog-{index:03d}",
        title=f"Catalog Site {index}",
        domain=domain,
        schema=schema,
        records_per_page=(records, records),
        layout=RowLayout.GRID,
        seed=seed + index,
        detail_labels=labels,
        detail_extras=extras,
        post_process=post,
    )
    return GeneratedSite(spec)


def sized_site(records: int, seed: int = 901) -> GeneratedSite:
    """A clean property-tax grid site with ``records`` rows per page."""
    spec = SiteSpec(
        name=f"sweep-size-{records}",
        title="Sweep County Assessor",
        domain="propertytax",
        schema=_parcel_schema("PA"),
        records_per_page=(records, records),
        layout=RowLayout.GRID,
        seed=seed,
        detail_extras=_tax_extras,
    )
    return GeneratedSite(spec)

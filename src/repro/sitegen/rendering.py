"""HTML assembly helpers for the site generator.

:class:`HtmlBuilder` is an append-only page assembler that exposes the
current character offset, which the site generator uses to record the
ground-truth span of every rendered record row — evaluation later maps
extracts to true records purely by these spans, independent of layout.
"""

from __future__ import annotations

from repro.sitegen.rng import SiteRng
from repro.webdoc.entities import encode_entities

__all__ = ["HtmlBuilder", "ad_sentence", "link", "NOISE_WORDS"]

#: Advertisement / filler lexicon for per-page noise.  Lowercase and
#: deliberately disjoint from the record-data vocabularies.
NOISE_WORDS = [
    "save", "today", "offer", "special", "limited", "deal", "online",
    "shipping", "free", "instant", "bonus", "member", "exclusive",
    "discount", "upgrade", "premium", "trial", "subscribe", "now",
    "click", "here", "learn", "more", "sponsored", "partner", "best",
    "rates", "quotes", "compare", "lowest", "guaranteed", "approval",
]


class HtmlBuilder:
    """Append-only HTML assembler with offset tracking."""

    def __init__(self) -> None:
        self._parts: list[str] = []
        self._length = 0

    @property
    def offset(self) -> int:
        """Character offset where the next append will land."""
        return self._length

    def add(self, text: str) -> "HtmlBuilder":
        """Append raw HTML."""
        self._parts.append(text)
        self._length += len(text)
        return self

    def add_text(self, text: str) -> "HtmlBuilder":
        """Append text content, entity-escaped."""
        return self.add(encode_entities(text))

    def build(self) -> str:
        """The assembled document."""
        return "".join(self._parts)


def link(url: str, text: str) -> str:
    """An anchor element."""
    return f'<a href="{url}">{encode_entities(text)}</a>'


def ad_sentence(rng: SiteRng, word_count: int = 8) -> str:
    """A nonsense advertisement sentence (per-page noise).

    Words are sampled *with* replacement so most repeat somewhere on
    the page or are absent from the sibling page — either way they
    stay out of the unique-token template.
    """
    words = [rng.pick(NOISE_WORDS) for _ in range(word_count)]
    return " ".join(words)

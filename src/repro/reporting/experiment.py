"""The corpus experiment driver.

:func:`run_corpus` reproduces the paper's main experiment: both
segmentation methods over all 12 simulated sites (two list pages
each), scored against ground truth.  Benchmarks, examples and tests
all share this driver so they report identical numbers.
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.core.evaluation import score_page
from repro.core.pipeline import SegmentationPipeline
from repro.reporting.aggregate import (
    ExperimentResult,
    PageResult,
    notes_from_meta,
)
from repro.sitegen.corpus import Corpus, build_corpus

__all__ = ["run_corpus", "run_site"]


def run_site(
    site,
    method: str,
    config: PipelineConfig | None = None,
) -> list[PageResult]:
    """Run one method over one generated site; one row per list page."""
    pipeline = SegmentationPipeline(method, config)
    run = pipeline.segment_generated_site(site)
    rows: list[PageResult] = []
    for page_run, truth in zip(run.pages, site.truth):
        score = score_page(page_run.segmentation, truth)
        rows.append(
            PageResult(
                site=site.spec.name,
                page_index=truth.page_index,
                method=method,
                score=score,
                notes=notes_from_meta(page_run.segmentation.meta),
                elapsed=page_run.elapsed,
                meta=dict(page_run.segmentation.meta),
            )
        )
    return rows


def run_corpus(
    corpus: Corpus | None = None,
    methods: tuple[str, ...] = ("prob", "csp"),
    config: PipelineConfig | None = None,
) -> ExperimentResult:
    """Run the full Table 4 experiment.

    Args:
        corpus: a rendered corpus; defaults to the standard 12 sites.
        methods: which segmenters to evaluate.
        config: shared pipeline configuration.
    """
    corpus = corpus or build_corpus()
    result = ExperimentResult()
    for method in methods:
        for site in corpus.sites:
            for row in run_site(site, method, config):
                result.add(row)
    return result

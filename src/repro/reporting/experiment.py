"""The corpus experiment driver.

:func:`run_corpus` reproduces the paper's main experiment: both
segmentation methods over all 12 simulated sites (two list pages
each), scored against ground truth.  Benchmarks, examples and tests
all share this driver so they report identical numbers.

The standard corpus (``corpus=None``) executes through the batch
runner (:mod:`repro.runner`): one ``eval_generated`` task per
(site, method), scheduled on ``workers`` processes and optionally
backed by the content-addressed stage cache (``cache_dir``) — the
Table 4 run parallelizes and warm-runs like any other batch, while
row order and numbers stay byte-identical to the serial loop.  A
caller-supplied corpus object (noise sweeps, ablations) cannot be
rebuilt by name inside a worker, so it runs inline — but the method
sweep still reuses upstream stages: every method shares one
per-site :class:`~repro.runner.cache.MemoryStageCache`, so the
graph's ``tokenize``/``template``/``extracts``/``observations``
stages compute once per site and only ``segment`` (whose cache key
includes the method and its config) runs per method.  Rows are
re-emitted in method-major order, so sharing changes no output.
"""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.core.evaluation import score_page
from repro.core.pipeline import SegmentationPipeline
from repro.reporting.aggregate import (
    ExperimentResult,
    PageResult,
    notes_from_meta,
)
from repro.runner.cache import MemoryStageCache
from repro.sitegen.corpus import Corpus, build_corpus

__all__ = ["run_corpus", "run_site"]


def run_site(
    site,
    method: str,
    config: PipelineConfig | None = None,
    cache=None,
) -> list[PageResult]:
    """Run one method over one generated site; one row per list page.

    Args:
        cache: optional stage cache (disk or memory) the pipeline's
            stage graph consults; pass the same instance across
            methods to reuse method-independent upstream stages.
    """
    pipeline = SegmentationPipeline(method, config, cache=cache)
    run = pipeline.segment_generated_site(site)
    rows: list[PageResult] = []
    for page_run, truth in zip(run.pages, site.truth):
        score = score_page(page_run.segmentation, truth)
        rows.append(
            PageResult(
                site=site.spec.name,
                page_index=truth.page_index,
                method=method,
                score=score,
                notes=notes_from_meta(page_run.segmentation.meta),
                elapsed=page_run.elapsed,
                meta=dict(page_run.segmentation.meta),
            )
        )
    return rows


def _run_standard_corpus(
    methods: tuple[str, ...],
    config: PipelineConfig | None,
    workers: int,
    cache_dir: str | None,
) -> ExperimentResult:
    """The standard 12 sites through the batch runner."""
    from repro.runner import BatchRunner, RunnerConfig, SiteTask
    from repro.sitegen.corpus import TABLE4_ORDER

    tasks = [
        SiteTask(
            task_id=f"{name}:{method}",
            kind="eval_generated",
            spec=name,
            method=method,
        )
        for method in methods
        for name in TABLE4_ORDER
    ]
    runner = BatchRunner(
        RunnerConfig(workers=workers, cache_dir=cache_dir, pipeline=config)
    )
    batch = runner.run(tasks)
    rows_by_task = {result.task_id: result for result in batch.results}
    result = ExperimentResult()
    for task in tasks:  # deterministic row order, whatever finished first
        task_result = rows_by_task.get(task.task_id)
        if task_result is None or task_result.status == "failed":
            detail = task_result.error if task_result else "task not run"
            raise RuntimeError(
                f"experiment task {task.task_id} failed: {detail}"
            )
        for row in task_result.payload:
            result.add(row)
    return result


def run_corpus(
    corpus: Corpus | None = None,
    methods: tuple[str, ...] = ("prob", "csp"),
    config: PipelineConfig | None = None,
    workers: int = 1,
    cache_dir: str | None = None,
) -> ExperimentResult:
    """Run the full Table 4 experiment.

    Args:
        corpus: a rendered corpus; defaults to the standard 12 sites,
            which then execute through the batch runner.
        methods: which segmenters to evaluate.
        config: shared pipeline configuration.
        workers: process-pool width for the standard corpus (1 runs
            inline; ignored for a caller-supplied corpus).
        cache_dir: optional stage-cache root for the standard corpus.
    """
    if corpus is None:
        return _run_standard_corpus(
            tuple(methods), config, workers, cache_dir
        )
    # Site-major execution so each site's upstream stages are computed
    # once and shared across methods; rows are then emitted in the
    # method-major order the serial loop always produced.
    rows_by_cell: dict[tuple[str, int], list[PageResult]] = {}
    for site_index, site in enumerate(corpus.sites):
        site_cache = MemoryStageCache()
        for method in methods:
            rows_by_cell[(method, site_index)] = run_site(
                site, method, config, cache=site_cache
            )
    result = ExperimentResult()
    for method in methods:
        for site_index in range(len(corpus.sites)):
            for row in rows_by_cell[(method, site_index)]:
                result.add(row)
    return result

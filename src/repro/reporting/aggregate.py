"""Experiment aggregation: per-page results, totals, clean subsets.

The shapes here mirror the paper's reporting:

* one row per (site, list page, method) with Cor/InC/FN/FP and the
  Table 4 note letters;
* micro-aggregated precision/recall/F per method (Table 4's bottom
  rows);
* the *clean subset* — pages where the strict CSP found a solution —
  over which Section 6.3 reports the second set of numbers
  (CSP 0.99/0.92/0.95, probabilistic 0.78/1.0/0.88 on 17 pages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.evaluation import PageScore

__all__ = ["NOTE_LEGEND", "PageResult", "ExperimentResult", "notes_from_meta"]

#: Table 4's note legend.
NOTE_LEGEND = {
    "a": "Page template problem",
    "b": "Entire page used",
    "c": "No solution found",
    "d": "Relax constraints",
}


def notes_from_meta(meta: dict[str, Any]) -> str:
    """Derive the Table 4 note letters from a segmentation's meta."""
    notes = ""
    if meta.get("template_ok") is False:
        notes += "a"
    if meta.get("whole_page"):
        notes += "b"
    level = meta.get("level")
    relaxed = meta.get("relaxed", False)
    no_solution = meta.get("solution_found") is False
    if relaxed or no_solution or (level is not None and int(level) > 0):
        notes += "c"  # the strict problem had no solution
    if relaxed:
        notes += "d"
    return notes


@dataclass
class PageResult:
    """One (site, page, method) evaluation row."""

    site: str
    page_index: int
    method: str
    score: PageScore
    notes: str = ""
    elapsed: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def csp_strict_ok(self) -> bool:
        """Did the strict CSP solve this page (clean-subset membership)?

        Meaningful for CSP rows; probabilistic rows join the clean
        subset through their CSP sibling (see
        :meth:`ExperimentResult.clean_pages`).
        """
        return "c" not in self.notes and "d" not in self.notes


@dataclass
class ExperimentResult:
    """All rows of one corpus-wide evaluation run."""

    pages: list[PageResult] = field(default_factory=list)

    def add(self, result: PageResult) -> None:
        self.pages.append(result)

    def methods(self) -> list[str]:
        seen: list[str] = []
        for page in self.pages:
            if page.method not in seen:
                seen.append(page.method)
        return seen

    def rows_for(self, method: str) -> list[PageResult]:
        return [page for page in self.pages if page.method == method]

    def totals(self, method: str) -> PageScore:
        """Micro totals over every page of a method."""
        total = PageScore()
        for page in self.rows_for(method):
            total = total + page.score
        return total

    def clean_pages(self) -> set[tuple[str, int]]:
        """(site, page) keys where the strict CSP found a solution.

        This is the paper's Section 6.3 subset ("If we excluded from
        consideration those Web pages for which the CSP algorithm
        could not find a solution").
        """
        keys: set[tuple[str, int]] = set()
        for page in self.rows_for("csp"):
            if page.csp_strict_ok:
                keys.add((page.site, page.page_index))
        return keys

    def clean_totals(self, method: str) -> PageScore:
        """Micro totals of a method over the clean subset."""
        clean = self.clean_pages()
        total = PageScore()
        for page in self.rows_for(method):
            if (page.site, page.page_index) in clean:
                total = total + page.score
        return total

    def total_elapsed(self, method: str) -> float:
        """Wall-clock seconds a method spent across all pages."""
        return sum(page.elapsed for page in self.rows_for(method))

"""Experiment drivers, aggregation and paper-style table rendering."""

from repro.reporting.aggregate import (
    NOTE_LEGEND,
    ExperimentResult,
    PageResult,
    notes_from_meta,
)
from repro.reporting.experiment import run_corpus, run_site
from repro.reporting.tables import (
    render_assignment_table,
    render_observation_table,
    render_position_table,
    render_table4,
)

__all__ = [
    "NOTE_LEGEND",
    "ExperimentResult",
    "PageResult",
    "notes_from_meta",
    "render_assignment_table",
    "render_observation_table",
    "render_position_table",
    "render_table4",
    "run_corpus",
    "run_site",
]

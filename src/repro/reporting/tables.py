"""ASCII renderers for the paper's tables.

Each function regenerates one of the paper's exhibits from live
objects: the observation table (Table 1), the assignment table
(Table 2), the position table (Table 3) and the per-site results
table (Table 4).
"""

from __future__ import annotations

from repro.core.results import Segmentation
from repro.extraction.observations import ObservationTable
from repro.reporting.aggregate import NOTE_LEGEND, ExperimentResult

__all__ = [
    "render_observation_table",
    "render_assignment_table",
    "render_position_table",
    "render_table4",
]


def _clip(text: str, width: int) -> str:
    return text if len(text) <= width else text[: width - 1] + "…"


def render_observation_table(
    table: ObservationTable, col_width: int = 14
) -> str:
    """Table 1: observations of extracts on detail pages (D_i sets)."""
    header = ["extract".ljust(col_width)]
    d_row = ["D_i".ljust(col_width)]
    for observation in table.observations:
        header.append(_clip(observation.extract.text, col_width).ljust(col_width))
        d_row.append(
            ",".join(f"r{r}" for r in sorted(observation.detail_pages)).ljust(
                col_width
            )
        )
    lines = [
        "Observations of extracts on detail pages "
        f"(K={table.detail_count}; paper Table 1)",
        " | ".join(header),
        " | ".join(d_row),
    ]
    return "\n".join(lines)


def render_assignment_table(
    segmentation: Segmentation, col_width: int = 14
) -> str:
    """Table 2: assignment of extracts to records."""
    table = segmentation.table
    assigned: dict[int, int] = {}
    for record in segmentation.records:
        for observation in record.observations:
            assigned[observation.seq] = record.record_id

    header = ["".ljust(col_width)]
    for observation in table.observations:
        header.append(_clip(observation.extract.text, col_width).ljust(col_width))
    lines = [
        f"Assignment of extracts to records ({segmentation.method}; "
        "paper Table 2)",
        " | ".join(header),
    ]
    for record in segmentation.records:
        row = [f"r{record.record_id}".ljust(col_width)]
        for observation in table.observations:
            mark = "1" if assigned.get(observation.seq) == record.record_id else ""
            row.append(mark.ljust(col_width))
        lines.append(" | ".join(row))
    if segmentation.unassigned:
        lines.append(
            "unassigned: "
            + ", ".join(o.extract.text for o in segmentation.unassigned)
        )
    return "\n".join(lines)


def render_position_table(
    table: ObservationTable, col_width: int = 14
) -> str:
    """Table 3: positions of extracts on detail pages (pos_j^k)."""
    header = ["position".ljust(col_width)]
    for observation in table.observations:
        header.append(_clip(observation.extract.text, col_width).ljust(col_width))
    lines = [
        "Positions of extracts on detail pages (paper Table 3)",
        " | ".join(header),
    ]
    cells: dict[tuple[int, int], set[int]] = {}
    for observation in table.observations:
        for page, starts in observation.positions.items():
            for start in starts:
                cells.setdefault((page, start), set()).add(observation.seq)
    for (page, start), members in sorted(cells.items()):
        row = [f"pos_{page}^{start}".ljust(col_width)]
        for observation in table.observations:
            row.append(("1" if observation.seq in members else "").ljust(col_width))
        lines.append(" | ".join(row))
    return "\n".join(lines)


def render_table4(result: ExperimentResult) -> str:
    """Table 4: per-site Cor/InC/FN/FP for every method + aggregates."""
    methods = result.methods()
    lines: list[str] = []
    head = f"{'Wrapper':<16}"
    for method in methods:
        head += f"| {method:^21} "
    head += "| notes"
    lines.append(head)
    sub = f"{'':<16}"
    for _ in methods:
        sub += f"| {'Cor':>4} {'InC':>4} {'FN':>4} {'FP':>4} "
    lines.append(sub)
    lines.append("-" * len(sub))

    by_key: dict[tuple[str, int], dict[str, object]] = {}
    order: list[tuple[str, int]] = []
    for page in result.pages:
        key = (page.site, page.page_index)
        if key not in by_key:
            by_key[key] = {}
            order.append(key)
        by_key[key][page.method] = page

    for site, page_index in order:
        row = f"{site + ' p' + str(page_index):<16}"
        notes: set[str] = set()
        for method in methods:
            page = by_key[(site, page_index)].get(method)
            if page is None:
                row += f"| {'-':>19} "
                continue
            cor, inc, fn, fp = page.score.as_row()
            row += f"| {cor:>4} {inc:>4} {fn:>4} {fp:>4} "
            notes.update(page.notes)
        row += "| " + ",".join(sorted(notes))
        lines.append(row)

    lines.append("-" * len(sub))
    for label, totals_of in (
        ("Precision", lambda m: result.totals(m).precision),
        ("Recall", lambda m: result.totals(m).recall),
        ("F", lambda m: result.totals(m).f_measure),
    ):
        row = f"{label:<16}"
        for method in methods:
            row += f"| {totals_of(method):>19.2f} "
        lines.append(row)
    lines.append("")
    lines.append(
        "Notes: "
        + "; ".join(f"{letter}. {text}" for letter, text in NOTE_LEGEND.items())
    )
    return "\n".join(lines)

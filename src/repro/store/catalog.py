"""The cross-site attribute catalog: one id per semantic column.

The paper names a site's columns from its own detail labels
(:mod:`repro.relational.naming`); this module lifts those per-site
names into a *cross-site* vocabulary so a column-keyword query can
match "parcel id" against Allegheny's ``Parcel ID`` and Butler's
``Parcel Number`` alike.  Matching is purely textual and purely
deterministic:

* every named column is keyed by its **canonical label**
  (:func:`canonical_label`: lowercased, trailing ``":"`` stripped,
  punctuation collapsed to single spaces), so the attribute a name
  maps to is a function of the name alone — never of which site got
  ingested first (the determinism the naming-layer fix guarantees
  upstream);
* columns the naming layer could not name get a **site-local** key
  (:func:`local_key`) that can never collide with a semantic name, so
  anonymous columns never falsely merge across sites;
* a query keyword matches an attribute exactly (canonical equality,
  strength 1.0) or by word containment either way (``"name"`` vs
  ``"offender name"``, strength 0.5) — the same exact/containment
  ladder the column namer votes with.
"""

from __future__ import annotations

import re
from typing import Any

from repro.store.db import RelationalStore

__all__ = [
    "Catalog",
    "canonical_label",
    "local_key",
    "match_strength",
]

_NON_WORD = re.compile(r"[^a-z0-9]+")

#: Canonical prefix of site-local (unnamed-column) attributes; ``@``
#: cannot survive :func:`canonical_label`, so collisions are impossible.
_LOCAL_PREFIX = "@"


def canonical_label(text: str) -> str:
    """The canonical form semantic attribute matching runs on."""
    text = text.strip().rstrip(":").lower()
    return _NON_WORD.sub(" ", text).strip()


def local_key(site_id: str, method: str, column_key: str) -> str:
    """A per-site attribute key for a column with no semantic name."""
    return f"{_LOCAL_PREFIX}{site_id}/{method}:{column_key}"


def match_strength(keyword_canonical: str, attribute_canonical: str) -> float:
    """How well one canonical keyword matches one canonical attribute.

    1.0 exact, 0.5 when either side's words contain the other's,
    0.0 otherwise (and always 0.0 against site-local attributes).
    """
    if attribute_canonical.startswith(_LOCAL_PREFIX):
        return 0.0
    if not keyword_canonical or not attribute_canonical:
        return 0.0
    if keyword_canonical == attribute_canonical:
        return 1.0
    keyword_words = set(keyword_canonical.split())
    attribute_words = set(attribute_canonical.split())
    if keyword_words <= attribute_words or attribute_words <= keyword_words:
        return 0.5
    return 0.0


class Catalog:
    """Attribute registration + keyword matching over one store."""

    def __init__(self, store: RelationalStore) -> None:
        self.store = store

    def attribute_id(self, canonical: str, display: str) -> int:
        """Get-or-create the attribute row for one canonical text."""
        self.store.execute(
            "INSERT OR IGNORE INTO attributes (canonical, display)"
            " VALUES (?, ?)",
            (canonical, display),
        )
        return self.store.execute(
            "SELECT attribute_id FROM attributes WHERE canonical = ?",
            (canonical,),
        )[0][0]

    def register_columns(
        self,
        site_id: str,
        method: str,
        columns: list[tuple[str, int, str | None]],
    ) -> None:
        """(Re)register one site's induced schema.

        Args:
            columns: ``(column_key, position, semantic name or None)``
                per column, e.g. ``("L1", 1, "Owner")``.
        """
        self.store.execute(
            "DELETE FROM site_columns WHERE site_id = ? AND method = ?",
            (site_id, method),
        )
        for column_key, position, name in columns:
            if name:
                canonical = canonical_label(name)
                attribute = self.attribute_id(canonical or name, name)
            else:
                attribute = self.attribute_id(
                    local_key(site_id, method, column_key), column_key
                )
            self.store.execute(
                "INSERT INTO site_columns"
                " (site_id, method, column_key, position, name,"
                "  attribute_id) VALUES (?, ?, ?, ?, ?, ?)",
                (site_id, method, column_key, position, name, attribute),
            )

    def match_keyword(self, keyword: str) -> dict[int, float]:
        """``attribute_id -> strength`` for every matching attribute."""
        canonical = canonical_label(keyword)
        matches: dict[int, float] = {}
        for attribute_id, attr_canonical in self.store.execute(
            "SELECT attribute_id, canonical FROM attributes"
        ):
            strength = match_strength(canonical, attr_canonical)
            if strength > 0.0:
                matches[attribute_id] = strength
        return matches

    def attributes(self) -> list[dict[str, Any]]:
        """Every semantic (non-local) attribute, with its column count."""
        rows = self.store.execute(
            "SELECT a.attribute_id, a.canonical, a.display, COUNT(c.site_id)"
            " FROM attributes a"
            " LEFT JOIN site_columns c ON c.attribute_id = a.attribute_id"
            " GROUP BY a.attribute_id ORDER BY a.canonical"
        )
        return [
            {
                "attribute_id": attribute_id,
                "canonical": canonical,
                "display": display,
                "columns": columns,
            }
            for attribute_id, canonical, display, columns in rows
            if not canonical.startswith(_LOCAL_PREFIX)
        ]

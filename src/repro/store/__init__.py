"""The queryable relational store: crawl → segment → store → query.

This package closes the loop the paper opens: segmentation
reconstructs each site's hidden relation, and the store materializes
those relations into one embedded sqlite database, matches their
columns into a cross-site attribute catalog, and answers
column-keyword queries over everything ingested.

* :mod:`repro.store.db` — :class:`RelationalStore`: the sqlite
  schema, thread-safe connection, and :class:`StoreError`;
* :mod:`repro.store.ingest` — the one ingest path shared by the
  batch runner (``segment-dir --store``) and the online service
  (``serve --store``), idempotent by content fingerprint;
* :mod:`repro.store.catalog` — canonical attribute ids +
  deterministic keyword matching;
* :mod:`repro.store.query` — ranked, provenance-tagged
  column-keyword answers (library / ``repro query`` / ``GET /query``).

See ``docs/store.md`` for the schema, the ingest paths and the query
semantics.

Usage::

    from repro.store import RelationalStore, ingest_pages, query_store

    with RelationalStore("segments.db") as store:
        ingest_pages(store, "lee", "prob", entries)
        result = query_store(store, "owner, assessed value")
        for row in result.rows:
            print(row["site"], row["page"], row["values"])
"""

from repro.store.catalog import Catalog, canonical_label
from repro.store.db import RelationalStore, StoreError
from repro.store.ingest import (
    IngestReport,
    ingest_batch,
    ingest_pages,
    page_entry,
    site_fingerprint,
)
from repro.store.query import QueryResult, TableHit, parse_keywords, query_store

__all__ = [
    "Catalog",
    "IngestReport",
    "QueryResult",
    "RelationalStore",
    "StoreError",
    "TableHit",
    "canonical_label",
    "ingest_batch",
    "ingest_pages",
    "page_entry",
    "parse_keywords",
    "query_store",
    "site_fingerprint",
]

"""Ingesting segmented output into the relational store.

One ingest path, two producers.  Both the batch runner and the online
service reduce a segmented site to the same **wire page entries** —
the ``{"url", "records", "record_count"}`` dicts of
:mod:`repro.serve.schema`, where every record is a
``{"texts": [...], "columns": [...]}`` dict — and hand them to
:func:`ingest_pages`:

* the batch runner's workers attach one entry per page to their
  :class:`~repro.runner.tasks.PageOutcome` (``segment-dir --store``
  collects them; :func:`ingest_batch` drains a finished
  :class:`~repro.runner.engine.BatchResult`);
* the serve path calls :func:`page_entry` on each response page right
  after answering (``repro serve --store``), so warm and cold answers
  ingest identically.

Semantic column names ride on each entry (``"names"``), computed by
:func:`page_entry` from the site's detail pages through the existing
:mod:`repro.relational` layer — the same agreement voting that names
columns in the paper's combined view.

Idempotence: a site's content fingerprint (canonical SHA-256 of its
wire pages, via :func:`repro.runner.cache.fingerprint`) is stored on
its ``sites`` row.  Re-ingesting unchanged content is a no-op
(``store.ingest.unchanged``); changed content replaces the site's
columns and cells in one transaction (``store.ingest.replaced``); a
quarantined or degraded run is never ingested
(``store.ingest.skipped``) so a broken crawl cannot poison good data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.obs import Observability
from repro.relational.detail_fields import detail_field_pairs
from repro.relational.naming import name_columns
from repro.relational.table_builder import RelationalTable
from repro.runner.cache import fingerprint
from repro.store.catalog import Catalog
from repro.store.db import RelationalStore, StoreError, now
from repro.webdoc.page import Page

__all__ = [
    "IngestReport",
    "ingest_batch",
    "ingest_pages",
    "page_entry",
    "site_fingerprint",
]

#: Batch statuses eligible for ingestion (mirrors the runner: only a
#: clean run's records are trusted; quarantined/failed are skipped).
INGESTIBLE_STATUSES = frozenset({"ok"})


@dataclass
class IngestReport:
    """What one ingest pass did, per site outcome."""

    sites: int = 0
    rows: int = 0
    unchanged: int = 0
    replaced: int = 0
    skipped: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "sites": self.sites,
            "rows": self.rows,
            "unchanged": self.unchanged,
            "replaced": self.replaced,
            "skipped": self.skipped,
        }


def _record_cells(record: Any) -> dict[str, str]:
    """One wire record's cells, keyed ``L<column>``.

    Mirrors :func:`repro.relational.table_builder.build_table`: the
    record's column labels place each text, positions are the
    fallback, and several texts landing in one column join with
    ``" / "``.  Falls back to positions whenever the column list does
    not align with the texts (attached extracts are not labelled).
    """
    texts = record.get("texts") or []
    columns = record.get("columns")
    if not isinstance(columns, list) or len(columns) != len(texts):
        columns = list(range(len(texts)))
    cells: dict[str, str] = {}
    for column, text in zip(columns, texts):
        key = f"L{int(column)}"
        if key in cells:
            cells[key] = cells[key] + " / " + str(text)
        else:
            cells[key] = str(text)
    return cells


def _page_table(records: Sequence[Any]) -> RelationalTable:
    """Wire records as a :class:`RelationalTable` (for the namer)."""
    rows = []
    width = 0
    for index, record in enumerate(records):
        cells = _record_cells(record)
        for key in cells:
            width = max(width, int(key[1:]) + 1)
        rows.append({"_record": str(index), **cells})
    table = RelationalTable()
    table.columns = [f"L{position}" for position in range(width)]
    table.rows = rows
    return table


def page_entry(
    url: str,
    records: list[dict[str, Any]],
    detail_pages: Sequence[Page] | None = None,
) -> dict[str, Any]:
    """One store-ready wire page entry (the single ingest currency).

    Args:
        url: the list page's URL.
        records: wire record dicts (from
            :func:`repro.serve.schema.segmentation_records` or
            :func:`~repro.serve.schema.wrapped_row_records`).
        detail_pages: the page's detail pages; when given, columns are
            named through the relational layer and the names ride on
            the entry as ``{"L0": "Owner", ...}``.
    """
    entry: dict[str, Any] = {
        "url": url,
        "records": list(records),
        "record_count": len(records),
        "names": {},
    }
    if detail_pages and records:
        table = _page_table(records)
        fields = detail_field_pairs(list(detail_pages))
        entry["names"] = name_columns(table, fields)
    return entry


def site_fingerprint(method: str, entries: Sequence[dict[str, Any]]) -> str:
    """Content identity of one site's wire pages (idempotence key)."""
    return fingerprint(
        "store-site",
        method,
        [(entry["url"], entry["records"]) for entry in entries],
    )


def ingest_pages(
    store: RelationalStore,
    site_id: str,
    method: str,
    entries: Sequence[dict[str, Any]],
    source: str = "batch",
    obs: Observability | None = None,
) -> str:
    """Upsert one site's wire pages; returns the outcome.

    Returns:
        ``"inserted"`` (new site), ``"replaced"`` (content changed),
        or ``"unchanged"`` (fingerprint match — a no-op).

    Raises:
        StoreError: the database refused (corrupt, locked, closed).
    """
    obs = obs if obs is not None else store.obs
    if not site_id or not entries:
        raise StoreError(f"nothing to ingest for site {site_id!r}")
    digest = site_fingerprint(method, entries)
    started = time.perf_counter()
    with obs.span("store.ingest", site=site_id, method=method):
        previous = store.site_fingerprint(site_id, method)
        if previous == digest:
            obs.counter("store.ingest.unchanged").inc()
            return "unchanged"

        # Union the site's columns across pages: first page to name a
        # column wins (page order is deterministic), positions come
        # from the column key itself.
        names: dict[str, str] = {}
        keys: set[str] = set()
        row_count = 0
        cell_rows: list[tuple[str, str, str, int, str, str]] = []
        for entry in entries:
            for key, name in (entry.get("names") or {}).items():
                names.setdefault(key, name)
            for index, record in enumerate(entry["records"]):
                row_count += 1
                for key, value in _record_cells(record).items():
                    keys.add(key)
                    cell_rows.append(
                        (site_id, method, entry["url"], index, key, value)
                    )

        columns = [
            (key, int(key[1:]), names.get(key))
            for key in sorted(keys, key=lambda k: int(k[1:]))
        ]
        catalog = Catalog(store)
        with store.transaction() as conn:
            conn.execute(
                "DELETE FROM cells WHERE site_id = ? AND method = ?",
                (site_id, method),
            )
            catalog.register_columns(site_id, method, columns)
            conn.executemany(
                "INSERT INTO cells (site_id, method, page_url,"
                " record_index, column_key, value) VALUES (?, ?, ?, ?, ?, ?)",
                cell_rows,
            )
            conn.execute(
                "INSERT OR REPLACE INTO sites (site_id, method, fingerprint,"
                " page_count, record_count, source, ingested_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    site_id, method, digest, len(entries), row_count,
                    source, now(),
                ),
            )
        obs.counter("store.ingest.sites").inc()
        obs.counter("store.ingest.rows").inc(row_count)
        obs.histogram("store.ingest.seconds").observe(
            time.perf_counter() - started
        )
        if previous is not None:
            obs.counter("store.ingest.replaced").inc()
            return "replaced"
        return "inserted"


def ingest_batch(
    store: RelationalStore,
    batch: Any,
    method: str,
    obs: Observability | None = None,
) -> IngestReport:
    """Ingest a finished :class:`~repro.runner.engine.BatchResult`.

    Only ``ok`` results whose pages carry wire entries (the runner
    collects them under ``collect_wire=True`` / ``--store``) are
    ingested; everything else books ``store.ingest.skipped``.
    """
    obs = obs if obs is not None else store.obs
    report = IngestReport()
    for result in sorted(batch.results, key=lambda r: r.task_id):
        entries = [
            page.wire for page in result.pages if page.wire is not None
        ]
        if result.status not in INGESTIBLE_STATUSES or not entries:
            obs.counter("store.ingest.skipped").inc()
            report.skipped += 1
            continue
        site_id = result.task_id.split(":", 1)[0]
        outcome = ingest_pages(
            store, site_id, method, entries, source="batch", obs=obs
        )
        if outcome == "unchanged":
            report.unchanged += 1
            continue
        report.sites += 1
        report.rows += sum(len(entry["records"]) for entry in entries)
        if outcome == "replaced":
            report.replaced += 1
    return report

"""The sqlite-backed relational store: schema, connection, errors.

:class:`RelationalStore` owns one sqlite database holding every
segmented site the pipeline has materialized — the "reconstructed
database" of the paper made durable and queryable.  Five tables::

    sites        one row per (site_id, method): the content
                 fingerprint ingestion idempotence keys on, plus
                 page/record counts and the ingest source
    attributes   the cross-site attribute catalog: one row per
                 canonical attribute text (see repro.store.catalog)
    site_columns one row per column of a site's induced schema,
                 pointing at its shared attribute id
    cells        the data: one row per (page, record, column) value
    meta         schema-version bookkeeping

Design constraints the class enforces:

* **stdlib only** — plain :mod:`sqlite3`, WAL journaling so the serve
  path's concurrent readers never block the writer, and a busy
  timeout so two processes ingesting into one file queue instead of
  erroring;
* **one failure type** — every :class:`sqlite3.Error` (corrupt file,
  locked database, full disk) surfaces as :class:`StoreError`, a
  :class:`~repro.core.exceptions.ReproError`, so callers degrade with
  a message instead of a traceback;
* **thread safety** — one connection guarded by an RLock; the serve
  front end shares a store across worker threads.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.core.exceptions import ReproError
from repro.obs import Observability, current as current_obs

__all__ = ["RelationalStore", "StoreError"]

#: Bump when the DDL below changes shape incompatibly.
SCHEMA_VERSION = 1

_DDL = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS sites (
        site_id TEXT NOT NULL,
        method TEXT NOT NULL,
        fingerprint TEXT NOT NULL,
        page_count INTEGER NOT NULL,
        record_count INTEGER NOT NULL,
        source TEXT NOT NULL,
        ingested_at REAL NOT NULL,
        PRIMARY KEY (site_id, method)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS attributes (
        attribute_id INTEGER PRIMARY KEY,
        canonical TEXT NOT NULL UNIQUE,
        display TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS site_columns (
        site_id TEXT NOT NULL,
        method TEXT NOT NULL,
        column_key TEXT NOT NULL,
        position INTEGER NOT NULL,
        name TEXT,
        attribute_id INTEGER NOT NULL REFERENCES attributes(attribute_id),
        PRIMARY KEY (site_id, method, column_key)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS cells (
        site_id TEXT NOT NULL,
        method TEXT NOT NULL,
        page_url TEXT NOT NULL,
        record_index INTEGER NOT NULL,
        column_key TEXT NOT NULL,
        value TEXT NOT NULL,
        PRIMARY KEY (site_id, method, page_url, record_index, column_key)
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS site_columns_by_attribute
        ON site_columns (attribute_id)
    """,
    """
    CREATE INDEX IF NOT EXISTS cells_by_column
        ON cells (site_id, method, column_key)
    """,
)


class StoreError(ReproError):
    """Any relational-store failure (corrupt file, lock, bad input)."""


class RelationalStore:
    """One sqlite store of segmented sites (see module docstring).

    Args:
        path: database file (created, with parents, when missing).
        obs: observability bundle booking ``store.*`` counters and
            spans (defaults to the installed bundle).
        timeout_s: how long a write waits on another connection's
            lock before failing as :class:`StoreError` (tests use a
            tiny value to assert the locked-file behavior).

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        path: str | Path,
        obs: Observability | None = None,
        timeout_s: float = 5.0,
    ) -> None:
        self.path = Path(path)
        self.obs = obs if obs is not None else current_obs()
        self._lock = threading.RLock()
        self._closed = False
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(
                str(self.path),
                timeout=timeout_s,
                check_same_thread=False,
                isolation_level=None,  # explicit transactions only
            )
        except (sqlite3.Error, OSError) as error:
            raise StoreError(
                f"cannot open store {self.path}: {error}"
            ) from error
        try:
            with self._lock:
                # WAL lets the serve path's readers run beside the
                # writer; NORMAL sync is durable enough for a cache of
                # reproducible ingests.  Both are best-effort (some
                # filesystems refuse WAL) — the schema is not.
                try:
                    self._conn.execute("PRAGMA journal_mode=WAL")
                    self._conn.execute("PRAGMA synchronous=NORMAL")
                except sqlite3.Error:
                    pass
                self._conn.execute("BEGIN IMMEDIATE")
                for statement in _DDL:
                    self._conn.execute(statement)
                self._conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
                self._conn.execute("COMMIT")
        except sqlite3.Error as error:
            self._conn.close()
            raise StoreError(
                f"{self.path} is not a usable store database: {error}"
            ) from error

    # -- plumbing ------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

    def __enter__(self) -> "RelationalStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def execute(
        self, sql: str, params: tuple[Any, ...] = ()
    ) -> list[tuple[Any, ...]]:
        """Run one statement, returning all rows; errors as StoreError."""
        with self._lock:
            if self._closed:
                raise StoreError(f"store {self.path} is closed")
            try:
                return self._conn.execute(sql, params).fetchall()
            except sqlite3.Error as error:
                raise StoreError(f"store {self.path}: {error}") from error

    @contextmanager
    def transaction(self) -> Iterator[sqlite3.Connection]:
        """One exclusive write transaction (ingest uses exactly one).

        Raises:
            StoreError: on any sqlite failure, after rolling back.
        """
        with self._lock:
            if self._closed:
                raise StoreError(f"store {self.path} is closed")
            try:
                self._conn.execute("BEGIN IMMEDIATE")
            except sqlite3.Error as error:
                raise StoreError(f"store {self.path}: {error}") from error
            try:
                yield self._conn
            except sqlite3.Error as error:
                self._conn.execute("ROLLBACK")
                raise StoreError(f"store {self.path}: {error}") from error
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            else:
                self._conn.execute("COMMIT")

    # -- removal -------------------------------------------------------------

    def remove_site(
        self, site_id: str, method: str | None = None
    ) -> dict[str, int]:
        """Drop one site's rows — cascading, in one transaction.

        Deletes the site's ``cells``, ``site_columns`` and ``sites``
        rows (for one ``method``, or every method when None), then
        recounts the attribute catalog: attributes no longer
        referenced by any surviving column are pruned, so the catalog
        never advertises labels whose every source is gone.

        Removing a site that was never ingested is a no-op, not an
        error — re-ingest drivers call this for every stale bundle
        without checking first.  Returns the per-table delete counts
        (``sites`` / ``columns`` / ``cells`` / ``attributes``), also
        booked as ``store.remove.*`` counters.

        Raises:
            StoreError: on any sqlite failure (rolled back).
        """
        where = "site_id = ?"
        params: tuple[Any, ...] = (site_id,)
        if method is not None:
            where += " AND method = ?"
            params = (site_id, method)
        with self.obs.span("store.remove", site=site_id) as span:
            with self.transaction() as conn:
                cells = conn.execute(
                    f"DELETE FROM cells WHERE {where}", params
                ).rowcount
                columns = conn.execute(
                    f"DELETE FROM site_columns WHERE {where}", params
                ).rowcount
                sites = conn.execute(
                    f"DELETE FROM sites WHERE {where}", params
                ).rowcount
                attributes = conn.execute(
                    "DELETE FROM attributes WHERE attribute_id NOT IN"
                    " (SELECT DISTINCT attribute_id FROM site_columns)"
                ).rowcount
            removed = {
                "sites": sites,
                "columns": columns,
                "cells": cells,
                "attributes": attributes,
            }
            span.attributes.update(removed)
        for name, count in removed.items():
            if count:
                self.obs.counter(f"store.remove.{name}").inc(count)
        return removed

    # -- facts ---------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Row counts per table — what idempotence tests assert on."""
        return {
            table: self.execute(f"SELECT COUNT(*) FROM {table}")[0][0]
            for table in ("sites", "attributes", "site_columns", "cells")
        }

    def site_fingerprint(self, site_id: str, method: str) -> str | None:
        rows = self.execute(
            "SELECT fingerprint FROM sites WHERE site_id = ? AND method = ?",
            (site_id, method),
        )
        return rows[0][0] if rows else None

    def sites(self) -> list[dict[str, Any]]:
        """Every ingested site table, newest first."""
        rows = self.execute(
            "SELECT site_id, method, fingerprint, page_count, record_count,"
            " source, ingested_at FROM sites ORDER BY ingested_at DESC,"
            " site_id, method"
        )
        keys = (
            "site_id", "method", "fingerprint", "page_count",
            "record_count", "source", "ingested_at",
        )
        return [dict(zip(keys, row)) for row in rows]


def now() -> float:
    """The ingest timestamp source (separable for tests)."""
    return time.time()

"""Column-keyword queries over the relational store.

Following *Answering Table Queries on the Web using Column Keywords*
(see PAPERS.md), a query is just a set of column keywords — ``"name,
charge, bail"`` — and the answer is (a) the ingested site tables
**ranked** by how well their schemas cover those keywords and (b) the
matching columns' rows, **provenance-tagged** back to the exact site,
page and record each value was segmented from.

Ranking is deterministic: a table's score is the mean match strength
of its best column per keyword (exact canonical match 1.0, word
containment 0.5 — :func:`repro.store.catalog.match_strength`), ties
broken by more matched keywords, more records, then ``site_id`` /
``method`` sort order.  Within a table, a keyword binds to its
best-matching column, ties to the leftmost column.

Exposed three ways, all answering from this one function: the library
call (:func:`query_store`), ``repro query``, and ``GET /query`` on
the serve front end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs import Observability
from repro.store.catalog import Catalog, canonical_label
from repro.store.db import RelationalStore

__all__ = ["QueryResult", "TableHit", "parse_keywords", "query_store"]


def parse_keywords(raw: str | list[str]) -> list[str]:
    """Split ``"name, charge, bail"`` (or argv words) into keywords."""
    if isinstance(raw, str):
        raw = raw.split(",")
    keywords: list[str] = []
    for chunk in raw:
        for part in str(chunk).split(","):
            part = part.strip()
            if part and canonical_label(part):
                keywords.append(part)
    return keywords


@dataclass
class TableHit:
    """One site table's match against the query."""

    site_id: str
    method: str
    score: float
    record_count: int
    #: keyword -> {"column": "L1", "attribute": "Owner", "strength": 1.0}
    columns: dict[str, dict[str, Any]] = field(default_factory=dict)
    rows: list[dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "site": self.site_id,
            "method": self.method,
            "score": round(self.score, 4),
            "record_count": self.record_count,
            "matched": len(self.columns),
            "columns": self.columns,
        }


@dataclass
class QueryResult:
    """The ranked answer to one column-keyword query."""

    keywords: list[str]
    tables: list[TableHit] = field(default_factory=list)

    @property
    def rows(self) -> list[dict[str, Any]]:
        """Provenance-tagged rows, unioned in table-rank order."""
        unioned: list[dict[str, Any]] = []
        for hit in self.tables:
            unioned.extend(hit.rows)
        return unioned

    def as_dict(self) -> dict[str, Any]:
        """The wire shape shared verbatim by the CLI and ``/query``."""
        rows = self.rows
        return {
            "keywords": self.keywords,
            "tables": [hit.as_dict() for hit in self.tables],
            "rows": rows,
            "row_count": len(rows),
        }


def _ranked_hits(
    store: RelationalStore,
    keywords: list[str],
    method: str | None,
) -> list[TableHit]:
    catalog = Catalog(store)
    matches = {keyword: catalog.match_keyword(keyword) for keyword in keywords}
    attribute_ids = sorted(
        {attr for per_kw in matches.values() for attr in per_kw}
    )
    if not attribute_ids:
        return []
    placeholders = ",".join("?" for _ in attribute_ids)
    sql = (
        "SELECT c.site_id, c.method, c.column_key, c.attribute_id,"
        " a.display FROM site_columns c"
        " JOIN attributes a ON a.attribute_id = c.attribute_id"
        f" WHERE c.attribute_id IN ({placeholders})"
    )
    params: list[Any] = list(attribute_ids)
    if method is not None:
        sql += " AND c.method = ?"
        params.append(method)
    sql += " ORDER BY c.site_id, c.method, c.position"

    by_site: dict[tuple[str, str], dict[str, dict[str, Any]]] = {}
    for site_id, site_method, column_key, attribute_id, display in (
        store.execute(sql, tuple(params))
    ):
        bindings = by_site.setdefault((site_id, site_method), {})
        for keyword in keywords:
            strength = matches[keyword].get(attribute_id, 0.0)
            if strength <= 0.0:
                continue
            current = bindings.get(keyword)
            # Best strength wins; ties keep the leftmost column (rows
            # arrive in position order).
            if current is None or strength > current["strength"]:
                bindings[keyword] = {
                    "column": column_key,
                    "attribute": display,
                    "strength": strength,
                }

    record_counts = dict(
        ((site_id, site_method), count)
        for site_id, site_method, count in store.execute(
            "SELECT site_id, method, record_count FROM sites"
        )
    )
    hits = [
        TableHit(
            site_id=site_id,
            method=site_method,
            score=sum(b["strength"] for b in bindings.values())
            / len(keywords),
            record_count=record_counts.get((site_id, site_method), 0),
            columns=bindings,
        )
        for (site_id, site_method), bindings in by_site.items()
    ]
    hits.sort(
        key=lambda hit: (
            -hit.score,
            -len(hit.columns),
            -hit.record_count,
            hit.site_id,
            hit.method,
        )
    )
    return hits


def _fill_rows(
    store: RelationalStore, hit: TableHit, limit: int
) -> None:
    """Attach up to ``limit`` provenance-tagged rows to one hit."""
    if limit <= 0 or not hit.columns:
        return
    column_keys = sorted({b["column"] for b in hit.columns.values()})
    placeholders = ",".join("?" for _ in column_keys)
    rows: dict[tuple[str, int], dict[str, str]] = {}
    for page_url, record_index, column_key, value in store.execute(
        "SELECT page_url, record_index, column_key, value FROM cells"
        " WHERE site_id = ? AND method = ?"
        f" AND column_key IN ({placeholders})"
        " ORDER BY page_url, record_index",
        (hit.site_id, hit.method, *column_keys),
    ):
        rows.setdefault((page_url, record_index), {})[column_key] = value
    for (page_url, record_index), cells in rows.items():
        if len(hit.rows) >= limit:
            break
        values = {
            keyword: cells[binding["column"]]
            for keyword, binding in hit.columns.items()
            if binding["column"] in cells
        }
        if not values:
            continue
        hit.rows.append(
            {
                "site": hit.site_id,
                "method": hit.method,
                "page": page_url,
                "record": record_index,
                "values": values,
            }
        )


def query_store(
    store: RelationalStore,
    keywords: list[str] | str,
    limit: int = 20,
    method: str | None = None,
    obs: Observability | None = None,
) -> QueryResult:
    """Answer one column-keyword query (see module docstring).

    Args:
        store: the ingested store.
        keywords: column keywords (list, or one comma-joined string).
        limit: maximum unioned rows returned (spread over the ranked
            tables, best table first).
        method: restrict to one segmentation method's tables.

    Raises:
        ValueError: no usable keywords (transports map this to 400).
        StoreError: the database refused.
    """
    obs = obs if obs is not None else store.obs
    parsed = parse_keywords(keywords)
    if not parsed:
        raise ValueError("query needs at least one column keyword")
    started = time.perf_counter()
    with obs.span("store.query", keywords=len(parsed)):
        obs.counter("store.query.count").inc()
        hits = _ranked_hits(store, parsed, method)
        remaining = max(limit, 0)
        for hit in hits:
            _fill_rows(store, hit, remaining)
            remaining -= len(hit.rows)
    obs.histogram("store.query.seconds").observe(
        time.perf_counter() - started
    )
    return QueryResult(keywords=parsed, tables=hits)

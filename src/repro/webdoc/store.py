"""Saving page samples to disk and loading them back.

A *sample directory* is the on-disk interchange format for the
pipeline's input: the HTML files plus a ``sample.json`` manifest
mapping each list page to its detail pages in link (record) order.
It serves two purposes:

* exporting a simulated site so its pages can be inspected, archived
  or fed to other tools (:func:`save_sample`);
* running the pipeline on *real* saved pages: mirror a site's list
  and detail pages into a directory, write the manifest, and
  :func:`load_sample` hands the pipeline exactly what
  ``segment_site`` wants.

Manifest schema (``sample.json``)::

    {
      "name": "mysite",
      "pages": [
        {"list": "list0.html", "details": ["d0.html", "d1.html", ...]},
        {"list": "list1.html", "details": [...]}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.exceptions import ReproError
from repro.webdoc.page import Page

__all__ = ["PageSample", "load_sample", "save_sample"]

MANIFEST_NAME = "sample.json"


class SampleError(ReproError):
    """A sample directory is missing files or malformed."""


@dataclass
class PageSample:
    """A loaded page sample, ready for the pipeline.

    Attributes:
        name: sample name from the manifest.
        list_pages: the list pages, manifest order.
        detail_pages_per_list: each list page's detail pages in link
            (record) order.
    """

    name: str
    list_pages: list[Page]
    detail_pages_per_list: list[list[Page]]


def save_sample(
    directory: str | Path,
    name: str,
    list_pages: list[Page],
    detail_pages_per_list: list[list[Page]],
) -> Path:
    """Write pages + manifest into ``directory``; returns the manifest path.

    Page URLs become file names (they must therefore be relative,
    slash-free names — the simulator's URLs already are).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    manifest: dict = {"name": name, "pages": []}
    for list_page, details in zip(list_pages, detail_pages_per_list):
        _write_page(directory, list_page)
        for page in details:
            _write_page(directory, page)
        manifest["pages"].append(
            {
                "list": list_page.url,
                "details": [page.url for page in details],
            }
        )
    manifest_path = directory / MANIFEST_NAME
    manifest_path.write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return manifest_path


def _write_page(directory: Path, page: Page) -> None:
    file_name = Path(page.url).name
    if not file_name:
        raise SampleError(f"page url {page.url!r} has no usable file name")
    (directory / file_name).write_text(page.html, encoding="utf-8")


def load_sample(directory: str | Path) -> PageSample:
    """Load a sample directory written by :func:`save_sample` (or by
    hand, for real saved pages).

    Raises:
        SampleError: missing manifest, missing files, or bad schema.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SampleError(f"no {MANIFEST_NAME} in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise SampleError(f"malformed {MANIFEST_NAME}: {error}") from error

    entries = manifest.get("pages")
    if not isinstance(entries, list) or not entries:
        raise SampleError('manifest needs a non-empty "pages" list')

    def read_page(file_name: str, kind: str) -> Page:
        path = directory / file_name
        if not path.is_file():
            raise SampleError(f"manifest references missing file {file_name!r}")
        return Page(url=file_name, html=path.read_text(encoding="utf-8"), kind=kind)

    list_pages: list[Page] = []
    details: list[list[Page]] = []
    for entry in entries:
        if "list" not in entry or "details" not in entry:
            raise SampleError('each pages entry needs "list" and "details"')
        list_pages.append(read_page(entry["list"], "list"))
        details.append([read_page(name, "detail") for name in entry["details"]])

    return PageSample(
        name=str(manifest.get("name", directory.name)),
        list_pages=list_pages,
        detail_pages_per_list=details,
    )

"""Site-scoped token interning: token texts become small int ids.

The extract-vs-detail-page matcher compares token *texts* millions of
times per site (every extract against every detail page).  String
comparison pays for length; comparing interned ids pays one pointer
check.  A :class:`TokenTable` maps each distinct normalized token text
to a dense int id, so every downstream comparison — candidate lookup,
occurrence verification — is int equality over id lists, and a whole
candidate window can be checked with one C-level list-slice compare.

Scope and identity rules:

* A table is **site-scoped**: one table per pipeline run (or per
  observation build) so ids are consistent across that site's list
  pages, detail pages and extracts.  Ids from different tables are
  meaningless to compare.
* Ids are assigned in first-seen order; the mapping is append-only.
  Interning the same normalized text twice returns the same id, so
  ``intern(a) == intern(b)  iff  normalize(a) == normalize(b)`` — the
  exact equality the string matcher used, which is what keeps the
  optimized matcher byte-identical to the string implementation.
* Normalization is the matcher's (:class:`~repro.extraction.matching.
  MatchOptions.key`): identity by default, ``casefold`` under the
  ablation option.  The normalizer is fixed at construction; a table
  must not be shared between differently-configured matchers.

The table also caches each page's *reduced view* (its non-separator
tokens, as parallel token/id lists) keyed by the page object, because
every matcher over a site reads the same reduction of the same detail
pages.  The cache holds strong references and lives exactly as long as
the table — site-scoped, per the rules above.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.tokens.tokenizer import Token
    from repro.webdoc.page import Page

__all__ = ["TokenTable"]


class TokenTable:
    """Dense int ids for normalized token texts, plus page reductions.

    Args:
        normalize: text normalizer applied before interning (the
            matcher's ``MatchOptions.key``); ``None`` means identity.
        allowed_punct: the punctuation set defining separators for the
            cached page reductions; must agree with the tokenizer's
            (defaults to the tokenizer's
            :data:`~repro.tokens.tokenizer.DEFAULT_ALLOWED_PUNCT`).
    """

    __slots__ = ("_ids", "_normalize", "_allowed_punct", "_reduced_cache")

    def __init__(
        self,
        normalize: Callable[[str], str] | None = None,
        allowed_punct: frozenset[str] | None = None,
    ) -> None:
        if allowed_punct is None:
            # Deferred: webdoc sits below repro.tokens in the import
            # graph, so the tokenizer cannot be imported at module load.
            from repro.tokens.tokenizer import DEFAULT_ALLOWED_PUNCT

            allowed_punct = DEFAULT_ALLOWED_PUNCT
        self._ids: dict[str, int] = {}
        self._normalize = normalize
        self._allowed_punct = allowed_punct
        # id(page) -> (reduced tokens, their ids); see class docstring
        # for the lifetime contract.  The page object itself is kept in
        # the value so the id() key cannot be recycled underneath us.
        self._reduced_cache: dict[int, tuple["Page", list[Token], list[int]]] = {}

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def allowed_punct(self) -> frozenset[str]:
        """The separator-defining punctuation set of cached reductions."""
        return self._allowed_punct

    def intern(self, text: str) -> int:
        """The id of ``text`` (normalized), assigning one if new."""
        if self._normalize is not None:
            text = self._normalize(text)
        table = self._ids
        found = table.get(text)
        if found is None:
            found = len(table)
            table[text] = found
        return found

    def intern_texts(self, texts: tuple[str, ...]) -> list[int]:
        """Ids for a token-text sequence (an extract's texts)."""
        return [self.intern(text) for text in texts]

    def reduced(self, page: "Page") -> tuple[list[Token], list[int]]:
        """The page's non-separator tokens and their ids (cached).

        Returns parallel lists: ``tokens[k]`` is the page's k-th
        non-separator token and ``ids[k]`` its interned id.
        """
        key = id(page)
        hit = self._reduced_cache.get(key)
        if hit is not None and hit[0] is page:
            return hit[1], hit[2]
        from repro.tokens.tokenizer import is_separator

        allowed = self._allowed_punct
        tokens = [
            token
            for token in page.tokens()
            if not is_separator(token, allowed)
        ]
        intern = self.intern
        ids = [intern(token.text) for token in tokens]
        self._reduced_cache[key] = (page, tokens, ids)
        return tokens, ids

"""HTML escape-sequence (entity) decoding.

The paper's tokenizer requires that "HTML escape sequences are converted
to ASCII text" (Section 3.1) before syntactic types are assigned.  This
module implements a self-contained decoder for named character
references (``&amp;``), decimal references (``&#38;``) and hexadecimal
references (``&#x26;``).

The decoder is forgiving, mirroring browser behaviour on the kind of
2004-era HTML the paper studied:

* unknown named references are left verbatim (``&bogus;`` stays
  ``&bogus;``),
* the trailing semicolon is optional for the handful of legacy names
  browsers accept without it (``&amp`` decodes to ``&``),
* numeric references outside the Unicode range are left verbatim.
"""

from __future__ import annotations

import re

__all__ = ["decode_entities", "encode_entities", "NAMED_ENTITIES"]

#: Named character references understood by the decoder.  This is the
#: set observed in the wild on table-bearing pages plus the full
#: Latin-1 block; it is intentionally small and auditable rather than
#: the complete HTML5 table.
NAMED_ENTITIES: dict[str, str] = {
    # The big five.
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    # Whitespace and dashes.
    "nbsp": " ",
    "ensp": " ",
    "emsp": " ",
    "thinsp": " ",
    "ndash": "–",
    "mdash": "—",
    "shy": "",
    # Quotes.
    "lsquo": "‘",
    "rsquo": "’",
    "sbquo": "‚",
    "ldquo": "“",
    "rdquo": "”",
    "bdquo": "„",
    "laquo": "«",
    "raquo": "»",
    # Symbols common in commercial listings.
    "cent": "¢",
    "pound": "£",
    "curren": "¤",
    "yen": "¥",
    "euro": "€",
    "copy": "©",
    "reg": "®",
    "trade": "™",
    "sect": "§",
    "para": "¶",
    "middot": "·",
    "bull": "•",
    "hellip": "…",
    "dagger": "†",
    "Dagger": "‡",
    "permil": "‰",
    "prime": "′",
    "Prime": "″",
    "frasl": "⁄",
    "deg": "°",
    "plusmn": "±",
    "sup1": "¹",
    "sup2": "²",
    "sup3": "³",
    "frac14": "¼",
    "frac12": "½",
    "frac34": "¾",
    "times": "×",
    "divide": "÷",
    "micro": "µ",
    "not": "¬",
    "iexcl": "¡",
    "iquest": "¿",
    "ordf": "ª",
    "ordm": "º",
    "brvbar": "¦",
    "uml": "¨",
    "acute": "´",
    "cedil": "¸",
    "macr": "¯",
    # Latin-1 letters (both cases where they exist).
    "Agrave": "À", "Aacute": "Á", "Acirc": "Â",
    "Atilde": "Ã", "Auml": "Ä", "Aring": "Å",
    "AElig": "Æ", "Ccedil": "Ç", "Egrave": "È",
    "Eacute": "É", "Ecirc": "Ê", "Euml": "Ë",
    "Igrave": "Ì", "Iacute": "Í", "Icirc": "Î",
    "Iuml": "Ï", "ETH": "Ð", "Ntilde": "Ñ",
    "Ograve": "Ò", "Oacute": "Ó", "Ocirc": "Ô",
    "Otilde": "Õ", "Ouml": "Ö", "Oslash": "Ø",
    "Ugrave": "Ù", "Uacute": "Ú", "Ucirc": "Û",
    "Uuml": "Ü", "Yacute": "Ý", "THORN": "Þ",
    "szlig": "ß", "agrave": "à", "aacute": "á",
    "acirc": "â", "atilde": "ã", "auml": "ä",
    "aring": "å", "aelig": "æ", "ccedil": "ç",
    "egrave": "è", "eacute": "é", "ecirc": "ê",
    "euml": "ë", "igrave": "ì", "iacute": "í",
    "icirc": "î", "iuml": "ï", "eth": "ð",
    "ntilde": "ñ", "ograve": "ò", "oacute": "ó",
    "ocirc": "ô", "otilde": "õ", "ouml": "ö",
    "oslash": "ø", "ugrave": "ù", "uacute": "ú",
    "ucirc": "û", "uuml": "ü", "yacute": "ý",
    "thorn": "þ", "yuml": "ÿ",
}

#: Legacy names browsers accept without a trailing semicolon.
_SEMICOLON_OPTIONAL = frozenset(
    {"amp", "lt", "gt", "quot", "nbsp", "copy", "reg"}
)

_ENTITY_RE = re.compile(
    r"&(?:"
    r"#[xX](?P<hex>[0-9a-fA-F]{1,6});"
    r"|#(?P<dec>[0-9]{1,7});"
    r"|(?P<named>[a-zA-Z][a-zA-Z0-9]{1,31});"
    r"|(?P<bare>" + "|".join(sorted(_SEMICOLON_OPTIONAL, key=len, reverse=True)) + r")"
    r")"
)

# Code points that are never valid as character references.
_INVALID_RANGES = (
    (0xD800, 0xDFFF),  # surrogates
    (0x110000, 0x7FFFFFFF),  # beyond Unicode
)


def _codepoint_ok(value: int) -> bool:
    return not any(lo <= value <= hi for lo, hi in _INVALID_RANGES)


def _replace(match: re.Match[str]) -> str:
    hex_digits = match.group("hex")
    if hex_digits is not None:
        value = int(hex_digits, 16)
        return chr(value) if _codepoint_ok(value) else match.group(0)
    dec_digits = match.group("dec")
    if dec_digits is not None:
        value = int(dec_digits)
        return chr(value) if _codepoint_ok(value) else match.group(0)
    name = match.group("named")
    if name is not None:
        replacement = NAMED_ENTITIES.get(name)
        return replacement if replacement is not None else match.group(0)
    # Bare legacy reference without the semicolon.
    return NAMED_ENTITIES[match.group("bare")]


def decode_entities(text: str) -> str:
    """Decode HTML character references in ``text``.

    >>> decode_entities("Barnes &amp; Noble")
    'Barnes & Noble'
    >>> decode_entities("&#65;&#x42;")
    'AB'
    >>> decode_entities("&unknown;")
    '&unknown;'
    """
    if "&" not in text:
        return text
    return _ENTITY_RE.sub(_replace, text)


_ENCODE_MAP = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}
_ENCODE_RE = re.compile(r"[&<>\"]")


def encode_entities(text: str) -> str:
    """Escape the characters that are unsafe in HTML text content.

    Used by the site generator so that synthetic pages round-trip
    through the decoder.

    >>> encode_entities('Barnes & Noble "books" <new>')
    'Barnes &amp; Noble &quot;books&quot; &lt;new&gt;'
    """
    return _ENCODE_RE.sub(lambda m: _ENCODE_MAP[m.group(0)], text)

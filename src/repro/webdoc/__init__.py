"""HTML substrate: entity decoding, lexing, interning and the Page abstraction."""

from repro.webdoc.entities import decode_entities, encode_entities
from repro.webdoc.html import EventKind, HtmlEvent, lex_html, strip_tags
from repro.webdoc.interning import TokenTable
from repro.webdoc.page import Page
from repro.webdoc.store import PageSample, load_sample, save_sample

__all__ = [
    "EventKind",
    "HtmlEvent",
    "Page",
    "PageSample",
    "TokenTable",
    "decode_entities",
    "encode_entities",
    "lex_html",
    "load_sample",
    "save_sample",
    "strip_tags",
]

"""The :class:`Page` abstraction: a URL plus its HTML payload.

Pages are the unit of input to the whole pipeline: the template finder
takes several list :class:`Page` objects, the observation builder takes
one list page plus its detail pages, and the simulated crawler produces
them.  Token streams are computed lazily and cached, since every stage
of the pipeline re-reads them; the text-only view is cached separately
because several stages (matching, drift scoring) filter the same
stream per page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.tokens.tokenizer import Token

__all__ = ["Page"]


@dataclass
class Page:
    """One fetched (or generated) web page.

    Attributes:
        url: the page's address.  Only used as an identifier; the
            pipeline never fetches anything over a network.
        html: the raw HTML payload.
        kind: optional role annotation (``"list"`` / ``"detail"`` /
            ``"other"``); filled in by the crawler's classifier or by
            the site generator.  Purely informational.
    """

    url: str
    html: str
    kind: str | None = None
    _tokens: "list[Token] | None" = field(
        default=None, repr=False, compare=False
    )
    _text_tokens: "list[Token] | None" = field(
        default=None, repr=False, compare=False
    )
    _token_text_set: "frozenset[str] | None" = field(
        default=None, repr=False, compare=False
    )

    def tokens(self) -> "list[Token]":
        """Tokenize the page (cached).

        Returns the full token stream including HTML-tag tokens, as
        defined in paper Section 3.1.
        """
        if self._tokens is None:
            from repro.tokens.tokenizer import tokenize_html

            self._tokens = tokenize_html(self.html)
        return self._tokens

    def text_tokens(self) -> "list[Token]":
        """Only the visible-text tokens of the page (no tags; cached)."""
        if self._text_tokens is None:
            self._text_tokens = [
                token for token in self.tokens() if not token.is_html
            ]
        return self._text_tokens

    def token_text_set(self) -> "frozenset[str]":
        """The set of distinct token texts on the page (cached).

        Pairwise page-similarity scoring intersects these sets for
        every page pair; caching the set here keeps that O(n²) loop
        from re-tokenizing (and re-building the set for) each page on
        every call.
        """
        if self._token_text_set is None:
            self._token_text_set = frozenset(
                token.text for token in self.tokens()
            )
        return self._token_text_set

    def prime_tokens(self, tokens: "list[Token]") -> None:
        """Install an externally computed token stream.

        Used by the batch runner's ``tokenize`` stage to hand a page
        its cached stream; resets the derived views so they are
        refiltered from the new stream.
        """
        self._tokens = tokens
        self._text_tokens = None
        self._token_text_set = None

    def invalidate_cache(self) -> None:
        """Drop the cached token streams (after mutating ``html``)."""
        self._tokens = None
        self._text_tokens = None
        self._token_text_set = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        role = f" [{self.kind}]" if self.kind else ""
        return f"Page({self.url}{role}, {len(self.html)} bytes)"

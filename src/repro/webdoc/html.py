"""A small, forgiving HTML lexer.

The segmentation algorithms never need a DOM — the paper explicitly
relies on the *content* of pages rather than their layout — but they do
need to distinguish markup from text and to know which tag produced a
given markup token.  This module lexes an HTML document into a flat
sequence of :class:`HtmlEvent` objects: tags, text runs, comments,
declarations.

Design notes
------------
* The lexer is tolerant of the malformations common on 2004-era pages:
  unquoted attribute values, bare ``&``, unclosed tags at EOF, stray
  ``<`` in text.
* ``<script>`` and ``<style>`` bodies are treated as raw text and
  *skipped* (emitted as :data:`EventKind.RAW`), since their contents are
  code, not record data.
* Text is **not** entity-decoded here; that happens in the tokenizer so
  that offsets into the raw document stay meaningful.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.core.exceptions import HtmlParseError

__all__ = ["EventKind", "HtmlEvent", "lex_html", "strip_tags"]


class EventKind(enum.Enum):
    """What a lexed HTML event represents."""

    TAG_OPEN = "tag_open"  #: ``<a href=...>`` (also self-closing ``<br/>``)
    TAG_CLOSE = "tag_close"  #: ``</a>``
    TEXT = "text"  #: a run of character data
    COMMENT = "comment"  #: ``<!-- ... -->``
    DECLARATION = "declaration"  #: ``<!DOCTYPE ...>``
    RAW = "raw"  #: script/style body


@dataclass(frozen=True, slots=True)
class HtmlEvent:
    """One lexical event in an HTML document.

    Attributes:
        kind: what the event represents.
        data: tag name (lowercased) for tags; verbatim text otherwise.
        attrs: attribute mapping for ``TAG_OPEN`` events.  Attribute
            names are lowercased; valueless attributes map to ``""``.
        start: offset of the event's first character in the document.
        end: offset one past the event's last character.
        self_closing: ``True`` for ``<br/>``-style tags.
    """

    kind: EventKind
    data: str
    start: int
    end: int
    attrs: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False

    def raw_tag(self) -> str:
        """Canonical single-token spelling of a tag event (``<a>``/``</a>``)."""
        if self.kind is EventKind.TAG_OPEN:
            return f"<{self.data}>"
        if self.kind is EventKind.TAG_CLOSE:
            return f"</{self.data}>"
        raise ValueError(f"not a tag event: {self.kind}")


_TAG_NAME_RE = re.compile(r"[a-zA-Z][a-zA-Z0-9:_.-]*")
_ATTR_RE = re.compile(
    r"""\s*([a-zA-Z_:][a-zA-Z0-9:._-]*)      # name
        (?:\s*=\s*
            (?:"([^"]*)"                      # double-quoted value
              |'([^']*)'                      # single-quoted value
              |([^\s>]*)                      # unquoted value
            )
        )?""",
    re.VERBOSE,
)

#: Elements whose content is raw (not markup) until the matching close tag.
_RAW_TEXT_ELEMENTS = frozenset({"script", "style"})


def lex_html(document: str) -> list[HtmlEvent]:
    """Lex ``document`` into a flat list of :class:`HtmlEvent`.

    Raises:
        HtmlParseError: if ``document`` is not a string.
    """
    if not isinstance(document, str):
        raise HtmlParseError(
            f"expected an HTML string, got {type(document).__name__}"
        )

    events: list[HtmlEvent] = []
    pos = 0
    length = len(document)

    while pos < length:
        lt = document.find("<", pos)
        if lt == -1:
            _emit_text(events, document, pos, length)
            break
        if lt > pos:
            _emit_text(events, document, pos, lt)
        pos = _lex_markup(events, document, lt)

    return events


def _emit_text(events: list[HtmlEvent], document: str, start: int, end: int) -> None:
    text = document[start:end]
    if text:
        events.append(HtmlEvent(EventKind.TEXT, text, start, end))


def _lex_markup(events: list[HtmlEvent], document: str, lt: int) -> int:
    """Lex one markup construct starting at ``lt``; return the next offset."""
    length = len(document)
    if document.startswith("<!--", lt):
        close = document.find("-->", lt + 4)
        end = length if close == -1 else close + 3
        events.append(HtmlEvent(EventKind.COMMENT, document[lt:end], lt, end))
        return end
    if document.startswith("<!", lt) or document.startswith("<?", lt):
        close = document.find(">", lt + 2)
        end = length if close == -1 else close + 1
        events.append(HtmlEvent(EventKind.DECLARATION, document[lt:end], lt, end))
        return end
    if document.startswith("</", lt):
        match = _TAG_NAME_RE.match(document, lt + 2)
        if match is None:
            # "</" followed by junk: treat the "<" as literal text.
            _emit_text(events, document, lt, lt + 1)
            return lt + 1
        name = match.group(0).lower()
        close = document.find(">", match.end())
        end = length if close == -1 else close + 1
        events.append(HtmlEvent(EventKind.TAG_CLOSE, name, lt, end))
        return end

    match = _TAG_NAME_RE.match(document, lt + 1)
    if match is None:
        # A bare "<" in text (e.g. "x < y"): literal text.
        _emit_text(events, document, lt, lt + 1)
        return lt + 1

    name = match.group(0).lower()
    attrs, end, self_closing = _lex_attrs(document, match.end())
    events.append(
        HtmlEvent(EventKind.TAG_OPEN, name, lt, end, attrs, self_closing)
    )
    if name in _RAW_TEXT_ELEMENTS and not self_closing:
        return _lex_raw_body(events, document, end, name)
    return end


def _lex_attrs(document: str, pos: int) -> tuple[dict[str, str], int, bool]:
    """Lex attributes from ``pos`` to the closing ``>`` (or EOF)."""
    attrs: dict[str, str] = {}
    length = len(document)
    self_closing = False
    while pos < length:
        char = document[pos]
        if char == ">":
            return attrs, pos + 1, self_closing
        if char == "/" and document.startswith("/>", pos):
            return attrs, pos + 2, True
        match = _ATTR_RE.match(document, pos)
        if match is None or match.end() == pos:
            pos += 1
            continue
        name = match.group(1).lower()
        value = next(
            (g for g in (match.group(2), match.group(3), match.group(4)) if g is not None),
            "",
        )
        # First occurrence wins, as in browsers.
        attrs.setdefault(name, value)
        pos = match.end()
    return attrs, length, self_closing


def _lex_raw_body(
    events: list[HtmlEvent], document: str, pos: int, name: str
) -> int:
    """Consume a script/style body up to its close tag."""
    close_re = re.compile(rf"</{re.escape(name)}\s*>", re.IGNORECASE)
    match = close_re.search(document, pos)
    if match is None:
        body_end = tag_end = len(document)
    else:
        body_end = match.start()
        tag_end = match.end()
    if body_end > pos:
        events.append(HtmlEvent(EventKind.RAW, document[pos:body_end], pos, body_end))
    if match is not None:
        events.append(HtmlEvent(EventKind.TAG_CLOSE, name, body_end, tag_end))
    return tag_end


def strip_tags(document: str) -> str:
    """Return the visible text of ``document`` (tags removed, text joined).

    Convenience helper used by tests and baselines; the segmentation
    pipeline itself works on token streams, not on this string.
    """
    from repro.webdoc.entities import decode_entities

    pieces = [
        decode_entities(event.data)
        for event in lex_html(document)
        if event.kind is EventKind.TEXT
    ]
    return " ".join(" ".join(pieces).split())

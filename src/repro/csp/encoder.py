"""Encoding record segmentation as a pseudo-boolean CSP (paper Section 4).

Variables: ``x_ij = 1`` iff extract ``E_i`` is assigned to record
``r_j``.  A variable exists only where the observation table permits
it: "If extract E_i was not observed on detail page r_j (r_j not in
D_i), then x_ij = 0" — such variables are simply never created.

Constraint families:

* **uniqueness** (Section 4.1): every extract belongs to exactly one
  record, ``sum_j x_ij = 1``; relaxed form ``<= 1``.
* **consecutiveness** (Section 4.1): only contiguous blocks of extracts
  may share a record.  Encoded per record over its *candidate* extracts
  (those with ``r_j in D_i``): candidates form maximal runs of
  consecutive sequence indices; extracts from different runs are
  mutually exclusive (the gap contains a non-candidate that could never
  join the record), and within a run the paper's triple form
  ``x_ij + x_kj - x_nj <= 1`` (i < n < k) forbids holes.
* **position** (Section 4.2): extracts observed at the same position on
  a detail page compete for that record — exactly one of them is the
  string actually at that position, ``sum x_ij = 1``; relaxed ``<= 1``.
  Generated only for groups of two or more, mirroring the paper's
  example (singleton groups carry no extra information beyond D_i).
* **ordering** (optional, default off): horizontal-table premise of
  Section 3.2 — record order in the text stream equals record order in
  the table, so an earlier extract cannot belong to a later record than
  a later extract: ``x_aj + x_bj' <= 1`` for a < b, j > j'.

The encoder is pure: it reads an
:class:`~repro.extraction.observations.ObservationTable` and produces a
:class:`SegmentationCsp` without touching any solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.exceptions import EmptyProblemError
from repro.csp.constraints import ConstraintSystem, Relation
from repro.extraction.observations import ObservationTable

__all__ = [
    "EncoderConfig",
    "EncodingMemo",
    "SegmentationCsp",
    "encode_segmentation",
]


@dataclass(frozen=True)
class EncoderConfig:
    """Which constraint families to generate, and in which form.

    Attributes:
        uniqueness_eq: strict uniqueness (``= 1``) vs relaxed
            (``<= 1``).  The relaxed form yields partial assignments
            (paper Section 6.3, Table 4 note *d*).
        positions_eq: strict (``= 1``) vs relaxed (``<= 1``) position
            constraints.
        position_constraints: generate position constraints at all
            (ablation knob).
        ordering_constraints: generate the horizontal-layout ordering
            constraints.  OFF by default: the paper's constraint list
            (Sections 4.1-4.2) contains only uniqueness,
            consecutiveness and position constraints; ordering is this
            library's optional extension (the premise is stated in
            Section 3.2) and is ablated in the benchmarks.
        max_pair_constraints: safety cap on the number of generated
            pairwise constraints; ordering generation stops at the cap.
    """

    uniqueness_eq: bool = True
    positions_eq: bool = True
    position_constraints: bool = True
    ordering_constraints: bool = False
    max_pair_constraints: int = 200_000


@dataclass
class SegmentationCsp:
    """A record-segmentation problem in pseudo-boolean form.

    Attributes:
        system: the constraint system.
        var_of: ``(seq, record) -> variable index``.
        pair_of: inverse of ``var_of``; ``pair_of[v] = (seq, record)``.
        table: the observation table the problem was built from.
        config: the encoder configuration used.
    """

    system: ConstraintSystem
    var_of: dict[tuple[int, int], int]
    pair_of: list[tuple[int, int]]
    table: ObservationTable
    config: EncoderConfig

    def decode(self, assignment: list[int]) -> dict[int, int | None]:
        """Map a variable assignment back to ``seq -> record`` (or None).

        When the relaxed uniqueness form lets an extract appear in
        several records (it should not, but a best-effort local-search
        assignment may), the lowest record wins deterministically.
        """
        result: dict[int, int | None] = {
            observation.seq: None for observation in self.table.observations
        }
        for var, (seq, record) in enumerate(self.pair_of):
            if assignment[var] == 1 and (
                result[seq] is None or record < result[seq]  # type: ignore[operator]
            ):
                result[seq] = record
        return result


class EncodingMemo:
    """Memoizes encodings of one observation table, keyed by rung.

    Encoding is pure, so re-encoding the same table at the same rung
    rebuilds an identical problem; the memo hands the first one back
    instead.  The segmenter keeps one memo per ``segment`` call: each
    rung of the relaxation ladder is encoded at most once, and the
    all-rungs-failed fallback — which revisits the fully relaxed rung —
    costs nothing.  A cached problem is shared, not copied, so callers
    must treat the encoding as frozen once built (the solvers only
    read it).
    """

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        self._cache: dict[object, SegmentationCsp] = {}

    def get_or_build(
        self, key: object, build: "Callable[[], SegmentationCsp]"
    ) -> SegmentationCsp:
        """The problem cached under ``key``, building it on first use."""
        problem = self._cache.get(key)
        if problem is None:
            problem = build()
            self._cache[key] = problem
        return problem

    def __len__(self) -> int:
        return len(self._cache)


def encode_segmentation(
    table: ObservationTable, config: EncoderConfig | None = None
) -> SegmentationCsp:
    """Encode ``table`` into a :class:`SegmentationCsp`.

    Raises:
        EmptyProblemError: the table has no usable observations.
    """
    config = config or EncoderConfig()
    if not table.observations:
        raise EmptyProblemError("no observations to segment")

    var_of: dict[tuple[int, int], int] = {}
    pair_of: list[tuple[int, int]] = []
    var_names: list[str] = []
    for observation in table.observations:
        for record in sorted(observation.detail_pages):
            var_of[(observation.seq, record)] = len(pair_of)
            pair_of.append((observation.seq, record))
            var_names.append(f"x[{observation.seq},{record}]")

    system = ConstraintSystem(num_vars=len(pair_of), var_names=var_names)
    _add_uniqueness(system, table, var_of, config)
    _add_consecutiveness(system, table, var_of, config)
    if config.position_constraints:
        _add_positions(system, table, var_of, config)
    if config.ordering_constraints:
        _add_ordering(system, table, var_of, config)

    return SegmentationCsp(
        system=system,
        var_of=var_of,
        pair_of=pair_of,
        table=table,
        config=config,
    )


def _add_uniqueness(
    system: ConstraintSystem,
    table: ObservationTable,
    var_of: dict[tuple[int, int], int],
    config: EncoderConfig,
) -> None:
    relation = Relation.EQ if config.uniqueness_eq else Relation.LE
    for observation in table.observations:
        terms = [
            (1, var_of[(observation.seq, record)])
            for record in sorted(observation.detail_pages)
        ]
        system.add(terms, relation, 1, label=f"uniq[{observation.seq}]")


def _candidate_runs(candidates: list[int]) -> list[list[int]]:
    """Split sorted candidate sequence indices into maximal runs of
    consecutive integers."""
    runs: list[list[int]] = []
    for seq in candidates:
        if runs and seq == runs[-1][-1] + 1:
            runs[-1].append(seq)
        else:
            runs.append([seq])
    return runs


def _add_consecutiveness(
    system: ConstraintSystem,
    table: ObservationTable,
    var_of: dict[tuple[int, int], int],
    config: EncoderConfig,
) -> None:
    budget = config.max_pair_constraints
    for record in range(table.detail_count):
        candidates = table.candidates_for_record(record)
        if len(candidates) < 2:
            continue
        runs = _candidate_runs(candidates)
        # Across runs: the gap between runs contains at least one
        # extract that can never join this record, so picking from two
        # different runs would leave a hole.
        for a_index in range(len(runs)):
            for b_index in range(a_index + 1, len(runs)):
                for seq_a in runs[a_index]:
                    for seq_b in runs[b_index]:
                        if budget <= 0:
                            break
                        system.add(
                            [
                                (1, var_of[(seq_a, record)]),
                                (1, var_of[(seq_b, record)]),
                            ],
                            Relation.LE,
                            1,
                            label=f"consec[{record}]",
                        )
                        budget -= 1
        # Within a run: the paper's triple form forbids holes.
        for run in runs:
            for left in range(len(run)):
                for right in range(left + 2, len(run)):
                    for middle in range(left + 1, right):
                        if budget <= 0:
                            break
                        system.add(
                            [
                                (1, var_of[(run[left], record)]),
                                (1, var_of[(run[right], record)]),
                                (-1, var_of[(run[middle], record)]),
                            ],
                            Relation.LE,
                            1,
                            label=f"consec[{record}]",
                        )
                        budget -= 1


def _add_positions(
    system: ConstraintSystem,
    table: ObservationTable,
    var_of: dict[tuple[int, int], int],
    config: EncoderConfig,
) -> None:
    relation = Relation.EQ if config.positions_eq else Relation.LE
    for group in table.position_groups(min_size=2):
        terms = [
            (1, var_of[(seq, group.detail_page)]) for seq in group.members
        ]
        system.add(
            terms,
            relation,
            1,
            label=f"pos[{group.detail_page},{group.position}]",
        )


def _add_ordering(
    system: ConstraintSystem,
    table: ObservationTable,
    var_of: dict[tuple[int, int], int],
    config: EncoderConfig,
) -> None:
    budget = config.max_pair_constraints
    observations = table.observations
    for a_position, observation_a in enumerate(observations):
        for observation_b in observations[a_position + 1 :]:
            for record_a in observation_a.detail_pages:
                for record_b in observation_b.detail_pages:
                    if record_a <= record_b:
                        continue
                    if budget <= 0:
                        return
                    system.add(
                        [
                            (1, var_of[(observation_a.seq, record_a)]),
                            (1, var_of[(observation_b.seq, record_b)]),
                        ],
                        Relation.LE,
                        1,
                        label="order",
                    )
                    budget -= 1

"""A WSAT(OIP)-style local-search solver for pseudo-boolean systems.

The paper solves its constraints "using WSAT(OIP), an integer
optimization algorithm" (Walser, *Integer Optimization by Local
Search*, LNCS 1637).  WSAT(OIP) generalizes WalkSAT from clauses to
over-constrained integer programs: it repeatedly picks a violated
constraint and flips one of its variables, choosing greedily by score
(total weighted violation) with a noise probability of a random move,
a short tabu memory, and restarts.

This implementation follows that recipe:

* **score** — weighted sum of constraint violations, updated
  incrementally per flip;
* **move selection** — pick a violated constraint uniformly at random;
  with probability ``noise`` flip a random variable of it, otherwise
  flip the variable giving the best score delta, ties broken at
  random, skipping tabu variables unless they beat the best score seen
  (aspiration);
* **initialization** — a problem-aware seed assignment can be supplied
  (the segmenter seeds each extract into one random record of its
  ``D_i``, so uniqueness starts satisfied); otherwise all-zeros;
* **restarts** — independent reseeded tries, keeping the best
  assignment across tries.

The solver is deterministic given its ``seed``.

The inner loop is *delta-evaluating*: flipping a variable touches only
the constraints containing it, so the solver compiles, per variable,
the tuple of (constraint, coefficient, bound, relation, weight, ...)
rows it participates in, and both the greedy move scoring and the flip
application walk just those rows against the maintained ``lhs`` /
``violation`` arrays — never the whole system.  The compiled form
changes no decision: every score, tie-break and RNG draw is identical
to the reference formulation, so a given (system, config) pair yields
the same assignment it always did (``docs/performance.md`` explains
why that property is load-bearing for cache/golden-parity).  The
number of per-variable delta evaluations is reported as
``WsatResult.delta_evals`` and surfaced by the segmenter as the
``csp.wsat.delta_evals`` counter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.csp.constraints import ConstraintSystem, Relation
from repro.obs.clock import Clock, SystemClock

__all__ = ["WsatConfig", "WsatResult", "WsatSolver"]

#: Int codes the compiled inner loop branches on instead of the enum.
_REL_CODE = {Relation.LE: 0, Relation.GE: 1, Relation.EQ: 2}

#: Weight multiplier making hard violations dominate soft ones in the
#: flip score (lexicographic in spirit; see the module docstring).
_HARD_FACTOR = 1000.0


@dataclass(frozen=True)
class WsatConfig:
    """Local-search parameters.

    Attributes:
        max_flips: flip budget per restart.
        max_restarts: number of independent tries.
        noise: probability of a random (non-greedy) move.
        tabu_tenure: flips during which a just-flipped variable is
            tabu (0 disables tabu).
        seed: RNG seed; the solver is deterministic given it.
    """

    max_flips: int = 25_000
    max_restarts: int = 4
    noise: float = 0.12
    tabu_tenure: int = 8
    seed: int = 0


@dataclass
class WsatResult:
    """Outcome of a solve call.

    Attributes:
        assignment: best assignment found (always complete).
        satisfied: whether the best assignment satisfies every *hard*
            constraint (soft constraints are an optimization target
            only).
        best_violation: weighted hard violation of the best assignment.
        best_soft_violation: weighted soft violation of the best
            assignment.
        flips: total flips spent across restarts.
        restarts: restarts actually performed.
        unsat_constraints: hard constraints the best assignment still
            violates (0 when ``satisfied``) — the dirty-data signal
            the observability layer surfaces per relaxation rung.
        elapsed: clock seconds (wall time under the default clock).
        delta_evals: per-variable score-delta evaluations performed by
            greedy move selection (the hot-path effort measure behind
            the ``csp.wsat.delta_evals`` counter).
    """

    assignment: list[int]
    satisfied: bool
    best_violation: float
    best_soft_violation: float
    flips: int
    restarts: int
    elapsed: float
    unsat_constraints: int = 0
    delta_evals: int = 0


class WsatSolver:
    """Solve one :class:`ConstraintSystem` by WSAT(OIP)-style search.

    Args:
        system: the pseudo-boolean system to solve.
        config: search parameters.
        clock: time source for ``WsatResult.elapsed`` (injectable so
            traces built on top stay deterministic under test).
    """

    def __init__(
        self,
        system: ConstraintSystem,
        config: WsatConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.system = system
        self.config = config or WsatConfig()
        self.clock = clock or SystemClock()
        # Compiled representation.  Relations become int codes so the
        # inner loop branches on ints instead of enum identity.
        self._terms: list[tuple[tuple[int, int], ...]] = [
            constraint.terms for constraint in system.constraints
        ]
        self._bounds = [constraint.bound for constraint in system.constraints]
        self._relations = [
            constraint.relation for constraint in system.constraints
        ]
        self._rel_codes = [
            _REL_CODE[constraint.relation] for constraint in system.constraints
        ]
        self._weights = [constraint.weight for constraint in system.constraints]
        self._hard = [constraint.hard for constraint in system.constraints]
        # Hard constraints dominate soft ones in the flip score by a
        # factor large enough that no realistic soft mass overturns a
        # hard unit.
        self._factors = [
            _HARD_FACTOR if constraint.hard else 1.0
            for constraint in system.constraints
        ]
        self._var_constraints: list[list[tuple[int, int]]] = [
            [] for _ in range(system.num_vars)
        ]
        for constraint_id, terms in enumerate(self._terms):
            for coef, var in terms:
                self._var_constraints[var].append((constraint_id, coef))
        # Per-constraint variable tuples (move candidates), and per-var
        # occurrence rows carrying every per-constraint constant the
        # delta evaluation needs, so one tuple unpack replaces five
        # list lookups in the hottest loop.  Row order matches
        # ``_var_constraints`` (ascending constraint id), which fixes
        # the floating-point accumulation order of score deltas.
        self._cons_vars: list[tuple[int, ...]] = [
            tuple(var for _, var in terms) for terms in self._terms
        ]
        self._var_rows: list[tuple[tuple[int, int, int, int, float, float, bool], ...]] = [
            tuple(
                (
                    constraint_id,
                    coef,
                    self._bounds[constraint_id],
                    self._rel_codes[constraint_id],
                    self._weights[constraint_id],
                    self._factors[constraint_id],
                    self._hard[constraint_id],
                )
                for constraint_id, coef in pairs
            )
            for pairs in self._var_constraints
        ]
        self.delta_evals = 0

    # -- public API ------------------------------------------------------

    def solve(self, initial: list[int] | None = None) -> WsatResult:
        """Run the search; ``initial`` seeds the first restart.

        The best assignment is tracked lexicographically: first by hard
        violation, then by soft violation — a hard-feasible assignment
        with worse soft score always beats a hard-infeasible one.
        """
        start_time = self.clock.now()
        rng = random.Random(self.config.seed)
        self.delta_evals = 0

        best_assignment: list[int] = (
            list(initial) if initial else [0] * self.system.num_vars
        )
        best_key = (float("inf"), float("inf"))
        total_flips = 0
        restarts_done = 0

        for restart in range(max(1, self.config.max_restarts)):
            restarts_done = restart + 1
            if restart == 0 and initial is not None:
                assignment = list(initial)
            else:
                assignment = self._random_assignment(rng)
            key, flips = self._search(assignment, rng, best_key)
            total_flips += flips
            if key < best_key:
                best_key = key
                best_assignment = list(assignment)
            if best_key == (0.0, 0.0):
                break

        return WsatResult(
            assignment=best_assignment,
            satisfied=best_key[0] == 0,
            best_violation=best_key[0],
            best_soft_violation=best_key[1],
            flips=total_flips,
            restarts=restarts_done,
            elapsed=self.clock.now() - start_time,
            unsat_constraints=self._unsat_count(best_assignment),
            delta_evals=self.delta_evals,
        )

    # -- internals -------------------------------------------------------

    def _unsat_count(self, assignment: list[int]) -> int:
        """Hard constraints violated by ``assignment``."""
        count = 0
        for constraint_id, terms in enumerate(self._terms):
            if not self._hard[constraint_id]:
                continue
            lhs = sum(coef * assignment[var] for coef, var in terms)
            if self._violation_of(constraint_id, lhs) > 0:
                count += 1
        return count

    def _random_assignment(self, rng: random.Random) -> list[int]:
        return [rng.randint(0, 1) for _ in range(self.system.num_vars)]

    def _violation_of(self, constraint_id: int, lhs: int) -> int:
        bound = self._bounds[constraint_id]
        relation = self._relations[constraint_id]
        if relation is Relation.LE:
            return lhs - bound if lhs > bound else 0
        if relation is Relation.GE:
            return bound - lhs if lhs < bound else 0
        return abs(lhs - bound)

    def _search(
        self,
        assignment: list[int],
        rng: random.Random,
        global_best: tuple[float, float],
    ) -> tuple[tuple[float, float], int]:
        """One restart: local search from ``assignment`` (mutated in place).

        Returns ((best hard, best soft) violation reached, flips used).
        ``assignment`` holds the best state of this restart on return.

        The body is one flat loop over compiled per-variable rows: the
        greedy score delta and the flip application each delta-evaluate
        only the constraints containing the touched variable, with
        every per-constraint constant carried in the row tuple.  The
        decision sequence (scores, tie-breaks, RNG draws) is exactly
        the reference algorithm's.
        """
        num_constraints = len(self._terms)
        lhs = [0] * num_constraints
        for constraint_id, terms in enumerate(self._terms):
            lhs[constraint_id] = sum(coef * assignment[var] for coef, var in terms)

        violations = [
            self._violation_of(constraint_id, lhs[constraint_id])
            for constraint_id in range(num_constraints)
        ]
        hard_score = 0.0
        soft_score = 0.0
        for constraint_id in range(num_constraints):
            amount = self._weights[constraint_id] * violations[constraint_id]
            if self._hard[constraint_id]:
                hard_score += amount
            else:
                soft_score += amount

        # Violated-constraint pool with O(1) add/remove.
        unsat_list: list[int] = []
        unsat_pos: dict[int, int] = {}
        for constraint_id, amount in enumerate(violations):
            if amount > 0:
                unsat_pos[constraint_id] = len(unsat_list)
                unsat_list.append(constraint_id)

        last_flip = [-(10**9)] * self.system.num_vars
        best_key = (hard_score, soft_score)
        best_state = list(assignment)
        tenure = self.config.tabu_tenure
        noise = self.config.noise
        hard_factor = _HARD_FACTOR
        cons_vars = self._cons_vars
        var_rows = self._var_rows
        randrange = rng.randrange
        rng_random = rng.random
        delta_evals = 0
        infinity = float("inf")

        for flip in range(self.config.max_flips):
            if not unsat_list:
                self.delta_evals += delta_evals
                return (0.0, 0.0), flip
            variables = cons_vars[unsat_list[randrange(len(unsat_list))]]
            if rng_random() < noise:
                chosen = variables[randrange(len(variables))]
            else:
                current_weighted = hard_score * hard_factor + soft_score
                best_global = min(best_key, global_best)
                aspiration = best_global[0] * hard_factor + best_global[1]
                best_vars: list[int] = []
                best_delta = infinity
                for var in variables:
                    direction = 1 - 2 * assignment[var]
                    delta = 0.0
                    for c, coef, bound, rel, weight, factor, _ in var_rows[var]:
                        new_lhs = lhs[c] + coef * direction
                        if rel == 0:  # LE
                            violation = new_lhs - bound if new_lhs > bound else 0
                        elif rel == 1:  # GE
                            violation = bound - new_lhs if new_lhs < bound else 0
                        else:  # EQ
                            violation = new_lhs - bound
                            if violation < 0:
                                violation = -violation
                        delta += weight * (violation - violations[c]) * factor
                    delta_evals += 1
                    if (
                        tenure > 0
                        and flip - last_flip[var] <= tenure
                        and current_weighted + delta >= aspiration
                    ):
                        continue
                    if delta < best_delta:
                        best_delta = delta
                        best_vars = [var]
                    elif delta == best_delta:
                        best_vars.append(var)
                if best_vars:
                    chosen = best_vars[randrange(len(best_vars))]
                else:
                    # Everything tabu without aspiration: random move.
                    chosen = variables[randrange(len(variables))]

            direction = 1 - 2 * assignment[chosen]
            assignment[chosen] ^= 1
            for c, coef, bound, rel, weight, _, is_hard in var_rows[chosen]:
                new_lhs = lhs[c] + coef * direction
                if rel == 0:  # LE
                    violation = new_lhs - bound if new_lhs > bound else 0
                elif rel == 1:  # GE
                    violation = bound - new_lhs if new_lhs < bound else 0
                else:  # EQ
                    violation = new_lhs - bound
                    if violation < 0:
                        violation = -violation
                lhs[c] = new_lhs
                old_violation = violations[c]
                if violation != old_violation:
                    change = weight * (violation - old_violation)
                    if is_hard:
                        hard_score += change
                    else:
                        soft_score += change
                    violations[c] = violation
                    if old_violation == 0:
                        unsat_pos[c] = len(unsat_list)
                        unsat_list.append(c)
                    elif violation == 0:
                        index = unsat_pos.pop(c)
                        mover = unsat_list[-1]
                        unsat_list[index] = mover
                        unsat_list.pop()
                        if mover != c:
                            unsat_pos[mover] = index

            last_flip[chosen] = flip
            if hard_score < best_key[0] or (
                hard_score == best_key[0] and soft_score < best_key[1]
            ):
                best_key = (hard_score, soft_score)
                best_state = list(assignment)

        assignment[:] = best_state
        self.delta_evals += delta_evals
        return best_key, self.config.max_flips

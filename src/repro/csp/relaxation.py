"""The constraint-relaxation ladder (paper Sections 4.1, 6.3).

When the strict problem is unsatisfiable — which the paper observed on
sites with list/detail inconsistencies (Michigan's "Parole"/"Parolee",
Minnesota's case mismatch, Canada411's missing town) — the constraints
are relaxed "by replacing equalities with inequalities", producing a
*partial* solution ("not every extract was assigned to a record").

The ladder has three rungs:

1. **STRICT** — uniqueness ``= 1``, positions ``= 1``.
2. **RELAXED_POSITIONS** — positions become ``<= 1`` (a detail-page
   position may go unexplained), uniqueness still ``= 1``.
3. **RELAXED** — uniqueness becomes ``<= 1`` as well: an extract may be
   left out of every record.  This rung is always satisfiable (the
   empty assignment), so the segmenter adds *soft* assign-me
   constraints making the solver return the largest consistent partial
   assignment instead of the trivial one.
"""

from __future__ import annotations

import enum

from repro.csp.constraints import Relation
from repro.csp.encoder import EncoderConfig, SegmentationCsp, encode_segmentation
from repro.extraction.observations import ObservationTable

__all__ = ["RelaxationLevel", "encode_at_level"]


class RelaxationLevel(enum.IntEnum):
    """Rungs of the relaxation ladder, in climbing order."""

    STRICT = 0
    RELAXED_POSITIONS = 1
    RELAXED = 2

    @property
    def is_relaxed(self) -> bool:
        """Anything above STRICT counts as relaxed (Table 4 note *d*)."""
        return self is not RelaxationLevel.STRICT


#: Soft-constraint weight for the assign-me objective.  Any positive
#: value works — hard constraints dominate lexicographically.
_SOFT_ASSIGN_WEIGHT = 1.0


def encode_at_level(
    table: ObservationTable,
    level: RelaxationLevel,
    base: EncoderConfig | None = None,
    soft_assign: bool = True,
) -> SegmentationCsp:
    """Encode ``table`` with the constraint forms of ``level``.

    ``base`` carries the level-independent knobs (ordering constraints,
    caps); its equality flags are overridden by the level.

    ``soft_assign`` controls whether the fully relaxed rung carries the
    soft assign-me objective.  With it off, the relaxed problem is a
    pure satisfaction problem whose solutions can be arbitrarily sparse
    — the behaviour the paper reports ("the solution corresponded to a
    partial assignment"); with it on (default), the solver returns the
    *largest* consistent partial assignment.
    """
    base = base or EncoderConfig()
    config = EncoderConfig(
        uniqueness_eq=level < RelaxationLevel.RELAXED,
        positions_eq=level < RelaxationLevel.RELAXED_POSITIONS,
        position_constraints=base.position_constraints,
        ordering_constraints=base.ordering_constraints,
        max_pair_constraints=base.max_pair_constraints,
    )
    problem = encode_segmentation(table, config)

    if level is RelaxationLevel.RELAXED and soft_assign:
        # Soft objective: prefer assigning each extract somewhere.
        for observation in table.observations:
            terms = [
                (1, problem.var_of[(observation.seq, record)])
                for record in sorted(observation.detail_pages)
            ]
            problem.system.add(
                terms,
                Relation.GE,
                1,
                weight=_SOFT_ASSIGN_WEIGHT,
                hard=False,
                label=f"assign[{observation.seq}]",
            )
    return problem

"""Linear pseudo-boolean constraints (paper Section 4).

The paper encodes record segmentation "into pseudo-boolean
representation": 0-1 variables with linear equality/inequality
constraints.  This module provides the representation shared by the
WSAT(OIP)-style local-search solver and the exact backtracking solver:

* :class:`LinearConstraint` — ``sum(coef * x_var) REL bound`` with an
  integer bound and a relation in {<=, >=, ==};
* :class:`ConstraintSystem` — a set of constraints over named 0-1
  variables, with violation accounting.

Violation of a constraint under an assignment is the (non-negative)
amount by which its bound is missed; a system's *score* is the weighted
sum of violations, which both solvers drive to zero.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Relation", "LinearConstraint", "ConstraintSystem"]


class Relation(enum.Enum):
    """Comparison relation of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class LinearConstraint:
    """One linear pseudo-boolean constraint.

    Attributes:
        terms: ``(coefficient, variable_index)`` pairs; variables are
            0-1.  A variable appears at most once.
        relation: the comparison.
        bound: the right-hand side.
        weight: contribution of one unit of violation to the system
            score.  All of the paper's constraints are hard; weights
            exist so ablations can trade constraints off.
        hard: hard constraints define satisfiability; soft constraints
            only contribute to the optimization score.  WSAT(OIP) is an
            *over-constrained* solver: at relaxed levels the segmenter
            adds soft assign-me constraints so the search prefers the
            largest consistent partial assignment over the trivially
            feasible empty one.
        label: provenance tag (``"uniq[3]"``, ``"pos[1,730]"``, ...)
            used in diagnostics and tests.
    """

    terms: tuple[tuple[int, int], ...]
    relation: Relation
    bound: int
    weight: float = 1.0
    hard: bool = True
    label: str = ""

    def lhs(self, assignment: list[int]) -> int:
        """Evaluate the left-hand side under ``assignment``."""
        return sum(coef * assignment[var] for coef, var in self.terms)

    def violation_of(self, lhs: int) -> int:
        """Units of violation for a given left-hand-side value."""
        if self.relation is Relation.LE:
            return max(0, lhs - self.bound)
        if self.relation is Relation.GE:
            return max(0, self.bound - lhs)
        return abs(lhs - self.bound)

    def violation(self, assignment: list[int]) -> int:
        """Units of violation under ``assignment``."""
        return self.violation_of(self.lhs(assignment))

    def is_satisfied(self, assignment: list[int]) -> bool:
        """Does ``assignment`` satisfy this constraint?"""
        return self.violation(assignment) == 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = " + ".join(
            (f"x{var}" if coef == 1 else f"{coef}*x{var}") for coef, var in self.terms
        )
        tag = f"  [{self.label}]" if self.label else ""
        return f"{parts} {self.relation.value} {self.bound}{tag}"


@dataclass
class ConstraintSystem:
    """A pseudo-boolean constraint system over named 0-1 variables.

    Attributes:
        num_vars: number of variables (indices ``0..num_vars-1``).
        constraints: the constraints.
        var_names: optional human-readable variable names (``x[i,j]``).
    """

    num_vars: int
    constraints: list[LinearConstraint] = field(default_factory=list)
    var_names: list[str] = field(default_factory=list)

    def add(
        self,
        terms: list[tuple[int, int]],
        relation: Relation,
        bound: int,
        weight: float = 1.0,
        hard: bool = True,
        label: str = "",
    ) -> LinearConstraint:
        """Create, validate, register and return a constraint."""
        seen: set[int] = set()
        for _, var in terms:
            if not 0 <= var < self.num_vars:
                raise ValueError(f"variable x{var} out of range")
            if var in seen:
                raise ValueError(f"variable x{var} repeated in constraint")
            seen.add(var)
        constraint = LinearConstraint(
            terms=tuple(terms),
            relation=relation,
            bound=bound,
            weight=weight,
            hard=hard,
            label=label,
        )
        self.constraints.append(constraint)
        return constraint

    @property
    def hard_constraints(self) -> list[LinearConstraint]:
        """Only the hard constraints (satisfiability-defining)."""
        return [c for c in self.constraints if c.hard]

    def total_violation(self, assignment: list[int]) -> float:
        """Weighted sum of violations under ``assignment`` (hard + soft)."""
        return sum(
            constraint.weight * constraint.violation(assignment)
            for constraint in self.constraints
        )

    def hard_violation(self, assignment: list[int]) -> float:
        """Weighted violation of the hard constraints only."""
        return sum(
            constraint.weight * constraint.violation(assignment)
            for constraint in self.constraints
            if constraint.hard
        )

    def is_satisfied(self, assignment: list[int]) -> bool:
        """Does ``assignment`` satisfy every *hard* constraint?"""
        return all(
            constraint.is_satisfied(assignment)
            for constraint in self.constraints
            if constraint.hard
        )

    def violated(self, assignment: list[int]) -> list[LinearConstraint]:
        """The constraints violated by ``assignment`` (diagnostics)."""
        return [
            constraint
            for constraint in self.constraints
            if not constraint.is_satisfied(assignment)
        ]

    def var_name(self, var: int) -> str:
        """Readable name of variable ``var``."""
        if var < len(self.var_names):
            return self.var_names[var]
        return f"x{var}"

    def stats(self) -> dict[str, int]:
        """Size statistics, keyed by constraint-label prefix."""
        by_kind: dict[str, int] = {}
        for constraint in self.constraints:
            kind = constraint.label.split("[", 1)[0] or "other"
            by_kind[kind] = by_kind.get(kind, 0) + 1
        by_kind["variables"] = self.num_vars
        by_kind["constraints"] = len(self.constraints)
        return by_kind

"""CSP record segmenter (paper Section 4)."""

from repro.csp.constraints import ConstraintSystem, LinearConstraint, Relation
from repro.csp.encoder import (
    EncoderConfig,
    EncodingMemo,
    SegmentationCsp,
    encode_segmentation,
)
from repro.csp.exact import ExactConfig, ExactResult, ExactSolver
from repro.csp.relaxation import RelaxationLevel, encode_at_level
from repro.csp.segmenter import CspConfig, CspSegmenter
from repro.csp.wsat import WsatConfig, WsatResult, WsatSolver

__all__ = [
    "ConstraintSystem",
    "CspConfig",
    "CspSegmenter",
    "EncoderConfig",
    "EncodingMemo",
    "ExactConfig",
    "ExactResult",
    "ExactSolver",
    "LinearConstraint",
    "Relation",
    "RelaxationLevel",
    "SegmentationCsp",
    "WsatConfig",
    "WsatResult",
    "WsatSolver",
    "encode_at_level",
    "encode_segmentation",
]

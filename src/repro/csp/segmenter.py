"""The CSP record segmenter (paper Section 4, end-to-end).

Orchestrates encoding, solving and relaxation:

1. encode the observation table at the STRICT rung and run the
   WSAT(OIP)-style local search from a problem-aware seed (every
   extract dropped into a random record of its ``D_i``, so uniqueness
   starts satisfied);
2. if the search fails, optionally ask the exact solver to either find
   a solution or *prove* unsatisfiability;
3. on failure, climb the relaxation ladder and repeat;
4. decode the winning assignment into a
   :class:`~repro.core.results.Segmentation`, applying the paper's
   rest-of-the-data attachment rule.

The result's ``meta`` records which rung won, whether a solution was
found at all, and per-rung solver diagnostics — the inputs for Table
4's *c* ("No solution found") and *d* ("Relax constraints") notes.

When handed an :class:`~repro.obs.Observability` bundle the segmenter
additionally emits a ``csp.segment`` span with one ``csp.level`` child
per rung attempted, and books solver effort into the registry
(``csp.wsat.flips``, ``csp.wsat.restarts``,
``csp.wsat.unsat_constraints``, ``csp.exact.nodes``,
``csp.exact.backtracks``, ``csp.relaxations`` — see
``docs/observability.md``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.exceptions import EmptyProblemError, SolverBudgetExceededError
from repro.core.results import Segmentation
from repro.csp.encoder import EncoderConfig, SegmentationCsp
from repro.csp.exact import ExactConfig, ExactSolver
from repro.csp.relaxation import RelaxationLevel, encode_at_level
from repro.csp.wsat import WsatConfig, WsatSolver
from repro.extraction.observations import ObservationTable
from repro.obs import Observability, current as current_obs

__all__ = ["CspConfig", "CspSegmenter"]


@dataclass(frozen=True)
class CspConfig:
    """Configuration of the CSP segmenter.

    Attributes:
        wsat: local-search parameters.
        exact: exact-solver limits.
        encoder: level-independent encoding knobs.
        use_exact: consult the exact solver when the local search
            fails (find a solution or prove unsat before relaxing).
        exact_var_limit: skip the exact solver on problems with more
            variables than this (budget protection).
        soft_assign: add the soft assign-me objective at the fully
            relaxed rung (see :func:`repro.csp.relaxation.encode_at_level`).
            Disable for the paper-faithful sparse-partial behaviour.
        seed: seed for the problem-aware initial assignment.
    """

    wsat: WsatConfig = field(default_factory=WsatConfig)
    exact: ExactConfig = field(default_factory=ExactConfig)
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    use_exact: bool = True
    exact_var_limit: int = 2000
    soft_assign: bool = True
    seed: int = 0


class CspSegmenter:
    """Segment records by pseudo-boolean constraint solving."""

    method_name = "csp"

    def __init__(
        self,
        config: CspConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.config = config or CspConfig()
        self.obs = obs if obs is not None else current_obs()

    def segment(self, table: ObservationTable) -> Segmentation:
        """Segment one list page's observation table.

        Raises:
            EmptyProblemError: the table has no usable observations.
        """
        if not table.observations:
            raise EmptyProblemError("no observations to segment")

        with self.obs.span(
            "csp.segment", observations=len(table.observations)
        ) as span:
            segmentation = self._segment_traced(table)
            meta = segmentation.meta
            span.attributes["level"] = getattr(
                meta.get("level"), "name", str(meta.get("level"))
            )
            span.attributes["solution_found"] = meta.get("solution_found")
            span.attributes["records"] = len(segmentation.records)
        return segmentation

    def _segment_traced(self, table: ObservationTable) -> Segmentation:
        attempts: list[dict[str, object]] = []
        for level in RelaxationLevel:
            if level.is_relaxed:
                self.obs.counter("csp.relaxations").inc()
            problem = encode_at_level(
                table, level, self.config.encoder,
                soft_assign=self.config.soft_assign,
            )
            outcome = self._solve_level(problem, level)
            attempts.append(outcome["diag"])  # type: ignore[index]
            if outcome["assignment"] is not None:
                assignment_map = problem.decode(outcome["assignment"])  # type: ignore[arg-type]
                return Segmentation.from_assignment(
                    method=self.method_name,
                    table=table,
                    assignment=assignment_map,
                    meta={
                        "level": level,
                        "relaxed": level.is_relaxed,
                        "solution_found": True,
                        "attempts": attempts,
                        "constraint_stats": problem.system.stats(),
                    },
                )

        # Every rung failed (even RELAXED, which is unusual): fall back
        # to the best local-search assignment of the last rung so the
        # caller still gets the most consistent partial segmentation.
        problem = encode_at_level(
            table,
            RelaxationLevel.RELAXED,
            self.config.encoder,
            soft_assign=self.config.soft_assign,
        )
        result = WsatSolver(
            problem.system, self.config.wsat, clock=self.obs.clock
        ).solve(self._seed_assignment(problem))
        self._record_wsat(result)
        assignment_map = problem.decode(result.assignment)
        return Segmentation.from_assignment(
            method=self.method_name,
            table=table,
            assignment=assignment_map,
            meta={
                "level": RelaxationLevel.RELAXED,
                "relaxed": True,
                "solution_found": False,
                "attempts": attempts,
                "constraint_stats": problem.system.stats(),
            },
        )

    # -- internals ---------------------------------------------------------

    def _seed_assignment(self, problem: SegmentationCsp) -> list[int]:
        """Drop each extract into one random record of its ``D_i``."""
        rng = random.Random(self.config.seed)
        assignment = [0] * problem.system.num_vars
        for observation in problem.table.observations:
            records = sorted(observation.detail_pages)
            chosen = records[rng.randrange(len(records))]
            assignment[problem.var_of[(observation.seq, chosen)]] = 1
        return assignment

    def _record_wsat(self, result) -> None:
        """Book one local-search run into the metrics registry."""
        self.obs.counter("csp.wsat.solves").inc()
        self.obs.counter("csp.wsat.flips").inc(result.flips)
        self.obs.counter("csp.wsat.restarts").inc(result.restarts)
        self.obs.counter("csp.wsat.unsat_constraints").inc(
            result.unsat_constraints
        )

    def _solve_level(
        self, problem: SegmentationCsp, level: RelaxationLevel
    ) -> dict[str, object]:
        """Try one rung; return the assignment (or None) plus diagnostics."""
        with self.obs.span(
            "csp.level",
            level=level.name,
            vars=problem.system.num_vars,
            constraints=len(problem.system.constraints),
        ) as span:
            wsat_result = WsatSolver(
                problem.system, self.config.wsat, clock=self.obs.clock
            ).solve(self._seed_assignment(problem))
            self._record_wsat(wsat_result)
            span.attributes["wsat_satisfied"] = wsat_result.satisfied
            span.attributes["wsat_flips"] = wsat_result.flips
            diag: dict[str, object] = {
                "level": level.name,
                "wsat_satisfied": wsat_result.satisfied,
                "wsat_violation": wsat_result.best_violation,
                "wsat_flips": wsat_result.flips,
                "wsat_unsat_constraints": wsat_result.unsat_constraints,
                "vars": problem.system.num_vars,
                "constraints": len(problem.system.constraints),
            }
            if wsat_result.satisfied:
                return {"assignment": wsat_result.assignment, "diag": diag}

            if (
                self.config.use_exact
                and problem.system.num_vars <= self.config.exact_var_limit
            ):
                self.obs.counter("csp.exact.solves").inc()
                try:
                    exact_result = ExactSolver(
                        problem.system, self.config.exact, clock=self.obs.clock
                    ).solve()
                except SolverBudgetExceededError:
                    diag["exact"] = "budget_exceeded"
                    span.attributes["exact"] = "budget_exceeded"
                    self.obs.counter("csp.exact.budget_exceeded").inc()
                    return {"assignment": None, "diag": diag}
                self.obs.counter("csp.exact.nodes").inc(exact_result.nodes)
                self.obs.counter("csp.exact.backtracks").inc(
                    exact_result.backtracks
                )
                diag["exact"] = (
                    "satisfiable" if exact_result.satisfiable else "unsatisfiable"
                )
                diag["exact_nodes"] = exact_result.nodes
                diag["exact_backtracks"] = exact_result.backtracks
                span.attributes["exact"] = diag["exact"]
                if exact_result.satisfiable:
                    return {"assignment": exact_result.assignment, "diag": diag}
            return {"assignment": None, "diag": diag}

"""The CSP record segmenter (paper Section 4, end-to-end).

Orchestrates encoding, solving and relaxation:

1. encode the observation table at the STRICT rung (encodings are
   memoized per rung through an :class:`~repro.csp.encoder.EncodingMemo`,
   so a rung revisited by the final fallback is never re-encoded);
2. *probe* the rung with the exact solver first: a proof of
   unsatisfiability skips the local search entirely — a provably
   unsatisfiable rung is where the search would otherwise burn its
   whole flip budget for nothing (see ``docs/performance.md``);
3. otherwise run the WSAT(OIP)-style local search from a problem-aware
   seed (every extract dropped into a random record of its ``D_i``, so
   uniqueness starts satisfied); if the search fails, the probe's
   satisfying assignment (when it found one) backstops it;
4. on failure, climb the relaxation ladder and repeat;
5. decode the winning assignment into a
   :class:`~repro.core.results.Segmentation`, applying the paper's
   rest-of-the-data attachment rule.

The reordering in step 2 is output-preserving: on rungs the probe
proves unsatisfiable the local search could never have produced a
solution (its result was always discarded), and on every other rung
the search runs with exactly the trajectory it always had, so the
winning rung and assignment — hence the segmentation — are identical
to the probe-less formulation.

The result's ``meta`` records which rung won, whether a solution was
found at all, and per-rung solver diagnostics — the inputs for Table
4's *c* ("No solution found") and *d* ("Relax constraints") notes.

When handed an :class:`~repro.obs.Observability` bundle the segmenter
additionally emits a ``csp.segment`` span with one ``csp.level`` child
per rung attempted, and books solver effort into the registry
(``csp.wsat.flips``, ``csp.wsat.restarts``,
``csp.wsat.unsat_constraints``, ``csp.exact.nodes``,
``csp.exact.backtracks``, ``csp.relaxations`` — see
``docs/observability.md``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.exceptions import EmptyProblemError, SolverBudgetExceededError
from repro.core.results import Segmentation
from repro.csp.encoder import EncoderConfig, EncodingMemo, SegmentationCsp
from repro.csp.exact import ExactConfig, ExactSolver
from repro.csp.relaxation import RelaxationLevel, encode_at_level
from repro.csp.wsat import WsatConfig, WsatSolver
from repro.extraction.observations import ObservationTable
from repro.obs import Observability, current as current_obs

__all__ = ["CspConfig", "CspSegmenter"]


@dataclass(frozen=True)
class CspConfig:
    """Configuration of the CSP segmenter.

    Attributes:
        wsat: local-search parameters.
        exact: exact-solver limits.
        encoder: level-independent encoding knobs.
        use_exact: consult the exact solver when the local search
            fails (find a solution or prove unsat before relaxing).
        exact_var_limit: skip the exact solver on problems with more
            variables than this (budget protection).
        soft_assign: add the soft assign-me objective at the fully
            relaxed rung (see :func:`repro.csp.relaxation.encode_at_level`).
            Disable for the paper-faithful sparse-partial behaviour.
        seed: seed for the problem-aware initial assignment.
    """

    wsat: WsatConfig = field(default_factory=WsatConfig)
    exact: ExactConfig = field(default_factory=ExactConfig)
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    use_exact: bool = True
    exact_var_limit: int = 2000
    soft_assign: bool = True
    seed: int = 0


class CspSegmenter:
    """Segment records by pseudo-boolean constraint solving."""

    method_name = "csp"

    def __init__(
        self,
        config: CspConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.config = config or CspConfig()
        self.obs = obs if obs is not None else current_obs()

    def segment(self, table: ObservationTable) -> Segmentation:
        """Segment one list page's observation table.

        Raises:
            EmptyProblemError: the table has no usable observations.
        """
        if not table.observations:
            raise EmptyProblemError("no observations to segment")

        with self.obs.span(
            "csp.segment", observations=len(table.observations)
        ) as span:
            segmentation = self._segment_traced(table)
            meta = segmentation.meta
            span.attributes["level"] = getattr(
                meta.get("level"), "name", str(meta.get("level"))
            )
            span.attributes["solution_found"] = meta.get("solution_found")
            span.attributes["records"] = len(segmentation.records)
        return segmentation

    def _segment_traced(self, table: ObservationTable) -> Segmentation:
        attempts: list[dict[str, object]] = []
        memo = EncodingMemo()
        for level in RelaxationLevel:
            if level.is_relaxed:
                self.obs.counter("csp.relaxations").inc()
            problem = self._encode(memo, table, level)
            outcome = self._solve_level(problem, level)
            attempts.append(outcome["diag"])  # type: ignore[index]
            if outcome["assignment"] is not None:
                assignment_map = problem.decode(outcome["assignment"])  # type: ignore[arg-type]
                return Segmentation.from_assignment(
                    method=self.method_name,
                    table=table,
                    assignment=assignment_map,
                    meta={
                        "level": level,
                        "relaxed": level.is_relaxed,
                        "solution_found": True,
                        "attempts": attempts,
                        "constraint_stats": problem.system.stats(),
                    },
                )

        # Every rung failed (even RELAXED, which is unusual): fall back
        # to the best local-search assignment of the last rung so the
        # caller still gets the most consistent partial segmentation.
        # The memo makes this revisit of the RELAXED rung free.
        problem = self._encode(memo, table, RelaxationLevel.RELAXED)
        result = WsatSolver(
            problem.system, self.config.wsat, clock=self.obs.clock
        ).solve(self._seed_assignment(problem))
        self._record_wsat(result)
        assignment_map = problem.decode(result.assignment)
        return Segmentation.from_assignment(
            method=self.method_name,
            table=table,
            assignment=assignment_map,
            meta={
                "level": RelaxationLevel.RELAXED,
                "relaxed": True,
                "solution_found": False,
                "attempts": attempts,
                "constraint_stats": problem.system.stats(),
            },
        )

    # -- internals ---------------------------------------------------------

    def _encode(
        self,
        memo: EncodingMemo,
        table: ObservationTable,
        level: RelaxationLevel,
    ) -> SegmentationCsp:
        """Encode ``table`` at ``level``, memoized per ``segment`` call."""
        return memo.get_or_build(
            level,
            lambda: encode_at_level(
                table, level, self.config.encoder,
                soft_assign=self.config.soft_assign,
            ),
        )

    def _seed_assignment(self, problem: SegmentationCsp) -> list[int]:
        """Drop each extract into one random record of its ``D_i``."""
        rng = random.Random(self.config.seed)
        assignment = [0] * problem.system.num_vars
        for observation in problem.table.observations:
            records = sorted(observation.detail_pages)
            chosen = records[rng.randrange(len(records))]
            assignment[problem.var_of[(observation.seq, chosen)]] = 1
        return assignment

    def _record_wsat(self, result) -> None:
        """Book one local-search run into the metrics registry."""
        self.obs.counter("csp.wsat.solves").inc()
        self.obs.counter("csp.wsat.flips").inc(result.flips)
        self.obs.counter("csp.wsat.restarts").inc(result.restarts)
        self.obs.counter("csp.wsat.unsat_constraints").inc(
            result.unsat_constraints
        )
        self.obs.counter("csp.wsat.delta_evals").inc(result.delta_evals)

    def _solve_level(
        self, problem: SegmentationCsp, level: RelaxationLevel
    ) -> dict[str, object]:
        """Try one rung; return the assignment (or None) plus diagnostics."""
        with self.obs.span(
            "csp.level",
            level=level.name,
            vars=problem.system.num_vars,
            constraints=len(problem.system.constraints),
        ) as span:
            diag: dict[str, object] = {
                "level": level.name,
                "vars": problem.system.num_vars,
                "constraints": len(problem.system.constraints),
            }
            exact_eligible = (
                self.config.use_exact
                and problem.system.num_vars <= self.config.exact_var_limit
            )
            # Probe rungs that can actually be unsatisfiable before
            # spending the local-search flip budget: a rung the exact
            # solver proves unsat is one the search could never satisfy
            # (its result was always discarded), so skipping the search
            # there cannot change which rung wins or with what
            # assignment.  On the paper's dirty sites the proof takes
            # milliseconds where the doomed search takes seconds.  The
            # fully relaxed rung is satisfiable by construction (the
            # empty assignment meets every hard constraint), so a probe
            # there could never pay off.
            exact_result = None
            if exact_eligible and level is not RelaxationLevel.RELAXED:
                exact_result = self._run_exact(problem, diag, span)
                if exact_result is not None and not exact_result.satisfiable:
                    diag["wsat_satisfied"] = False
                    diag["wsat_skipped"] = True
                    span.attributes["wsat_satisfied"] = False
                    self.obs.counter("csp.wsat.skipped_unsat").inc()
                    return {"assignment": None, "diag": diag}

            wsat_result = WsatSolver(
                problem.system, self.config.wsat, clock=self.obs.clock
            ).solve(self._seed_assignment(problem))
            self._record_wsat(wsat_result)
            span.attributes["wsat_satisfied"] = wsat_result.satisfied
            span.attributes["wsat_flips"] = wsat_result.flips
            diag["wsat_satisfied"] = wsat_result.satisfied
            diag["wsat_violation"] = wsat_result.best_violation
            diag["wsat_flips"] = wsat_result.flips
            diag["wsat_unsat_constraints"] = wsat_result.unsat_constraints
            if wsat_result.satisfied:
                return {"assignment": wsat_result.assignment, "diag": diag}

            if exact_eligible and "exact" not in diag:
                # The search failed on the one rung the probe skips
                # (fully relaxed): consult the exact solver now, as the
                # probe-less formulation always did.
                exact_result = self._run_exact(problem, diag, span)
            if exact_result is not None and exact_result.satisfiable:
                return {"assignment": exact_result.assignment, "diag": diag}
            return {"assignment": None, "diag": diag}

    def _run_exact(self, problem: SegmentationCsp, diag, span):
        """One exact solve, booked into counters and diagnostics.

        Returns ``None`` when the node budget ran out (recorded in
        ``diag`` as ``exact: budget_exceeded``).
        """
        self.obs.counter("csp.exact.solves").inc()
        try:
            exact_result = ExactSolver(
                problem.system, self.config.exact, clock=self.obs.clock
            ).solve()
        except SolverBudgetExceededError:
            diag["exact"] = "budget_exceeded"
            span.attributes["exact"] = "budget_exceeded"
            self.obs.counter("csp.exact.budget_exceeded").inc()
            return None
        self.obs.counter("csp.exact.nodes").inc(exact_result.nodes)
        self.obs.counter("csp.exact.backtracks").inc(exact_result.backtracks)
        diag["exact"] = (
            "satisfiable" if exact_result.satisfiable else "unsatisfiable"
        )
        diag["exact_nodes"] = exact_result.nodes
        diag["exact_backtracks"] = exact_result.backtracks
        span.attributes["exact"] = diag["exact"]
        return exact_result

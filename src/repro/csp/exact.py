"""Exact (systematic) solver for pseudo-boolean systems.

Complements the stochastic WSAT(OIP)-style search in two roles:

* **unsat proving** — the paper detects dirty data by WSAT failing to
  find a solution; the exact solver lets the pipeline distinguish
  "provably unsatisfiable, climb the relaxation ladder" from "the
  local search just got unlucky";
* **cross-checking** — property tests compare both solvers on random
  instances.

Algorithm: depth-first search with bounds-consistency propagation.
For every constraint we maintain the reachable interval
``[lhs_min, lhs_max]`` of its left-hand side given the current partial
assignment; a constraint whose interval cannot meet its bound prunes
the branch, and a free variable whose value would make some constraint
unmeetable is forced (unit propagation).  Search effort is capped by a
node budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import SolverBudgetExceededError
from repro.csp.constraints import ConstraintSystem, Relation
from repro.obs.clock import Clock, SystemClock

__all__ = ["ExactConfig", "ExactResult", "ExactSolver"]

_UNSET = -1


@dataclass(frozen=True)
class ExactConfig:
    """Search limits for the exact solver.

    Attributes:
        node_budget: maximum number of search nodes (decisions plus
            propagations counted per decision) before giving up.
    """

    node_budget: int = 500_000


@dataclass
class ExactResult:
    """Outcome of an exact solve.

    Attributes:
        satisfiable: whether a solution exists.
        assignment: one satisfying assignment if satisfiable.
        nodes: search nodes explored.
        backtracks: decisions undone after both values failed — the
            "wasted work" measure the observability layer tracks.
        elapsed: clock seconds (wall time under the default clock).
    """

    satisfiable: bool
    assignment: list[int] | None
    nodes: int
    elapsed: float
    backtracks: int = 0


class _Trail:
    """Undo log for chronological backtracking."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list[int] = []

    def mark(self) -> int:
        return len(self.entries)

    def push(self, var: int) -> None:
        self.entries.append(var)

    def undo_to(self, mark: int, solver: "ExactSolver") -> None:
        while len(self.entries) > mark:
            solver._unassign(self.entries.pop())


class ExactSolver:
    """Systematic DFS + propagation over a :class:`ConstraintSystem`."""

    def __init__(
        self,
        system: ConstraintSystem,
        config: ExactConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.system = system
        self.config = config or ExactConfig()
        self.clock = clock or SystemClock()
        # Satisfiability is defined by the hard constraints only; soft
        # constraints are an optimization target for the local search.
        self._constraints = system.hard_constraints
        self._assignment = [_UNSET] * system.num_vars
        self._var_constraints: list[list[tuple[int, int]]] = [
            [] for _ in range(system.num_vars)
        ]
        for constraint_id, constraint in enumerate(self._constraints):
            for coef, var in constraint.terms:
                self._var_constraints[var].append((constraint_id, coef))
        # Reachable interval of each constraint's lhs.
        self._lhs_min = [0] * len(self._constraints)
        self._lhs_max = [0] * len(self._constraints)
        for constraint_id, constraint in enumerate(self._constraints):
            low = high = 0
            for coef, _ in constraint.terms:
                if coef > 0:
                    high += coef
                else:
                    low += coef
            self._lhs_min[constraint_id] = low
            self._lhs_max[constraint_id] = high
        self._nodes = 0
        self._backtracks = 0

    # -- public API ------------------------------------------------------

    def solve(self) -> ExactResult:
        """Search for a satisfying assignment or prove none exists.

        Raises:
            SolverBudgetExceededError: the node budget ran out before
                the search finished.
        """
        start_time = self.clock.now()
        self._nodes = 0
        self._backtracks = 0
        trail = _Trail()

        # Root propagation: conflicts here mean trivially unsat.
        if not self._propagate(trail):
            return ExactResult(
                satisfiable=False,
                assignment=None,
                nodes=self._nodes,
                elapsed=self.clock.now() - start_time,
            )
        found = self._dfs(trail)
        result = ExactResult(
            satisfiable=found,
            assignment=list(self._assignment) if found else None,
            nodes=self._nodes,
            elapsed=self.clock.now() - start_time,
            backtracks=self._backtracks,
        )
        trail.undo_to(0, self)
        return result

    def count_solutions(self, limit: int = 1_000) -> int:
        """Count satisfying assignments, stopping at ``limit``.

        Useful for verifying that a segmentation problem's constraints
        pin down a *unique* assignment (the paper's clean-data case).
        Unconstrained variables multiply the count combinatorially, so
        the limit guards against degenerate blow-ups.

        Raises:
            SolverBudgetExceededError: the node budget ran out.
        """
        self._nodes = 0
        trail = _Trail()
        if not self._propagate(trail):
            trail.undo_to(0, self)
            return 0
        count = self._count_dfs(trail, limit)
        trail.undo_to(0, self)
        return count

    def _count_dfs(self, trail: _Trail, limit: int) -> int:
        self._nodes += 1
        if self._nodes > self.config.node_budget:
            raise SolverBudgetExceededError(
                f"exact solver exceeded {self.config.node_budget} nodes"
            )
        var = self._pick_branch_var()
        if var is None:
            return 1
        total = 0
        for value in (1, 0):
            mark = trail.mark()
            if self._assign(var, value, trail) and self._propagate(trail):
                total += self._count_dfs(trail, limit - total)
            trail.undo_to(mark, self)
            if total >= limit:
                return limit
        return total

    # -- assignment bookkeeping -------------------------------------------

    def _assign(self, var: int, value: int, trail: _Trail) -> bool:
        """Assign and update intervals; False on immediate conflict."""
        self._assignment[var] = value
        trail.push(var)
        for constraint_id, coef in self._var_constraints[var]:
            # The variable's contribution collapses from its range to
            # coef*value.
            if coef > 0:
                if value:
                    self._lhs_min[constraint_id] += coef
                else:
                    self._lhs_max[constraint_id] -= coef
            else:
                if value:
                    self._lhs_max[constraint_id] += coef
                else:
                    self._lhs_min[constraint_id] -= coef
            if not self._interval_feasible(constraint_id):
                return False
        return True

    def _unassign(self, var: int) -> None:
        value = self._assignment[var]
        self._assignment[var] = _UNSET
        for constraint_id, coef in self._var_constraints[var]:
            if coef > 0:
                if value:
                    self._lhs_min[constraint_id] -= coef
                else:
                    self._lhs_max[constraint_id] += coef
            else:
                if value:
                    self._lhs_max[constraint_id] -= coef
                else:
                    self._lhs_min[constraint_id] += coef

    def _interval_feasible(self, constraint_id: int) -> bool:
        constraint = self._constraints[constraint_id]
        low = self._lhs_min[constraint_id]
        high = self._lhs_max[constraint_id]
        if constraint.relation is Relation.LE:
            return low <= constraint.bound
        if constraint.relation is Relation.GE:
            return high >= constraint.bound
        return low <= constraint.bound <= high

    # -- propagation -------------------------------------------------------

    def _propagate(self, trail: _Trail) -> bool:
        """Fixed-point unit propagation; False on conflict."""
        changed = True
        while changed:
            changed = False
            for constraint_id, constraint in enumerate(self._constraints):
                if not self._interval_feasible(constraint_id):
                    return False
                forced = self._forced_literals(constraint_id)
                for var, value in forced:
                    if self._assignment[var] == _UNSET:
                        if not self._assign(var, value, trail):
                            return False
                        changed = True
                    elif self._assignment[var] != value:
                        return False
        return True

    def _forced_literals(self, constraint_id: int) -> list[tuple[int, int]]:
        """Free variables whose value is forced by this constraint.

        A free variable is forced to ``v`` when setting it to ``1 - v``
        would push the reachable interval outside the bound.
        """
        constraint = self._constraints[constraint_id]
        low = self._lhs_min[constraint_id]
        high = self._lhs_max[constraint_id]
        bound = constraint.bound
        relation = constraint.relation
        forced: list[tuple[int, int]] = []
        for coef, var in constraint.terms:
            if self._assignment[var] != _UNSET:
                continue
            # Interval if var = 1 and if var = 0.
            if coef > 0:
                low_if_1, high_if_1 = low + coef, high
                low_if_0, high_if_0 = low, high - coef
            else:
                low_if_1, high_if_1 = low, high + coef
                low_if_0, high_if_0 = low - coef, high
            ok_1 = _feasible(relation, bound, low_if_1, high_if_1)
            ok_0 = _feasible(relation, bound, low_if_0, high_if_0)
            if ok_1 and not ok_0:
                forced.append((var, 1))
            elif ok_0 and not ok_1:
                forced.append((var, 0))
        return forced

    # -- search -------------------------------------------------------------

    def _dfs(self, trail: _Trail) -> bool:
        self._nodes += 1
        if self._nodes > self.config.node_budget:
            raise SolverBudgetExceededError(
                f"exact solver exceeded {self.config.node_budget} nodes"
            )
        var = self._pick_branch_var()
        if var is None:
            return True  # all assigned, propagation kept feasibility
        for value in (1, 0):
            mark = trail.mark()
            if self._assign(var, value, trail) and self._propagate(trail):
                if self._dfs(trail):
                    return True
            trail.undo_to(mark, self)
        self._backtracks += 1
        return False

    def _pick_branch_var(self) -> int | None:
        """Branch on the free variable in the tightest constraint."""
        best_var: int | None = None
        best_slack = float("inf")
        for constraint_id, constraint in enumerate(self._constraints):
            free = [
                var
                for _, var in constraint.terms
                if self._assignment[var] == _UNSET
            ]
            if not free:
                continue
            if constraint.relation is Relation.LE:
                slack = constraint.bound - self._lhs_min[constraint_id]
            elif constraint.relation is Relation.GE:
                slack = self._lhs_max[constraint_id] - constraint.bound
            else:
                slack = min(
                    constraint.bound - self._lhs_min[constraint_id],
                    self._lhs_max[constraint_id] - constraint.bound,
                )
            slack = slack + len(free) * 0.01
            if slack < best_slack:
                best_slack = slack
                best_var = free[0]
        if best_var is not None:
            return best_var
        # No constraint mentions a free variable; any free var is
        # unconstrained — assign the first, if any.
        for var, value in enumerate(self._assignment):
            if value == _UNSET:
                return var
        return None


def _feasible(relation: Relation, bound: int, low: int, high: int) -> bool:
    if relation is Relation.LE:
        return low <= bound
    if relation is Relation.GE:
        return high >= bound
    return low <= bound <= high

"""Resilient retrieval: retries, budgets, circuit breaking, health.

The plain :class:`~repro.crawl.fetcher.SiteFetcher` models a perfect
network; :class:`ResilientFetcher` wraps it with the defenses a real
crawl needs and the accounting a real evaluation wants:

* **retry with exponential backoff + jitter** for transient failures
  (:class:`RetryPolicy`); all delays are *simulated* — charged to a
  deterministic clock, never slept — so chaos runs are fast and
  exactly reproducible;
* **per-site budgets** (:class:`CrawlBudget`): a request ceiling and a
  simulated deadline, after which remaining URLs become recorded gaps
  instead of work;
* **a circuit breaker per URL-class** (:class:`CircuitBreaker`): after
  enough consecutive failures among URLs of one shape
  (``site-p#-detail#.html``), further fetches of that shape fail fast
  until a cooldown elapses, protecting the budget from a dead server
  section;
* **a structured health report** (:class:`CrawlHealth`): every retry,
  recovery, gap (with its reason) and degradation step, so downstream
  evaluation can condition segmentation accuracy on crawl
  completeness.

Nothing here raises on failure: a URL that cannot be obtained within
policy becomes ``None`` plus a health entry, and the pipeline carries
on with what it got — the degradation ladder described in
``docs/robustness.md``.

When an :class:`~repro.obs.Observability` bundle is active, every
request / retry / recovery / gap is also mirrored into ``crawl.*``
counters, and :func:`~repro.crawl.crawler.crawl_site` links the whole
crawl to a ``crawl.site`` span whose attributes summarize the final
:class:`CrawlHealth` — see ``docs/observability.md``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.core.exceptions import ConfigError, FetchError, TransientFetchError
from repro.crawl.fetcher import SiteFetcher
from repro.obs import Observability, current as current_obs
from repro.sitegen.faults import stable_unit
from repro.webdoc.page import Page

__all__ = [
    "RetryPolicy",
    "CrawlBudget",
    "CircuitBreaker",
    "CrawlHealth",
    "ResilientFetcher",
    "url_class",
]

#: Gap reasons recorded in :class:`CrawlHealth`.
GAP_PERMANENT = "permanent"
GAP_RETRIES_EXHAUSTED = "retries_exhausted"
GAP_CIRCUIT_OPEN = "circuit_open"
GAP_BUDGET = "budget_exhausted"


def url_class(url: str) -> str:
    """The URL's shape class: digit runs collapsed to ``#``.

    ``ohio-p0-detail7.html`` and ``ohio-p1-detail3.html`` share the
    class ``ohio-p#-detail#.html`` — pages served by the same endpoint,
    which is the granularity at which servers break.
    """
    return re.sub(r"\d+", "#", url)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Attributes:
        max_attempts: total tries per URL (first attempt included).
        base_delay_s: simulated delay before the first retry.
        multiplier: backoff growth factor per retry.
        max_delay_s: backoff ceiling.
        jitter: +/- fraction of the delay drawn deterministically from
            ``(seed, url, attempt)`` — de-synchronizes retries the way
            random jitter would, without sacrificing reproducibility.
        seed: jitter seed.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.1
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must lie in [0, 1]")
        if self.base_delay_s < 0 or self.max_delay_s < 0 or self.multiplier < 1:
            raise ConfigError("delays must be >= 0 and multiplier >= 1")

    def delay_before(self, url: str, attempt: int) -> float:
        """Simulated backoff before retry ``attempt`` (2-based) of ``url``."""
        exponent = max(0, attempt - 2)
        delay = min(self.base_delay_s * self.multiplier**exponent, self.max_delay_s)
        if self.jitter == 0.0:
            return delay
        draw = stable_unit(f"{self.seed}:{url}:{attempt}")
        return delay * (1.0 - self.jitter + 2.0 * self.jitter * draw)


@dataclass(frozen=True)
class CrawlBudget:
    """Per-site spending limits, in requests and simulated seconds.

    Attributes:
        max_requests: fetch-attempt ceiling (None = unlimited).
        deadline_s: simulated wall-clock ceiling (None = unlimited).
        request_cost_s: base simulated cost per attempt, before the
            transport's per-URL latency is added.
    """

    max_requests: int | None = None
    deadline_s: float | None = None
    request_cost_s: float = 0.01

    def __post_init__(self) -> None:
        if self.max_requests is not None and self.max_requests < 1:
            raise ConfigError("max_requests must be >= 1 (or None)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError("deadline_s must be > 0 (or None)")


@dataclass
class _BreakerState:
    consecutive_failures: int = 0
    open_until: float = 0.0
    is_open: bool = False


class CircuitBreaker:
    """Fail-fast switch per URL-class.

    After ``failure_threshold`` consecutive failures within one class,
    the class opens: fetches are refused without touching the wire
    until ``cooldown_s`` of simulated time passes, then one probe is
    allowed through (half-open); its outcome closes or re-opens the
    circuit.
    """

    def __init__(
        self, failure_threshold: int = 5, cooldown_s: float = 30.0
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.trips = 0
        self._states: dict[str, _BreakerState] = {}

    def _state(self, cls: str) -> _BreakerState:
        return self._states.setdefault(cls, _BreakerState())

    def allows(self, cls: str, now: float) -> bool:
        """May a fetch of class ``cls`` proceed at simulated time ``now``?"""
        state = self._state(cls)
        if not state.is_open:
            return True
        if now >= state.open_until:
            # Half-open: let one probe through; record_* decides fate.
            return True
        return False

    def record_success(self, cls: str) -> None:
        state = self._state(cls)
        state.consecutive_failures = 0
        state.is_open = False

    def record_failure(self, cls: str, now: float) -> None:
        state = self._state(cls)
        state.consecutive_failures += 1
        if state.consecutive_failures >= self.failure_threshold:
            if not state.is_open or now >= state.open_until:
                self.trips += 1
            state.is_open = True
            state.open_until = now + self.cooldown_s

    def open_classes(self, now: float) -> list[str]:
        """URL-classes currently refusing traffic."""
        return sorted(
            cls
            for cls, state in self._states.items()
            if state.is_open and now < state.open_until
        )


@dataclass
class CrawlHealth:
    """Structured account of how a crawl went.

    Attached to :class:`~repro.core.pipeline.SiteRun` (and, summarized,
    to each ``Segmentation.meta``) so evaluation can condition accuracy
    on crawl completeness.

    Attributes:
        requests: fetch attempts that reached the transport.
        retries: attempts beyond the first, per URL, summed.
        recovered: URLs obtained after at least one transient failure.
        transient_failures: transient errors observed in total.
        gaps: URL -> gap reason, for every URL given up on.
        quarantined_pages: list-page URLs dropped from the sample
            because their crawl degenerated (no fetchable links).
        fallbacks: degradation steps the pipeline took, in order
            (e.g. ``"whole_page_template"``, ``"single_list_page"``).
        breaker_trips: circuit-breaker activations.
        budget_exhausted: a budget limit stopped the crawl early.
        simulated_elapsed_s: total simulated time spent (request costs,
            injected latency, backoff delays).
    """

    requests: int = 0
    retries: int = 0
    recovered: int = 0
    transient_failures: int = 0
    gaps: dict[str, str] = field(default_factory=dict)
    quarantined_pages: list[str] = field(default_factory=list)
    fallbacks: list[str] = field(default_factory=list)
    breaker_trips: int = 0
    budget_exhausted: bool = False
    simulated_elapsed_s: float = 0.0

    @property
    def gap_count(self) -> int:
        return len(self.gaps)

    @property
    def recovery_rate(self) -> float:
        """Fraction of transiently-failing URLs eventually obtained."""
        attempted = self.recovered + sum(
            1 for reason in self.gaps.values() if reason == GAP_RETRIES_EXHAUSTED
        )
        return self.recovered / attempted if attempted else 1.0

    def record_gap(self, url: str, reason: str) -> None:
        self.gaps[url] = reason

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (stable key order, gaps sorted by URL)."""
        return {
            "requests": self.requests,
            "retries": self.retries,
            "recovered": self.recovered,
            "transient_failures": self.transient_failures,
            "gap_count": self.gap_count,
            "gaps": dict(sorted(self.gaps.items())),
            "quarantined_pages": list(self.quarantined_pages),
            "fallbacks": list(self.fallbacks),
            "breaker_trips": self.breaker_trips,
            "budget_exhausted": self.budget_exhausted,
            "recovery_rate": round(self.recovery_rate, 4),
            "simulated_elapsed_s": round(self.simulated_elapsed_s, 4),
        }

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"requests={self.requests} retries={self.retries} "
            f"recovered={self.recovered} gaps={self.gap_count} "
            f"quarantined={len(self.quarantined_pages)} "
            f"trips={self.breaker_trips} "
            f"budget_exhausted={self.budget_exhausted}"
        )


class ResilientFetcher:
    """A :class:`SiteFetcher` that survives a hostile transport.

    ``try_fetch`` never raises: it retries transient failures with
    backoff, respects the request/deadline budget, fails fast on open
    circuits, and books everything into a :class:`CrawlHealth`.

    Args:
        site: page source (``fetch(url) -> Page``); typically a
            :class:`~repro.sitegen.faults.FaultyTransport`.  If it
            exposes ``latency_of(url)``, that simulated latency is
            charged against the deadline budget.
        retry: retry/backoff policy.
        budget: per-site spending limits.
        breaker: circuit breaker (one is created if omitted).
        health: health report to book into (created if omitted).
        obs: observability bundle; every request, retry, recovery and
            gap is mirrored into ``crawl.*`` counters alongside the
            :class:`CrawlHealth` bookkeeping (defaults to the
            installed bundle, a no-op unless one is active).
    """

    def __init__(
        self,
        site,
        retry: RetryPolicy | None = None,
        budget: CrawlBudget | None = None,
        breaker: CircuitBreaker | None = None,
        health: CrawlHealth | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.fetcher = SiteFetcher(site)
        self.retry = retry or RetryPolicy()
        self.budget = budget or CrawlBudget()
        self.breaker = breaker or CircuitBreaker()
        self.health = health or CrawlHealth()
        self.obs = obs if obs is not None else current_obs()
        self.clock = 0.0  #: simulated seconds elapsed

    # -- internals -----------------------------------------------------------

    def _latency_of(self, url: str) -> float:
        latency = getattr(self.fetcher.site, "latency_of", None)
        return latency(url) if latency is not None else 0.0

    def _budget_allows(self) -> bool:
        budget = self.budget
        if budget.max_requests is not None and (
            self.health.requests >= budget.max_requests
        ):
            return False
        if budget.deadline_s is not None and self.clock >= budget.deadline_s:
            return False
        return True

    def _spend(self, seconds: float) -> None:
        self.clock += seconds
        self.health.simulated_elapsed_s = self.clock

    # -- public API ----------------------------------------------------------

    def try_fetch(self, url: str) -> Page | None:
        """Fetch ``url`` within policy; ``None`` plus a health entry on
        failure.  Never raises."""
        # Cache hits are free: no budget, breaker or accounting impact.
        cached = self.fetcher.cached(url)
        if cached is not None:
            return cached
        if url in self.health.gaps:
            return None

        cls = url_class(url)
        gaps = self.obs.counter("crawl.gaps")
        had_transient = False
        for attempt in range(1, self.retry.max_attempts + 1):
            if not self._budget_allows():
                self.health.budget_exhausted = True
                self.health.record_gap(url, GAP_BUDGET)
                gaps.inc()
                return None
            if not self.breaker.allows(cls, self.clock):
                self.health.record_gap(url, GAP_CIRCUIT_OPEN)
                gaps.inc()
                return None
            if attempt > 1:
                self._spend(self.retry.delay_before(url, attempt))
                self.health.retries += 1
                self.obs.counter("crawl.retries").inc()

            self.health.requests += 1
            self.obs.counter("crawl.requests").inc()
            self._spend(self.budget.request_cost_s + self._latency_of(url))
            try:
                page = self.fetcher.fetch(url)
            except TransientFetchError:
                had_transient = True
                self.health.transient_failures += 1
                self.obs.counter("crawl.transient_failures").inc()
                self.breaker.record_failure(cls, self.clock)
                self.health.breaker_trips = self.breaker.trips
                continue
            except FetchError:
                self.breaker.record_failure(cls, self.clock)
                self.health.breaker_trips = self.breaker.trips
                self.health.record_gap(url, GAP_PERMANENT)
                gaps.inc()
                return None
            self.breaker.record_success(cls)
            if had_transient:
                self.health.recovered += 1
                self.obs.counter("crawl.recovered").inc()
            return page

        self.health.record_gap(url, GAP_RETRIES_EXHAUSTED)
        gaps.inc()
        return None

    def fetch(self, url: str) -> Page:
        """Strict variant of :meth:`try_fetch`.

        Raises:
            FetchError: the URL could not be obtained within policy
                (the gap reason is in the message).
        """
        page = self.try_fetch(url)
        if page is None:
            reason = self.health.gaps.get(url, GAP_PERMANENT)
            raise FetchError(f"gave up on {url!r}: {reason}")
        return page

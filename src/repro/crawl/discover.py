"""Automatic site discovery from the entry point.

The paper's Section 3 vision starts one level above the pipeline's
inputs: "the user provides a pointer to the top-level page — index
page or a form — and the system automatically navigates the site,
retrieving all pages, classifying them as list and detail pages".

:func:`discover_site` implements that navigation over a fetcher:

1. follow each link off the entry page;
2. from every landing page, walk its "Next" chain (the paper's own
   suggestion: "One method is to simply follow the 'Next' link, and
   download the next page of results");
3. accept the first chain whose pages all crawl like list pages —
   i.e. each links to a sizeable cluster of same-template (detail)
   pages.

The result is exactly what
:meth:`~repro.core.pipeline.SegmentationPipeline.segment_site` wants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import CrawlError
from repro.crawl.classifier import ClassifierConfig
from repro.crawl.crawler import CrawlResult, Crawler, extract_links
from repro.crawl.fetcher import SiteFetcher
from repro.webdoc.html import EventKind, lex_html
from repro.webdoc.page import Page

__all__ = ["DiscoveredSite", "discover_site", "extract_links_with_text", "follow_next_chain"]


def extract_links_with_text(html: str) -> list[tuple[str, str]]:
    """``(href, anchor text)`` pairs in document order.

    Anchor text is the visible text up to the matching ``</a>``
    (whitespace-normalized).  Unlike
    :func:`~repro.crawl.crawler.extract_links`, the same href may
    appear more than once when its anchors carry different texts: the
    caller may care about each anchor's text separately.  Only exact
    ``(href, text)`` duplicates are collapsed.

    Real-crawl HTML is messy, so the walk is defensive:

    - a new ``<a>`` before the previous one closed implicitly closes
      it (its pair is emitted with the text seen so far);
    - an anchor still open at end of input is emitted, not dropped;
    - fragment-only (``#…``) and empty hrefs never produce pairs, and
      neither do anchors whose visible text is empty.
    """
    pairs: list[tuple[str, str]] = []
    seen: set[tuple[str, str]] = set()
    current_href: str | None = None
    current_text: list[str] = []

    def flush() -> None:
        nonlocal current_href, current_text
        if current_href is not None:
            text = " ".join(" ".join(current_text).split())
            pair = (current_href, text)
            if text and pair not in seen:
                seen.add(pair)
                pairs.append(pair)
        current_href = None
        current_text = []

    for event in lex_html(html):
        if event.kind is EventKind.TAG_OPEN and event.data == "a":
            flush()
            href = event.attrs.get("href", "").strip()
            if href and not href.startswith("#"):
                current_href = href
        elif event.kind is EventKind.TAG_CLOSE and event.data == "a":
            flush()
        elif event.kind is EventKind.TEXT and current_href is not None:
            current_text.append(event.data)
    flush()
    return pairs


def follow_next_chain(
    fetcher: SiteFetcher, start: Page, max_pages: int = 10
) -> list[Page]:
    """The page plus everything its "Next" links lead to, in order."""
    chain = [start]
    seen = {start.url}
    while len(chain) < max_pages:
        next_url = None
        for href, text in extract_links_with_text(chain[-1].html):
            if text.strip().lower() == "next":
                next_url = href
                break
        if next_url is None or next_url in seen:
            break
        page = fetcher.try_fetch(next_url)
        if page is None:
            break
        seen.add(page.url)
        chain.append(page)
    return chain


@dataclass
class DiscoveredSite:
    """What automatic navigation found.

    Attributes:
        list_pages: the results chain, in Next order.
        crawl_results: per list page, its crawled/classified details.
    """

    list_pages: list[Page] = field(default_factory=list)
    crawl_results: list[CrawlResult] = field(default_factory=list)

    @property
    def detail_pages_per_list(self) -> list[list[Page]]:
        return [result.detail_pages for result in self.crawl_results]


def discover_site(
    fetcher: SiteFetcher,
    index_url: str,
    min_details: int = 2,
    max_chain: int = 10,
    classifier_config: ClassifierConfig | None = None,
) -> DiscoveredSite:
    """Navigate from the entry page to the pipeline's inputs.

    Args:
        fetcher: the page source.
        index_url: the user's "pointer to the top-level page".
        min_details: a chain page must link to at least this many
            same-template pages to count as a list page.
        max_chain: Next-chain length cap.
        classifier_config: detail-classifier settings.

    Raises:
        CrawlError: no link off the entry page leads to a valid
            results chain.
    """
    index = fetcher.fetch(index_url)
    crawler = Crawler(fetcher, classifier_config)

    for url in extract_links(index.html):
        start = fetcher.try_fetch(url)
        if start is None:
            continue
        chain = follow_next_chain(fetcher, start, max_chain)
        results: list[CrawlResult] = []
        for page in chain:
            try:
                result = crawler.collect(page)
            except CrawlError:
                results = []
                break
            if len(result.detail_pages) < min_details:
                results = []
                break
            results.append(result)
        if results:
            return DiscoveredSite(list_pages=chain, crawl_results=results)

    raise CrawlError(
        f"no results chain found from entry page {index_url!r}"
    )

"""Site navigation: fetching, crawling, list/detail classification."""

from repro.crawl.classifier import ClassifierConfig, PageClassifier, page_similarity
from repro.crawl.crawler import (
    CrawlResult,
    Crawler,
    crawl_generated_site,
    extract_links,
)
from repro.crawl.discover import (
    DiscoveredSite,
    discover_site,
    extract_links_with_text,
    follow_next_chain,
)
from repro.crawl.fetcher import SiteFetcher

__all__ = [
    "ClassifierConfig",
    "CrawlResult",
    "Crawler",
    "DiscoveredSite",
    "PageClassifier",
    "SiteFetcher",
    "crawl_generated_site",
    "discover_site",
    "extract_links",
    "extract_links_with_text",
    "follow_next_chain",
    "page_similarity",
]

"""Site navigation: fetching, crawling, list/detail classification,
and the resilient retrieval layer (retries, budgets, circuit breaking)."""

from repro.crawl.classifier import ClassifierConfig, PageClassifier, page_similarity
from repro.crawl.crawler import (
    CrawlResult,
    Crawler,
    SiteCrawl,
    crawl_generated_site,
    crawl_site,
    extract_links,
)
from repro.crawl.discover import (
    DiscoveredSite,
    discover_site,
    extract_links_with_text,
    follow_next_chain,
)
from repro.crawl.fetcher import DirectorySite, SiteFetcher
from repro.crawl.resilient import (
    CircuitBreaker,
    CrawlBudget,
    CrawlHealth,
    ResilientFetcher,
    RetryPolicy,
    url_class,
)

__all__ = [
    "CircuitBreaker",
    "ClassifierConfig",
    "CrawlBudget",
    "CrawlHealth",
    "CrawlResult",
    "Crawler",
    "DirectorySite",
    "DiscoveredSite",
    "PageClassifier",
    "ResilientFetcher",
    "RetryPolicy",
    "SiteCrawl",
    "SiteFetcher",
    "crawl_generated_site",
    "crawl_site",
    "discover_site",
    "extract_links",
    "extract_links_with_text",
    "follow_next_chain",
    "page_similarity",
    "url_class",
]

"""Template-similarity page classification.

The paper (Section 6.1) proposes finding detail pages among all the
pages linked from a list page by clustering: "The detail pages,
generated from the same template, will look similar to one another and
different from advertisement pages, which probably don't share any
common structure."

:class:`PageClassifier` implements that idea: pages are compared by
Jaccard similarity over their token-text sets (template chrome
dominates these sets, so pages from one template score high against
each other), clustered greedily, and the largest cluster is taken to
be the detail pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.webdoc.page import Page

__all__ = ["ClassifierConfig", "PageClassifier", "page_similarity"]


def page_similarity(first: Page, second: Page) -> float:
    """Jaccard similarity of two pages' token-text sets, in [0, 1].

    The sets come from :meth:`Page.token_text_set`, which tokenizes
    and builds the set once per page; repeated pairwise calls (the
    classifier's clustering loop is O(n²) in comparisons) reuse the
    cached sets instead of re-tokenizing.
    """
    tokens_a = first.token_text_set()
    tokens_b = second.token_text_set()
    if not tokens_a and not tokens_b:
        return 1.0
    union = tokens_a | tokens_b
    if not union:
        return 0.0
    return len(tokens_a & tokens_b) / len(union)


@dataclass(frozen=True)
class ClassifierConfig:
    """Clustering knobs.

    Attributes:
        similarity_threshold: minimum average similarity to join an
            existing cluster.  Same-template pages typically score
            0.6+; unrelated pages score well under 0.3.
    """

    similarity_threshold: float = 0.45


class PageClassifier:
    """Group pages by template; pick out the detail-page cluster."""

    def __init__(self, config: ClassifierConfig | None = None) -> None:
        self.config = config or ClassifierConfig()

    def clusters(self, pages: list[Page]) -> list[list[Page]]:
        """Greedy agglomeration: each page joins the most similar
        existing cluster above threshold, else founds a new one."""
        groups: list[list[Page]] = []
        for page in pages:
            best_group: list[Page] | None = None
            best_score = self.config.similarity_threshold
            for group in groups:
                score = sum(
                    page_similarity(page, member) for member in group
                ) / len(group)
                if score >= best_score:
                    best_score = score
                    best_group = group
            if best_group is None:
                groups.append([page])
            else:
                best_group.append(page)
        return groups

    def split_details(
        self, pages: list[Page]
    ) -> tuple[list[Page], list[Page]]:
        """Partition ``pages`` into (detail pages, everything else).

        The largest cluster is taken to be the detail pages (ties go
        to the earlier cluster, i.e. the one whose first page appears
        first in link order).  Input order is preserved within each
        part.
        """
        if not pages:
            return [], []
        groups = self.clusters(pages)
        detail_group = max(groups, key=len)
        detail_set = {id(page) for page in detail_group}
        details = [page for page in pages if id(page) in detail_set]
        others = [page for page in pages if id(page) not in detail_set]
        return details, others

"""Link-following crawler for list pages.

Automates the step the paper performed by hand ("From each site, we
randomly selected two list pages and manually downloaded the detail
pages"): given a list page, follow every link in document order,
fetch what resolves, and use the
:class:`~repro.crawl.classifier.PageClassifier` to separate the detail
pages from advertisements and other chrome targets.  Detail pages are
returned in link order, which is the record order the segmenters
assume.

Failure handling is two-tier: :meth:`Crawler.try_collect` records a
degenerate page (nothing fetchable) in the result instead of raising,
and :func:`crawl_generated_site` crawls every list page even when some
fail — one dead results page quarantines that page, not the site.
:func:`crawl_site` is the fault-aware variant: it routes every fetch
through a :class:`~repro.crawl.resilient.ResilientFetcher` (optionally
over a :class:`~repro.sitegen.faults.FaultPlan` transport) and returns
a :class:`SiteCrawl` carrying the
:class:`~repro.crawl.resilient.CrawlHealth` report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import CrawlError
from repro.crawl.classifier import ClassifierConfig, PageClassifier
from repro.crawl.fetcher import SiteFetcher
from repro.crawl.resilient import (
    CrawlBudget,
    CrawlHealth,
    ResilientFetcher,
    RetryPolicy,
)
from repro.obs import Observability, current as current_obs
from repro.sitegen.faults import FaultPlan, FaultyTransport
from repro.sitegen.site import GeneratedSite
from repro.webdoc.html import EventKind, lex_html
from repro.webdoc.page import Page

__all__ = [
    "CrawlResult",
    "Crawler",
    "SiteCrawl",
    "crawl_generated_site",
    "crawl_site",
    "extract_links",
]


def extract_links(html: str) -> list[str]:
    """Every ``href`` target in document order, first occurrence only.

    Fragment-only links are skipped; a URL linked twice (a row's name
    link and its "More Info" link) is reported once, at its first
    position — preserving record order.
    """
    seen: set[str] = set()
    links: list[str] = []
    for event in lex_html(html):
        if event.kind is not EventKind.TAG_OPEN or event.data != "a":
            continue
        href = event.attrs.get("href", "").strip()
        if not href or href.startswith("#"):
            continue
        if href not in seen:
            seen.add(href)
            links.append(href)
    return links


@dataclass
class CrawlResult:
    """What one list-page crawl produced.

    Attributes:
        list_page: the crawled list page.
        detail_pages: the classified detail pages, in link order.
        other_pages: fetched pages judged not to be detail pages.
        dead_links: hrefs that could not be obtained (dead, budget,
            circuit — see the fetcher's health report for reasons).
        error: set when the crawl degenerated (no link fetchable at
            all); the page should be quarantined, not segmented.
    """

    list_page: Page
    detail_pages: list[Page] = field(default_factory=list)
    other_pages: list[Page] = field(default_factory=list)
    dead_links: list[str] = field(default_factory=list)
    error: str | None = None

    @property
    def failed(self) -> bool:
        """Did this page's crawl degenerate entirely?"""
        return self.error is not None


class Crawler:
    """Fetch and classify everything a list page links to."""

    def __init__(
        self,
        fetcher: SiteFetcher | ResilientFetcher,
        classifier_config: ClassifierConfig | None = None,
    ) -> None:
        self.fetcher = fetcher
        self.classifier = PageClassifier(classifier_config)

    def try_collect(self, list_page: Page) -> CrawlResult:
        """Crawl one list page, recording failure instead of raising.

        A page whose links are all dead comes back with ``error`` set
        and empty page lists — a quarantinable partial result.
        """
        result = CrawlResult(list_page=list_page)
        fetched: list[Page] = []
        for url in extract_links(list_page.html):
            if url == list_page.url:
                continue
            page = self.fetcher.try_fetch(url)
            if page is None:
                result.dead_links.append(url)
            else:
                fetched.append(page)
        if not fetched:
            result.error = (
                f"list page {list_page.url!r} links to no fetchable pages"
            )
            return result
        details, others = self.classifier.split_details(fetched)
        result.detail_pages = details
        result.other_pages = others
        return result

    def collect(self, list_page: Page) -> CrawlResult:
        """Strict variant of :meth:`try_collect`.

        Raises:
            CrawlError: the page links to nothing fetchable at all.
        """
        result = self.try_collect(list_page)
        if result.failed:
            raise CrawlError(result.error)
        return result


@dataclass
class SiteCrawl:
    """Everything a fault-aware site crawl produced.

    ``list_pages``/``detail_pages_per_list`` hold only the pages that
    survived quarantine, shaped exactly how
    :meth:`~repro.core.pipeline.SegmentationPipeline.segment_site`
    wants them; ``results`` keeps every per-page outcome (including
    quarantined ones) and ``health`` the full retry/gap accounting.
    """

    list_pages: list[Page] = field(default_factory=list)
    detail_pages_per_list: list[list[Page]] = field(default_factory=list)
    results: list[CrawlResult] = field(default_factory=list)
    health: CrawlHealth = field(default_factory=CrawlHealth)


def crawl_generated_site(
    site: GeneratedSite,
    classifier_config: ClassifierConfig | None = None,
) -> tuple[list[Page], list[list[Page]], list[CrawlResult]]:
    """Crawl every list page of a simulator site.

    Returns the tuple the segmentation pipeline wants — (list pages,
    detail pages per list page) — plus the raw crawl results for
    inspection.  A list page whose links are all dead no longer aborts
    the site: its result carries ``error`` and empty detail pages.
    """
    fetcher = SiteFetcher(site)
    crawler = Crawler(fetcher, classifier_config)
    results = [crawler.try_collect(page) for page in site.list_pages]
    return (
        list(site.list_pages),
        [result.detail_pages for result in results],
        results,
    )


def crawl_site(
    site: GeneratedSite,
    classifier_config: ClassifierConfig | None = None,
    *,
    fault_plan: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    budget: CrawlBudget | None = None,
    obs: Observability | None = None,
) -> SiteCrawl:
    """Crawl a simulator site through the resilient retrieval stack.

    Every detail-page fetch goes through a
    :class:`~repro.crawl.resilient.ResilientFetcher` — over a
    :class:`~repro.sitegen.faults.FaultyTransport` when ``fault_plan``
    is given — so transient faults are retried, budgets enforced, and
    every unresolved URL recorded as a gap.  Degenerate list pages are
    quarantined (dropped from the sample, listed in
    ``health.quarantined_pages``) instead of aborting the site.

    The crawl is traced as one ``crawl.site`` span (one
    ``crawl.list_page`` child per list page), whose final attributes
    mirror the headline numbers of the returned
    :class:`~repro.crawl.resilient.CrawlHealth` report — the span tree
    and the health report describe the same events at two zoom levels.
    """
    obs = obs if obs is not None else current_obs()
    transport = site if fault_plan is None else FaultyTransport(site, fault_plan)
    fetcher = ResilientFetcher(transport, retry=retry, budget=budget, obs=obs)
    crawler = Crawler(fetcher, classifier_config)
    crawl = SiteCrawl(health=fetcher.health)

    with obs.span(
        "crawl.site", list_pages=len(site.list_pages)
    ) as site_span:
        for list_page in site.list_pages:
            with obs.span("crawl.list_page", url=list_page.url) as page_span:
                result = crawler.try_collect(list_page)
                page_span.attributes["detail_pages"] = len(result.detail_pages)
                page_span.attributes["dead_links"] = len(result.dead_links)
                crawl.results.append(result)
                if result.failed:
                    page_span.attributes["quarantined"] = True
                    crawl.health.quarantined_pages.append(list_page.url)
                    continue
                crawl.list_pages.append(list_page)
                crawl.detail_pages_per_list.append(result.detail_pages)
        health = crawl.health
        site_span.attributes.update(
            requests=health.requests,
            retries=health.retries,
            recovered=health.recovered,
            gaps=health.gap_count,
            quarantined=len(health.quarantined_pages),
            breaker_trips=health.breaker_trips,
            budget_exhausted=health.budget_exhausted,
        )
    return crawl

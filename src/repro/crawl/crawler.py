"""Link-following crawler for list pages.

Automates the step the paper performed by hand ("From each site, we
randomly selected two list pages and manually downloaded the detail
pages"): given a list page, follow every link in document order,
fetch what resolves, and use the
:class:`~repro.crawl.classifier.PageClassifier` to separate the detail
pages from advertisements and other chrome targets.  Detail pages are
returned in link order, which is the record order the segmenters
assume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import CrawlError
from repro.crawl.classifier import ClassifierConfig, PageClassifier
from repro.crawl.fetcher import SiteFetcher
from repro.sitegen.site import GeneratedSite
from repro.webdoc.html import EventKind, lex_html
from repro.webdoc.page import Page

__all__ = ["CrawlResult", "Crawler", "extract_links", "crawl_generated_site"]


def extract_links(html: str) -> list[str]:
    """Every ``href`` target in document order, first occurrence only.

    Fragment-only links are skipped; a URL linked twice (a row's name
    link and its "More Info" link) is reported once, at its first
    position — preserving record order.
    """
    seen: set[str] = set()
    links: list[str] = []
    for event in lex_html(html):
        if event.kind is not EventKind.TAG_OPEN or event.data != "a":
            continue
        href = event.attrs.get("href", "").strip()
        if not href or href.startswith("#"):
            continue
        if href not in seen:
            seen.add(href)
            links.append(href)
    return links


@dataclass
class CrawlResult:
    """What one list-page crawl produced.

    Attributes:
        list_page: the crawled list page.
        detail_pages: the classified detail pages, in link order.
        other_pages: fetched pages judged not to be detail pages.
        dead_links: hrefs the site did not serve.
    """

    list_page: Page
    detail_pages: list[Page] = field(default_factory=list)
    other_pages: list[Page] = field(default_factory=list)
    dead_links: list[str] = field(default_factory=list)


class Crawler:
    """Fetch and classify everything a list page links to."""

    def __init__(
        self,
        fetcher: SiteFetcher,
        classifier_config: ClassifierConfig | None = None,
    ) -> None:
        self.fetcher = fetcher
        self.classifier = PageClassifier(classifier_config)

    def collect(self, list_page: Page) -> CrawlResult:
        """Crawl one list page.

        Raises:
            CrawlError: the page links to nothing fetchable at all.
        """
        result = CrawlResult(list_page=list_page)
        fetched: list[Page] = []
        for url in extract_links(list_page.html):
            if url == list_page.url:
                continue
            page = self.fetcher.try_fetch(url)
            if page is None:
                result.dead_links.append(url)
            else:
                fetched.append(page)
        if not fetched:
            raise CrawlError(
                f"list page {list_page.url!r} links to no fetchable pages"
            )
        details, others = self.classifier.split_details(fetched)
        result.detail_pages = details
        result.other_pages = others
        return result


def crawl_generated_site(
    site: GeneratedSite,
    classifier_config: ClassifierConfig | None = None,
) -> tuple[list[Page], list[list[Page]], list[CrawlResult]]:
    """Crawl every list page of a simulator site.

    Returns the tuple the segmentation pipeline wants — (list pages,
    detail pages per list page) — plus the raw crawl results for
    inspection.
    """
    fetcher = SiteFetcher(site)
    crawler = Crawler(fetcher, classifier_config)
    results = [crawler.collect(page) for page in site.list_pages]
    return (
        list(site.list_pages),
        [result.detail_pages for result in results],
        results,
    )

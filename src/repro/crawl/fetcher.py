"""Simulated HTTP fetching over a generated site.

The paper's vision (Section 3): "the user provides a pointer to the
top-level page ... and the system automatically navigates the site,
retrieving all pages".  :class:`SiteFetcher` is the retrieval layer of
that loop for simulator sites: URL in, :class:`~repro.webdoc.page.Page`
out, with request accounting and both a positive and a negative
response cache — the observable behaviour of a polite crawler, minus
the network.

Transient failures (:class:`~repro.core.exceptions.TransientFetchError`,
raised by fault-injecting transports) are deliberately *not*
negative-cached: they are the one failure class where retrying the same
URL is supposed to succeed.

Permanent failures *are* negative-cached, but no longer forever: a
re-crawl of a live site must be able to discover that a previously
dead URL came back.  :meth:`SiteFetcher.reset` clears the negative
cache explicitly, and ``negative_max_age`` expires each dead entry
after that many subsequent requests, so long-lived fetchers retry
eventually even without an explicit reset.

:class:`DirectorySite` rounds the module out as the source used by
fetch-driven ingestion (``repro ingest --fetch``): it serves a crawl
snapshot directory exactly like a live site, so the resilient
retrieval stack (retries, budgets, breakers) exercises the same code
path whether pages come from a generator or from disk.
"""

from __future__ import annotations

from pathlib import Path as _Path

from repro.core.exceptions import FetchError, TransientFetchError
from repro.sitegen.site import GeneratedSite
from repro.webdoc.page import Page

__all__ = ["DirectorySite", "SiteFetcher"]


class DirectorySite:
    """Serve a directory of ``*.html`` pages as a fetchable site.

    The inverse of a crawl snapshot: page URLs are file names inside
    ``directory``, ``fetch`` reads them back, and anything else —
    missing files, path traversal, non-HTML names — is a permanent
    :class:`FetchError`, exactly like a 404 from a live server.
    """

    def __init__(self, directory: str | _Path) -> None:
        self.directory = _Path(directory)

    def fetch(self, url: str) -> Page:
        """Read one page; raises :class:`FetchError` like a dead link."""
        name = url.strip()
        if (
            not name
            or "/" in name
            or "\\" in name
            or name.startswith(".")
            or not name.endswith(".html")
        ):
            raise FetchError(f"directory site does not serve {url!r}")
        try:
            html = (self.directory / name).read_text(encoding="utf-8")
        except OSError as error:
            raise FetchError(f"no page at {url!r}: {error}") from error
        return Page(url=name, html=html)

    def urls(self) -> list[str]:
        """Every servable page name, sorted."""
        return sorted(
            path.name
            for path in self.directory.glob("*.html")
            if path.is_file()
        )


class SiteFetcher:
    """Fetch pages from a :class:`GeneratedSite` with caching.

    Any object with ``fetch(url) -> Page`` works as the source — a
    :class:`GeneratedSite`, a :class:`DirectorySite`, or a
    :class:`~repro.sitegen.faults.FaultyTransport` wrapping one.

    Args:
        site: the page source.
        negative_max_age: expire each negative-cache entry after this
            many *subsequent* requests, so a long-lived fetcher
            re-tries dead URLs eventually (None = entries live until
            :meth:`reset`).
    """

    def __init__(
        self,
        site: GeneratedSite,
        negative_max_age: int | None = None,
    ) -> None:
        if negative_max_age is not None and negative_max_age < 1:
            raise ValueError(
                f"negative_max_age must be >= 1 (or None), got {negative_max_age}"
            )
        self.site = site
        self.negative_max_age = negative_max_age
        self.requests = 0  #: fetches actually forwarded to the site
        self.failures = 0  #: dead URLs discovered (each counted once)
        self._cache: dict[str, Page] = {}
        #: url -> (cached failure message, request count at failure)
        self._dead: dict[str, tuple[str, int]] = {}

    def reset(self) -> int:
        """Forget every negative-cache entry; returns how many.

        The re-crawl hook: successful pages stay cached (their bytes
        are still what the fetch returned), but previously dead URLs
        get a fresh attempt on the next fetch.
        """
        dropped = len(self._dead)
        self._dead.clear()
        return dropped

    def _dead_message(self, url: str) -> str | None:
        """The cached failure for ``url``, expiring stale entries."""
        entry = self._dead.get(url)
        if entry is None:
            return None
        message, stamp = entry
        if (
            self.negative_max_age is not None
            and self.requests - stamp >= self.negative_max_age
        ):
            del self._dead[url]
            return None
        return message

    def fetch(self, url: str) -> Page:
        """Fetch a URL.

        A URL that failed permanently before is answered from the
        negative cache without re-requesting it (and without inflating
        the ``requests``/``failures`` counters again), until the entry
        expires (``negative_max_age``) or :meth:`reset` clears it.

        Raises:
            FetchError: the site does not serve this URL.
        """
        if url in self._cache:
            return self._cache[url]
        message = self._dead_message(url)
        if message is not None:
            raise FetchError(message)
        self.requests += 1
        try:
            page = self.site.fetch(url)
        except TransientFetchError:
            # Retryable by definition: never negative-cache it, but the
            # attempt still hit the wire, so ``requests`` already counted.
            raise
        except FetchError as error:
            self.failures += 1
            self._dead[url] = (str(error), self.requests)
            raise
        self._cache[url] = page
        return page

    def try_fetch(self, url: str) -> Page | None:
        """Fetch a URL, returning None on dead links."""
        try:
            return self.fetch(url)
        except FetchError:
            return None

    def cached(self, url: str) -> Page | None:
        """The cached page for ``url``, if a fetch already succeeded."""
        return self._cache.get(url)

    @property
    def dead_urls(self) -> frozenset[str]:
        """URLs known (from this fetcher's lifetime) to be dead."""
        return frozenset(self._dead)

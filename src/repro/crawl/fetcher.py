"""Simulated HTTP fetching over a generated site.

The paper's vision (Section 3): "the user provides a pointer to the
top-level page ... and the system automatically navigates the site,
retrieving all pages".  :class:`SiteFetcher` is the retrieval layer of
that loop for simulator sites: URL in, :class:`~repro.webdoc.page.Page`
out, with request accounting and both a positive and a negative
response cache — the observable behaviour of a polite crawler, minus
the network.

Transient failures (:class:`~repro.core.exceptions.TransientFetchError`,
raised by fault-injecting transports) are deliberately *not*
negative-cached: they are the one failure class where retrying the same
URL is supposed to succeed.
"""

from __future__ import annotations

from repro.core.exceptions import FetchError, TransientFetchError
from repro.sitegen.site import GeneratedSite
from repro.webdoc.page import Page

__all__ = ["SiteFetcher"]


class SiteFetcher:
    """Fetch pages from a :class:`GeneratedSite` with caching.

    Any object with ``fetch(url) -> Page`` works as the source — a
    :class:`GeneratedSite` or a
    :class:`~repro.sitegen.faults.FaultyTransport` wrapping one.
    """

    def __init__(self, site: GeneratedSite) -> None:
        self.site = site
        self.requests = 0  #: fetches actually forwarded to the site
        self.failures = 0  #: dead URLs discovered (each counted once)
        self._cache: dict[str, Page] = {}
        self._dead: dict[str, str] = {}  #: url -> cached failure message

    def fetch(self, url: str) -> Page:
        """Fetch a URL.

        A URL that failed permanently before is answered from the
        negative cache without re-requesting it (and without inflating
        the ``requests``/``failures`` counters again).

        Raises:
            FetchError: the site does not serve this URL.
        """
        if url in self._cache:
            return self._cache[url]
        if url in self._dead:
            raise FetchError(self._dead[url])
        self.requests += 1
        try:
            page = self.site.fetch(url)
        except TransientFetchError:
            # Retryable by definition: never negative-cache it, but the
            # attempt still hit the wire, so ``requests`` already counted.
            raise
        except FetchError as error:
            self.failures += 1
            self._dead[url] = str(error)
            raise
        self._cache[url] = page
        return page

    def try_fetch(self, url: str) -> Page | None:
        """Fetch a URL, returning None on dead links."""
        try:
            return self.fetch(url)
        except FetchError:
            return None

    def cached(self, url: str) -> Page | None:
        """The cached page for ``url``, if a fetch already succeeded."""
        return self._cache.get(url)

    @property
    def dead_urls(self) -> frozenset[str]:
        """URLs known (from this fetcher's lifetime) to be dead."""
        return frozenset(self._dead)

"""Simulated HTTP fetching over a generated site.

The paper's vision (Section 3): "the user provides a pointer to the
top-level page ... and the system automatically navigates the site,
retrieving all pages".  :class:`SiteFetcher` is the retrieval layer of
that loop for simulator sites: URL in, :class:`~repro.webdoc.page.Page`
out, with request accounting and a response cache — the observable
behaviour of a polite crawler, minus the network.
"""

from __future__ import annotations

from repro.core.exceptions import FetchError
from repro.sitegen.site import GeneratedSite
from repro.webdoc.page import Page

__all__ = ["SiteFetcher"]


class SiteFetcher:
    """Fetch pages from a :class:`GeneratedSite` with caching."""

    def __init__(self, site: GeneratedSite) -> None:
        self.site = site
        self.requests = 0  #: cache-missing fetches performed
        self.failures = 0  #: fetches that raised (dead links)
        self._cache: dict[str, Page] = {}

    def fetch(self, url: str) -> Page:
        """Fetch a URL.

        Raises:
            FetchError: the site does not serve this URL.
        """
        if url in self._cache:
            return self._cache[url]
        self.requests += 1
        try:
            page = self.site.fetch(url)
        except FetchError:
            self.failures += 1
            raise
        self._cache[url] = page
        return page

    def try_fetch(self, url: str) -> Page | None:
        """Fetch a URL, returning None on dead links."""
        try:
            return self.fetch(url)
        except FetchError:
            return None

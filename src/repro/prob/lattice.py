"""The (record, column, length) state lattice.

Inference for the factored model runs over an explicit lattice whose
states are ``(r, c, p)``:

* ``r`` — the record (detail page) the extract belongs to,
* ``c`` — the extract's column label (0 = the never-missing first
  column ``L_1``),
* ``p`` — how many fields the current record has produced so far
  (tracked only under the Figure-3 period model; the record length
  π_j the paper learns is exactly the final ``p`` of record ``j``).

Deterministic structure from Section 5.1 is compiled into the edge
set:

* within a record columns strictly increase (fields appear in schema
  order; a skipped column is a missing field), so within-record edges
  go ``c -> c' > c`` and increment ``p``;
* a record-start edge always enters column 0 with ``p = 1``
  (``P(S_i = true | C_i = L_1) = 1``) and increments the record number
  (skipping up to ``max_record_skip`` records that contributed no
  extracts, at a per-skip ``skip_penalty``);
* the ``D_i`` constraint is applied as an emission mask with a
  ``d_epsilon`` floor, which is the robustness knob distinguishing the
  probabilistic approach from the CSP.

The lattice is static per problem; only edge *weights* and emissions
are recomputed from :class:`~repro.prob.model.ModelParams` each EM
iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extraction.observations import ObservationTable
from repro.prob.model import ModelParams, ProbConfig
from repro.tokens.types import NUM_TOKEN_TYPES, type_vector

__all__ = ["Lattice", "observed_type_vectors", "derive_column_count"]

#: Edge kinds.
WITHIN = 0
START = 1


def observed_type_vectors(table: ObservationTable) -> np.ndarray:
    """[N, 8] matrix of observed token-type vectors ``T_i``.

    An extract's vector is the union of its tokens' type flags: any
    type present anywhere in the extract is on.
    """
    vectors = np.zeros((len(table.observations), NUM_TOKEN_TYPES))
    for observation in table.observations:
        merged = np.zeros(NUM_TOKEN_TYPES)
        for token in observation.extract.tokens:
            merged = np.maximum(merged, np.array(type_vector(token.types)))
        vectors[observation.seq] = merged
    return vectors


def derive_column_count(table: ObservationTable, config: ProbConfig) -> int:
    """The paper's bound on ``k``: the largest number of extracts found
    on a detail page (capped by ``config.max_columns``)."""
    largest = 0
    for record in range(table.detail_count):
        largest = max(largest, len(table.candidates_for_record(record)))
    k = max(2, largest)
    if config.max_columns is not None:
        k = min(k, config.max_columns)
    return k


@dataclass
class Lattice:
    """Compiled state/edge arrays for one segmentation problem."""

    config: ProbConfig
    k: int
    n_records: int
    # State arrays.
    state_r: np.ndarray
    state_c: np.ndarray
    state_p: np.ndarray  #: zeros when the period model is off
    # Edge arrays (sorted by destination state).
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_kind: np.ndarray
    edge_skip: np.ndarray  #: records skipped by a START edge (0 for WITHIN)
    # Static initial distribution (record-skip prior into column 0).
    init_w: np.ndarray
    # Observation-dependent masks.
    d_compat: np.ndarray  #: [N, S] D_i compatibility (1 or d_epsilon)
    type_vectors: np.ndarray  #: [N, 8]

    @property
    def n_states(self) -> int:
        return len(self.state_r)

    @property
    def n_edges(self) -> int:
        return len(self.edge_src)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, table: ObservationTable, config: ProbConfig, k: int) -> "Lattice":
        """Compile the lattice for ``table`` with ``k`` columns."""
        n_records = table.detail_count
        use_period = config.use_period

        states: list[tuple[int, int, int]] = []
        state_id: dict[tuple[int, int, int], int] = {}
        for record in range(n_records):
            for column in range(k):
                lengths = range(1, column + 2) if use_period else (0,)
                for length in lengths:
                    state_id[(record, column, length)] = len(states)
                    states.append((record, column, length))

        edge_src: list[int] = []
        edge_dst: list[int] = []
        edge_kind: list[int] = []
        edge_skip: list[int] = []
        for (record, column, length), source in state_id.items():
            # Within-record: strictly increasing column, one more field.
            next_length = length + 1 if use_period else 0
            if not use_period or next_length <= k:
                for next_column in range(column + 1, k):
                    target = state_id.get((record, next_column, next_length))
                    if target is not None:
                        edge_src.append(source)
                        edge_dst.append(target)
                        edge_kind.append(WITHIN)
                        edge_skip.append(0)
            # Record start: enter column 0 of a later record.
            first_length = 1 if use_period else 0
            for next_record in range(
                record + 1,
                min(record + 2 + config.max_record_skip, n_records),
            ):
                target = state_id.get((next_record, 0, first_length))
                if target is not None:
                    edge_src.append(source)
                    edge_dst.append(target)
                    edge_kind.append(START)
                    edge_skip.append(next_record - record - 1)

        order = np.argsort(np.asarray(edge_dst), kind="stable")
        edge_src_arr = np.asarray(edge_src)[order]
        edge_dst_arr = np.asarray(edge_dst)[order]
        edge_kind_arr = np.asarray(edge_kind)[order]
        edge_skip_arr = np.asarray(edge_skip)[order]

        state_r = np.array([s[0] for s in states])
        state_c = np.array([s[1] for s in states])
        state_p = np.array([s[2] for s in states])

        # Initial distribution: any record's column-0 state, with the
        # skip penalty for records the table never mentions.
        init_w = np.zeros(len(states))
        first_length = 1 if use_period else 0
        for record in range(min(1 + config.max_record_skip, n_records)):
            source = state_id.get((record, 0, first_length))
            if source is not None:
                init_w[source] = config.skip_penalty**record
        total = init_w.sum()
        if total > 0:
            init_w /= total

        # D_i compatibility per observation and state.
        n_observations = len(table.observations)
        record_ok = np.full((n_observations, n_records), config.d_epsilon)
        for observation in table.observations:
            for record in observation.detail_pages:
                record_ok[observation.seq, record] = 1.0
        d_compat = record_ok[:, state_r]

        return cls(
            config=config,
            k=k,
            n_records=n_records,
            state_r=state_r,
            state_c=state_c,
            state_p=state_p,
            edge_src=edge_src_arr,
            edge_dst=edge_dst_arr,
            edge_kind=edge_kind_arr,
            edge_skip=edge_skip_arr,
            init_w=init_w,
            d_compat=d_compat,
            type_vectors=observed_type_vectors(table),
        )

    # -- parameter-dependent quantities -------------------------------------

    def edge_weights(self, params: ModelParams) -> np.ndarray:
        """[E] linear-space transition weights under ``params``."""
        within = params.within_record_matrix()  # [k, k]
        c_src = self.state_c[self.edge_src]
        c_dst = self.state_c[self.edge_dst]
        end_prob = self._end_probability(params)[self.edge_src]

        weights = np.zeros(self.n_edges)
        within_mask = self.edge_kind == WITHIN
        weights[within_mask] = (1.0 - end_prob[within_mask]) * within[
            c_src[within_mask], c_dst[within_mask]
        ]
        start_mask = ~within_mask
        weights[start_mask] = end_prob[start_mask] * (
            self.config.skip_penalty ** self.edge_skip[start_mask]
        )
        return weights

    def final_weights(self, params: ModelParams) -> np.ndarray:
        """[S] end-of-sequence weights: the last record simply ends."""
        return self._end_probability(params)

    def _end_probability(self, params: ModelParams) -> np.ndarray:
        """[S] probability that the record ends at each state."""
        if self.config.use_period:
            hazard = params.hazard()  # [k+1]
            return hazard[self.state_p]
        return params.start_from[self.state_c]

    def emissions(self, params: ModelParams) -> np.ndarray:
        """[N, S] linear-space emission matrix (types x D-mask)."""
        log_by_column = params.log_emission_by_column(self.type_vectors)
        by_column = np.exp(log_by_column)  # [N, k]
        return by_column[:, self.state_c] * self.d_compat

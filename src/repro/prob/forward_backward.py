"""Scaled forward-backward over the segmentation lattice (E-step).

This is the paper's "variant of the forward-backward algorithm that
exploits the hierarchical nature of the record segmentation problem"
(Section 5.2.3): the lattice already encodes the record/column/period
hierarchy, so a single pass computes exact posteriors.

Scaling: the forward pass renormalizes ``alpha`` at every step and
accumulates the log of the scale factors, giving the log-likelihood;
state posteriors ``gamma_i`` and edge posteriors ``xi_i`` are
normalized per step (each step has exactly one state / one transition
event, so the per-step posteriors each sum to 1 — global scale factors
cancel).

Only the *sums over time* of the edge posteriors are returned: every
M-step statistic (column transitions, record-end events, period
counts) is a per-edge-category total, so the full ``[N, E]`` tensor is
never materialized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import InferenceError
from repro.prob.lattice import Lattice
from repro.prob.model import ModelParams

__all__ = ["ForwardBackwardResult", "forward_backward"]

_TINY = 1e-300


@dataclass
class ForwardBackwardResult:
    """Posteriors and sufficient statistics from one E-step.

    Attributes:
        log_likelihood: log P(observations | params).
        gamma: [N, S] state posteriors per observation.
        xi_edge_totals: [E] sum over steps of the edge posteriors.
        end_gamma: [S] posterior of the final observation's state —
            the end-of-sequence record-end event.
    """

    log_likelihood: float
    gamma: np.ndarray
    xi_edge_totals: np.ndarray
    end_gamma: np.ndarray


def forward_backward(
    lattice: Lattice, params: ModelParams
) -> ForwardBackwardResult:
    """Run one scaled forward-backward pass.

    Raises:
        InferenceError: the lattice assigns zero probability to the
            observations (cannot happen with a positive ``d_epsilon``
            unless the model degenerated).
    """
    emissions = lattice.emissions(params)  # [N, S]
    weights = lattice.edge_weights(params)  # [E]
    final = lattice.final_weights(params)  # [S]
    src = lattice.edge_src
    dst = lattice.edge_dst

    n_steps, n_states = emissions.shape
    if n_steps == 0:
        raise InferenceError("empty observation sequence")

    # -- forward -----------------------------------------------------------
    alpha = np.zeros((n_steps, n_states))
    log_likelihood = 0.0

    current = lattice.init_w * emissions[0]
    scale = current.sum()
    if scale <= _TINY:
        raise InferenceError("zero forward mass at step 0")
    current /= scale
    log_likelihood += float(np.log(scale))
    alpha[0] = current

    for step in range(1, n_steps):
        contrib = current[src] * weights
        incoming = np.zeros(n_states)
        np.add.at(incoming, dst, contrib)
        current = incoming * emissions[step]
        scale = current.sum()
        if scale <= _TINY:
            raise InferenceError(f"zero forward mass at step {step}")
        current /= scale
        log_likelihood += float(np.log(scale))
        alpha[step] = current

    termination = float((current * final).sum())
    if termination <= _TINY:
        raise InferenceError("zero termination mass")
    log_likelihood += float(np.log(termination))

    # -- backward ----------------------------------------------------------
    beta = final.copy()
    beta_scale = beta.sum()
    if beta_scale <= _TINY:
        raise InferenceError("zero backward mass at the final step")
    beta /= beta_scale

    gamma = np.zeros_like(alpha)
    gamma_last = alpha[-1] * beta
    total = gamma_last.sum()
    gamma[-1] = gamma_last / total
    end_gamma = gamma[-1].copy()

    xi_edge_totals = np.zeros(lattice.n_edges)

    for step in range(n_steps - 1, 0, -1):
        # Edge posteriors for the transition (step-1 -> step).
        edge_post = (
            alpha[step - 1][src]
            * weights
            * emissions[step][dst]
            * beta[dst]
        )
        edge_total = edge_post.sum()
        if edge_total <= _TINY:
            raise InferenceError(f"zero transition mass into step {step}")
        xi_edge_totals += edge_post / edge_total

        # Pull beta back one step.
        outgoing = weights * emissions[step][dst] * beta[dst]
        previous = np.zeros(n_states)
        np.add.at(previous, src, outgoing)
        beta_scale = previous.sum()
        if beta_scale <= _TINY:
            raise InferenceError(f"zero backward mass at step {step - 1}")
        beta = previous / beta_scale

        gamma_step = alpha[step - 1] * beta
        gamma[step - 1] = gamma_step / gamma_step.sum()

    return ForwardBackwardResult(
        log_likelihood=log_likelihood,
        gamma=gamma,
        xi_edge_totals=xi_edge_totals,
        end_gamma=end_gamma,
    )

"""Bootstrapping the model from detail-page evidence (Section 5.2.1).

    "The key way in which information from detail pages helps us is it
    gives us a guide to some of the initial R_i assignments. ...  We
    also make use of the D_i to infer values for S_i.  If
    D_{i-1} ∩ D_i = ∅, then P(S_i = true) = 1."

The bootstrap builds a *tentative* segmentation purely from the
``D_i`` sets — a record start wherever consecutive extracts share no
detail page, plus a start at any extract uniquely pinned to a new
record — assigns positional columns within each tentative record, and
seeds the model parameters (emissions, transitions, period) from the
resulting counts.  EM then refines from this informed starting point
instead of a flat one, which is what keeps the unsupervised learning
"on track".
"""

from __future__ import annotations

import numpy as np

from repro.extraction.observations import ObservationTable
from repro.prob.model import ModelParams, ProbConfig
from repro.prob.period import fit_period
from repro.prob.lattice import observed_type_vectors
from repro.tokens.types import NUM_TOKEN_TYPES

__all__ = ["tentative_starts", "bootstrap_params"]


def tentative_starts(table: ObservationTable) -> list[bool]:
    """The paper's S_i bootstrap: start where D_{i-1} and D_i are disjoint.

    Additionally, an extract uniquely pinned (``|D_i| = 1``) to a
    *different* record than the unique pin of the previous extract is
    a start — the "extract i only appears on detail page j and extract
    i-1 only on page j-1" example from the paper.
    """
    starts: list[bool] = []
    observations = table.observations
    for position, observation in enumerate(observations):
        if position == 0:
            starts.append(True)
            continue
        previous = observations[position - 1]
        if not (previous.detail_pages & observation.detail_pages):
            starts.append(True)
            continue
        if (
            len(previous.detail_pages) == 1
            and len(observation.detail_pages) == 1
            and previous.detail_pages != observation.detail_pages
        ):
            starts.append(True)
            continue
        starts.append(False)
    return starts


def bootstrap_params(
    table: ObservationTable, config: ProbConfig, k: int
) -> ModelParams:
    """Seed :class:`ModelParams` from the tentative segmentation.

    Falls back to the uniform initialization for any block with no
    evidence (e.g. a single tentative record gives no transition
    counts).
    """
    params = ModelParams.uniform(k, seed=config.seed)
    starts = tentative_starts(table)
    type_vectors = observed_type_vectors(table)
    smoothing = config.smoothing

    # Assign positional columns within tentative records.
    columns: list[int] = []
    position_in_record = 0
    for start in starts:
        position_in_record = 0 if start else position_in_record + 1
        columns.append(min(position_in_record, k - 1))

    # Emissions.
    type_counts = np.full((k, NUM_TOKEN_TYPES), smoothing)
    total_counts = np.full(k, 2 * smoothing)
    for seq, column in enumerate(columns):
        type_counts[column] += type_vectors[seq]
        total_counts[column] += 1.0
    params.emit = np.clip(
        type_counts / total_counts[:, None], 1e-3, 1 - 1e-3
    )

    # Within-record transitions.
    trans = np.full((k, k), smoothing)
    for seq in range(1, len(columns)):
        if not starts[seq] and columns[seq] > columns[seq - 1]:
            trans[columns[seq - 1], columns[seq]] += 1.0
    params.trans = trans

    # Record-end probability per column (Figure-2 block).
    end_counts = np.full(k, smoothing)
    continue_counts = np.full(k, smoothing)
    for seq in range(1, len(columns)):
        if starts[seq]:
            end_counts[columns[seq - 1]] += 1.0
        else:
            continue_counts[columns[seq - 1]] += 1.0
    end_counts[columns[-1]] += 1.0  # the table's last record ends
    start_from = end_counts / (end_counts + continue_counts)
    start_from[k - 1] = 1.0
    params.start_from = start_from

    # Period (Figure-3 block): tentative record lengths.
    length_counts = np.zeros(k + 1)
    run_length = 0
    for start in starts:
        if start and run_length > 0:
            length_counts[min(run_length, k)] += 1.0
        run_length = 1 if start else run_length + 1
    if run_length > 0:
        length_counts[min(run_length, k)] += 1.0
    params.period = fit_period(length_counts, k, smoothing)

    return params

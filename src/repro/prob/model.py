"""Parameters of the factored probabilistic model (paper Section 5.1).

The model's hidden variables per extract are the record number ``R_i``,
the column label ``C_i`` and the record-start flag ``S_i``; observed
are the token-type vector ``T_i`` and detail-page set ``D_i``.  The
paper's dependency structure (Figures 2 and 3) factorizes into the
parameter blocks held by :class:`ModelParams`:

* ``emit[c, t]`` — Bernoulli ``P(T_t = 1 | C = c)`` for each of the 8
  token types (the emission block ``P(T_i | C_i)``);
* ``trans[c, c']`` — within-record column transition scores
  (``P(C_i | C_{i-1})`` restricted to ``c' > c``; columns are strictly
  increasing inside a record because fields appear in schema order,
  possibly with gaps for missing fields);
* ``start_from[c]`` — probability that a record *ends* after a field
  in column ``c`` (the Figure-2 model's ``P(C_i = L_1 | C_{i-1})``
  mass; superseded by the period model when enabled);
* ``period[l]`` — the record-period distribution π over record lengths
  ``l = 1..k`` (the Figure-3 model).

``P(S_i | C_i)`` is deterministic per the paper's observation that the
first column is never missing: a record starts iff ``C_i = L_1``
(column 0 here), so record-start transitions always enter column 0.
``P(R_i | R_{i-1}, D_i, S_i)`` is likewise deterministic up to the
``D_i`` compatibility mask, which the lattice applies as an emission
factor with a small ``d_epsilon`` floor — the floor is what makes the
probabilistic approach "tolerant of inconsistencies" (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tokens.types import NUM_TOKEN_TYPES

__all__ = ["ProbConfig", "ModelParams"]


@dataclass(frozen=True)
class ProbConfig:
    """Configuration of the probabilistic segmenter.

    Attributes:
        max_iterations: EM iteration cap.
        tol: stop when the per-extract log-likelihood improves by less
            than this.
        use_period: enable the Figure-3 record-period model; off gives
            the plain Figure-2 model (ablation).
        max_record_skip: how many detail pages a record-start
            transition may skip (a record none of whose values matched
            anything contributes no extracts).
        skip_penalty: per-skipped-record probability penalty.
        d_epsilon: emission weight of pairing an extract with a record
            outside its ``D_i`` (robustness floor; 0 would make the
            model as brittle as the CSP).
        smoothing: Laplace smoothing for all M-step updates.
        max_columns: cap on the number of column labels ``k``; None
            derives k from the data (the paper's bound: the largest
            number of extracts found on a detail page).
        seed: seed for the symmetry-breaking jitter of the initial
            parameters.
    """

    max_iterations: int = 30
    tol: float = 1e-4
    use_period: bool = True
    max_record_skip: int = 3
    skip_penalty: float = 0.05
    d_epsilon: float = 1e-6
    smoothing: float = 0.5
    max_columns: int | None = 10
    seed: int = 0


@dataclass
class ModelParams:
    """The learnable parameter blocks.

    All arrays are proper (normalized) probabilities; ``trans`` rows
    are normalized over their *valid* successors ``c' > c`` at use
    time, since the valid set depends on the source column.
    """

    k: int
    emit: np.ndarray = field(repr=False)  #: [k, 8] Bernoulli P(T_t=1|c)
    trans: np.ndarray = field(repr=False)  #: [k, k] within-record scores
    start_from: np.ndarray = field(repr=False)  #: [k] P(record ends | c)
    period: np.ndarray = field(repr=False)  #: [k+1] pi over lengths 1..k

    @classmethod
    def uniform(cls, k: int, seed: int = 0) -> "ModelParams":
        """The paper's bootstrap initialization (Section 5.2.1).

        Token-type Bernoullis start uninformative (the paper's
        "P(T_ij = true | C_i) = 1/8" prior on types), transitions and
        the period start uniform.  A small seeded jitter breaks the
        label symmetry between columns so EM can pull them apart.
        """
        if k < 1:
            raise ValueError(f"need at least one column, got k={k}")
        rng = np.random.default_rng(seed)
        emit = np.full((k, NUM_TOKEN_TYPES), 1.0 / NUM_TOKEN_TYPES)
        emit += rng.uniform(-0.01, 0.01, size=emit.shape)
        emit = np.clip(emit, 1e-3, 1 - 1e-3)

        trans = np.full((k, k), 1.0)
        trans += rng.uniform(0.0, 0.01, size=trans.shape)

        start_from = np.full(k, 0.5)
        # From the last column a record can only end.
        start_from[k - 1] = 1.0

        period = np.zeros(k + 1)
        period[1:] = 1.0 / k
        return cls(
            k=k, emit=emit, trans=trans, start_from=start_from, period=period
        )

    def log_emission_by_column(self, type_vectors: np.ndarray) -> np.ndarray:
        """Log P(T_i | c) for every observation and column.

        Args:
            type_vectors: [N, 8] 0/1 matrix of observed token types
                (an extract's vector is the union of its tokens' types).

        Returns:
            [N, k] matrix of log emission probabilities.
        """
        log_p = np.log(self.emit)  # [k, 8]
        log_q = np.log1p(-self.emit)
        # [N, k] = T @ log_p.T + (1-T) @ log_q.T
        return type_vectors @ log_p.T + (1.0 - type_vectors) @ log_q.T

    def within_record_matrix(self) -> np.ndarray:
        """[k, k] matrix of P(c -> c') over valid successors c' > c.

        Rows with no successor (the last column) are all zero.
        """
        matrix = np.triu(self.trans, k=1)
        sums = matrix.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            matrix = np.where(sums > 0, matrix / sums, 0.0)
        return matrix

    def hazard(self) -> np.ndarray:
        """[k+1] end-of-record hazard h(p) = P(len = p | len >= p).

        Index 0 is unused.  ``h(k) = 1`` by construction.
        """
        tail = np.cumsum(self.period[::-1])[::-1]  # tail[p] = P(len >= p)
        hazard = np.zeros_like(self.period)
        with np.errstate(invalid="ignore", divide="ignore"):
            valid = tail > 0
            hazard[valid] = self.period[valid] / tail[valid]
        hazard[-1] = 1.0
        return np.clip(hazard, 1e-9, 1.0)

    def copy(self) -> "ModelParams":
        """Deep copy (EM keeps the best-scoring parameters)."""
        return ModelParams(
            k=self.k,
            emit=self.emit.copy(),
            trans=self.trans.copy(),
            start_from=self.start_from.copy(),
            period=self.period.copy(),
        )

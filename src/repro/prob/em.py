"""The EM driver (paper Section 5.2.3).

Each iteration runs the scaled forward-backward E-step over the
lattice and re-estimates every parameter block from the posteriors:

1. the record period π from the expected record-end events (start
   edges and the end-of-sequence state), keyed by fields-so-far;
2. the within-record column transitions from the expected
   within-record edge traversals;
3. the record-end-by-column block (the Figure-2 model's start mass);
4. the token-type emissions from the expected column occupancies.

This is the paper's loop — "compute the initial distribution for the
global period π … update the column start probabilities … update
P(S_i|C_i) … update P(R_i|R_{i-1},D_i,S_i)" — with the deterministic
blocks (S given C, R given S and D) fixed by the lattice structure.
EM stops when the log-likelihood gain drops below ``tol`` or the
iteration cap is reached; the best-scoring parameters are returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.prob.bootstrap import bootstrap_params
from repro.prob.forward_backward import ForwardBackwardResult, forward_backward
from repro.prob.lattice import START, WITHIN, Lattice
from repro.prob.model import ModelParams, ProbConfig
from repro.prob.period import fit_period

__all__ = ["EmInfo", "run_em"]


@dataclass
class EmInfo:
    """Diagnostics from an EM run.

    Attributes:
        iterations: E/M cycles actually performed.
        log_likelihoods: log-likelihood after each E-step.
        converged: whether the tolerance criterion stopped the loop.
    """

    iterations: int
    log_likelihoods: list[float] = field(default_factory=list)
    converged: bool = False


def run_em(
    lattice: Lattice,
    config: ProbConfig,
    initial: ModelParams | None = None,
) -> tuple[ModelParams, EmInfo]:
    """Fit the model on ``lattice``'s observations.

    Args:
        lattice: the compiled problem.
        config: EM settings.
        initial: starting parameters; defaults to the detail-page
            bootstrap is not applied here (the segmenter passes it in),
            falling back to the uniform initialization.

    Returns:
        The best-scoring parameters and run diagnostics.
    """
    params = initial.copy() if initial else ModelParams.uniform(
        lattice.k, seed=config.seed
    )
    info = EmInfo(iterations=0)
    best_params = params.copy()
    best_log_likelihood = -np.inf

    for iteration in range(config.max_iterations):
        e_step = forward_backward(lattice, params)
        info.iterations = iteration + 1
        info.log_likelihoods.append(e_step.log_likelihood)

        if e_step.log_likelihood > best_log_likelihood:
            best_log_likelihood = e_step.log_likelihood
            best_params = params.copy()

        if iteration > 0:
            gain = e_step.log_likelihood - info.log_likelihoods[-2]
            if abs(gain) < config.tol * max(1, lattice.type_vectors.shape[0]):
                info.converged = True
                break

        params = _m_step(lattice, config, e_step)

    return best_params, info


def _m_step(
    lattice: Lattice, config: ProbConfig, e_step: ForwardBackwardResult
) -> ModelParams:
    """Re-estimate every parameter block from the E-step posteriors."""
    k = lattice.k
    smoothing = config.smoothing
    xi = e_step.xi_edge_totals
    gamma = e_step.gamma

    within_mask = lattice.edge_kind == WITHIN
    start_mask = lattice.edge_kind == START
    c_src = lattice.state_c[lattice.edge_src]
    c_dst = lattice.state_c[lattice.edge_dst]
    p_src = lattice.state_p[lattice.edge_src]

    # Column transitions.
    trans_counts = np.zeros((k, k))
    np.add.at(
        trans_counts,
        (c_src[within_mask], c_dst[within_mask]),
        xi[within_mask],
    )

    # Record-end events: start edges plus the final state.
    end_by_column = np.zeros(k)
    np.add.at(end_by_column, c_src[start_mask], xi[start_mask])
    np.add.at(end_by_column, lattice.state_c, e_step.end_gamma)

    continue_by_column = trans_counts.sum(axis=1)
    start_from = (end_by_column + smoothing) / (
        end_by_column + continue_by_column + 2 * smoothing
    )
    start_from[k - 1] = 1.0

    # Period: record length = fields-so-far at the end event.
    length_counts = np.zeros(k + 1)
    np.add.at(length_counts, p_src[start_mask], xi[start_mask])
    np.add.at(length_counts, lattice.state_p, e_step.end_gamma)
    period = fit_period(length_counts, k, smoothing)

    # Emissions: expected column occupancy x observed types.
    column_gamma = np.zeros((gamma.shape[0], k))
    np.add.at(column_gamma.T, lattice.state_c, gamma.T)
    type_counts = column_gamma.T @ lattice.type_vectors  # [k, 8]
    occupancy = column_gamma.sum(axis=0)  # [k]
    emit = (type_counts + smoothing) / (occupancy + 2 * smoothing)[:, None]
    emit = np.clip(emit, 1e-4, 1 - 1e-4)

    return ModelParams(
        k=k,
        emit=emit,
        trans=trans_counts + smoothing,
        start_from=start_from,
        period=period,
    )

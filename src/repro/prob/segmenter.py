"""The probabilistic record segmenter (paper Section 5, end-to-end).

Pipeline: derive the column bound ``k`` from the detail pages, compile
the lattice, bootstrap parameters from the ``D_i`` evidence, fit with
EM, Viterbi-decode the MAP ``(R, C)`` assignment, and package it as a
:class:`~repro.core.results.Segmentation` — including the per-extract
column labels the paper highlights as the probabilistic approach's
extra deliverable (Section 3.4, "Column Extraction").
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import EmptyProblemError
from repro.core.results import Segmentation
from repro.extraction.observations import ObservationTable
from repro.prob.bootstrap import bootstrap_params
from repro.prob.decode import viterbi
from repro.prob.em import run_em
from repro.prob.lattice import Lattice, derive_column_count
from repro.prob.model import ModelParams, ProbConfig
from repro.prob.period import expected_length, period_mode

__all__ = ["ProbabilisticSegmenter"]


class ProbabilisticSegmenter:
    """Segment records by factored-HMM inference."""

    method_name = "prob"

    def __init__(self, config: ProbConfig | None = None) -> None:
        self.config = config or ProbConfig()

    def segment(self, table: ObservationTable) -> Segmentation:
        """Segment one list page's observation table.

        Raises:
            EmptyProblemError: the table has no usable observations.
        """
        if not table.observations:
            raise EmptyProblemError("no observations to segment")

        k = derive_column_count(table, self.config)
        lattice = Lattice.build(table, self.config, k)
        initial = bootstrap_params(table, self.config, k)
        params, em_info = run_em(lattice, self.config, initial)
        decoded = viterbi(lattice, params)

        assignment: dict[int, int | None] = {}
        columns: dict[int, int] = {}
        d_violations = 0
        for observation in table.observations:
            record = int(decoded.records[observation.seq])
            assignment[observation.seq] = record
            columns[observation.seq] = int(decoded.columns[observation.seq])
            if record not in observation.detail_pages:
                d_violations += 1

        return Segmentation.from_assignment(
            method=self.method_name,
            table=table,
            assignment=assignment,
            columns=columns,
            meta={
                "k": k,
                "use_period": self.config.use_period,
                "em_iterations": em_info.iterations,
                "em_converged": em_info.converged,
                "log_likelihood": (
                    em_info.log_likelihoods[-1]
                    if em_info.log_likelihoods
                    else float("nan")
                ),
                "period": params.period.tolist(),
                "period_mode": period_mode(params.period),
                "expected_record_length": expected_length(params.period),
                "d_violations": d_violations,
                "lattice_states": lattice.n_states,
                "lattice_edges": lattice.n_edges,
            },
        )

    def fit(
        self, table: ObservationTable
    ) -> tuple[ModelParams, Lattice]:
        """Fit and return the model without decoding (for analyses)."""
        if not table.observations:
            raise EmptyProblemError("no observations to fit")
        k = derive_column_count(table, self.config)
        lattice = Lattice.build(table, self.config, k)
        initial = bootstrap_params(table, self.config, k)
        params, _ = run_em(lattice, self.config, initial)
        return params, lattice

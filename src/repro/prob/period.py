"""Record-period utilities (paper Section 5.2.2, Figure 3).

The period π is the distribution over record lengths (number of
fields in a record).  The hierarchical model conditions record-end
decisions on the fields-so-far count through the *hazard*
``h(p) = P(len = p | len >= p)``, implemented on
:class:`~repro.prob.model.ModelParams`; this module provides the
fitting and summary helpers shared by the bootstrap and the M-step.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fit_period", "expected_length", "period_mode"]


def fit_period(
    length_counts: np.ndarray, k: int, smoothing: float = 0.5
) -> np.ndarray:
    """Normalize (expected) record-length counts into π.

    Args:
        length_counts: array of length >= k+1; index ``p`` holds the
            (possibly fractional, from EM posteriors) count of records
            of length ``p``.  Index 0 is ignored.
        k: number of columns; lengths run 1..k.
        smoothing: Laplace smoothing added to every length.

    Returns:
        [k+1] distribution with index 0 zero and indices 1..k summing
        to 1.
    """
    period = np.zeros(k + 1)
    counts = np.asarray(length_counts, dtype=float)
    limit = min(len(counts), k + 1)
    period[1:limit] = counts[1:limit]
    period[1:] += smoothing
    period[1:] /= period[1:].sum()
    return period


def expected_length(period: np.ndarray) -> float:
    """Mean record length under π."""
    lengths = np.arange(len(period))
    return float((lengths * period).sum())


def period_mode(period: np.ndarray) -> int:
    """The most likely record length under π."""
    return int(np.argmax(period[1:]) + 1)

"""MAP decoding (Viterbi) over the segmentation lattice.

    "As is commonly done in probabilistic models for sequence data, we
    compute maximum a posteriori (MAP) probability for R and C and use
    this as our segmentation: argmax P(R, C | T, D)."  (Section 5.1)

Linear-space Viterbi with per-step max-renormalization (only the
argmax matters, so rescaling by a positive constant each step is
safe).  Backpointers are recovered vectorized: after the per-state max
is computed, the edges attaining it are identified by exact equality
against the max of their destination (both sides come from the same
array, so the comparison is exact), and the smallest such edge id wins
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import InferenceError
from repro.prob.lattice import Lattice
from repro.prob.model import ModelParams

__all__ = ["DecodeResult", "viterbi"]


@dataclass
class DecodeResult:
    """The MAP assignment.

    Attributes:
        records: [N] record number ``R_i`` per observation.
        columns: [N] column label ``C_i`` per observation.
        lengths: [N] running field count ``p_i`` (zeros when the
            period model is off).
        states: [N] raw lattice state ids of the MAP path.
    """

    records: np.ndarray
    columns: np.ndarray
    lengths: np.ndarray
    states: np.ndarray


def viterbi(lattice: Lattice, params: ModelParams) -> DecodeResult:
    """Compute the MAP state path.

    Raises:
        InferenceError: no positive-probability path exists (cannot
            happen with positive ``d_epsilon``).
    """
    emissions = lattice.emissions(params)
    weights = lattice.edge_weights(params)
    final = lattice.final_weights(params)
    src = lattice.edge_src
    dst = lattice.edge_dst
    n_steps, n_states = emissions.shape
    n_edges = lattice.n_edges

    delta = lattice.init_w * emissions[0]
    peak = delta.max()
    if peak <= 0:
        raise InferenceError("no feasible start state")
    delta = delta / peak

    backpointers = np.full((n_steps, n_states), -1, dtype=np.int64)
    edge_ids = np.arange(n_edges)

    for step in range(1, n_steps):
        contrib = delta[src] * weights
        best = np.zeros(n_states)
        np.maximum.at(best, dst, contrib)

        # Edges attaining the per-destination max; smallest id wins.
        attained = (contrib == best[dst]) & (contrib > 0)
        chosen = np.full(n_states, n_edges, dtype=np.int64)
        np.minimum.at(chosen, dst[attained], edge_ids[attained])
        backpointers[step] = np.where(chosen < n_edges, chosen, -1)

        delta = best * emissions[step]
        peak = delta.max()
        if peak <= 0:
            raise InferenceError(f"no feasible path at step {step}")
        delta = delta / peak

    final_scores = delta * final
    last_state = int(np.argmax(final_scores))
    if final_scores[last_state] <= 0:
        raise InferenceError("no feasible terminal state")

    states = np.zeros(n_steps, dtype=np.int64)
    states[-1] = last_state
    for step in range(n_steps - 1, 0, -1):
        edge = backpointers[step, states[step]]
        if edge < 0:
            raise InferenceError(f"broken backpointer at step {step}")
        states[step - 1] = src[edge]

    return DecodeResult(
        records=lattice.state_r[states].copy(),
        columns=lattice.state_c[states].copy(),
        lengths=lattice.state_p[states].copy(),
        states=states,
    )

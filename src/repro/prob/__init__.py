"""Probabilistic record segmenter (paper Section 5)."""

from repro.prob.bootstrap import bootstrap_params, tentative_starts
from repro.prob.decode import DecodeResult, viterbi
from repro.prob.em import EmInfo, run_em
from repro.prob.forward_backward import ForwardBackwardResult, forward_backward
from repro.prob.lattice import Lattice, derive_column_count, observed_type_vectors
from repro.prob.model import ModelParams, ProbConfig
from repro.prob.period import expected_length, fit_period, period_mode
from repro.prob.segmenter import ProbabilisticSegmenter

__all__ = [
    "DecodeResult",
    "EmInfo",
    "ForwardBackwardResult",
    "Lattice",
    "ModelParams",
    "ProbConfig",
    "ProbabilisticSegmenter",
    "bootstrap_params",
    "derive_column_count",
    "expected_length",
    "fit_period",
    "forward_backward",
    "observed_type_vectors",
    "period_mode",
    "run_em",
    "tentative_starts",
    "viterbi",
]

"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro sites                     # list the corpus sites
    python -m repro segment superpages        # segment one site
    python -m repro segment ohio --method csp --page 1
    python -m repro segment lee --trace --metrics-out m.json
    python -m repro table4                    # the full experiment
    python -m repro table4 --methods prob     # one method only
    python -m repro show superpages --page 0  # dump a generated page
    python -m repro export lee ./lee_pages    # save pages + manifest
    python -m repro segment-dir ./lee_pages   # segment saved pages
    python -m repro export-corpus ./corpus    # save many sites at once
    python -m repro segment-dir ./corpus --workers 4 --cache-dir ./cache
    python -m repro segment-dir ./corpus --workers 4 --resume
    python -m repro segment lee --json        # machine-readable summary
    python -m repro serve --port 8080         # long-lived HTTP service
    python -m repro serve --procs 4           # supervised multi-process
    python -m repro --version

``segment-dir`` works on *any* directory holding saved list/detail
pages with a ``sample.json`` manifest — including pages you mirrored
from a real site — so the full pipeline is usable from the shell; the
other commands operate on the simulated corpus.  Handed a directory
*of* sample directories (the ``export-corpus`` layout) it becomes a
batch run through :mod:`repro.runner`: a worker pool
(``--workers``), a content-addressed stage cache (``--cache-dir``), a
JSONL run manifest, and ``--resume`` to finish an interrupted run.
The exit code is non-zero when any site ends quarantined or failed.

``serve`` starts the long-lived online service (:mod:`repro.serve`):
``POST /v1/segment`` answers from a per-site wrapper cache when it
can and the full pipeline when it must, with admission control and
graceful SIGTERM draining.  ``--procs N`` puts a supervising parent
in front of N crash-isolated worker processes sharing the port via
``SO_REUSEPORT``, restarting dead workers under a crash budget — see
``docs/serving.md``.

``--json`` on ``segment`` and ``segment-dir`` swaps the human output
for the machine-readable summary the service shares
(:mod:`repro.serve.schema`), so shell pipelines and the HTTP path
speak one format.

``--store DB`` on ``segment-dir`` ingests every cleanly segmented
site into a sqlite relational store (:mod:`repro.store`) after the
batch; the same flag on ``serve`` ingests online after each response.
``query`` then answers column-keyword queries over either store::

    python -m repro segment-dir ./corpus --store tables.db
    python -m repro query tables.db name charge bail
    python -m repro serve --store tables.db   # /query over HTTP too
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.config import METHODS
from repro.core.evaluation import score_page
from repro.core.pipeline import SegmentationPipeline
from repro.reporting.experiment import run_corpus
from repro.reporting.tables import render_table4
from repro.sitegen.corpus import SITE_BUILDERS, TABLE4_ORDER, build_corpus, build_site

__all__ = ["main", "build_parser"]


def _rate(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"{value} not in [0, 1]")
    return value


def _request_budget(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"{value} is not a positive count")
    return value


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"{value} is not a positive count")
    return value


def _add_obs_flags(command: argparse.ArgumentParser) -> None:
    """Observability flags shared by the segmenting commands."""
    command.add_argument(
        "--trace",
        action="store_true",
        help="print the pipeline's span tree (per-stage durations + counts)",
    )
    command.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics registry (counters + histograms) as JSON",
    )


def _make_obs(args):
    """An Observability bundle when any obs flag is set, else None."""
    if not (args.trace or args.metrics_out):
        return None
    from repro.obs import Observability

    return Observability()


def _emit_obs(args, obs, out) -> None:
    """Print the trace / write the metrics dump as requested."""
    if obs is None:
        return
    if args.trace:
        print("-- trace " + "-" * 51, file=out)
        print(obs.tracer.render(), file=out)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(obs.metrics.to_json() + "\n")
        print(f"metrics written to {args.metrics_out}", file=out)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Using the Structure of Web Sites for "
            "Automatic Segmentation of Tables' (SIGMOD 2004)."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("sites", help="list the simulated corpus sites")

    segment = commands.add_parser("segment", help="segment one corpus site")
    segment.add_argument("site", choices=sorted(SITE_BUILDERS))
    segment.add_argument(
        "--method", choices=METHODS, default="prob", help="segmenter to run"
    )
    segment.add_argument(
        "--page", type=int, default=None, help="only this list page"
    )
    segment.add_argument(
        "--fault-rate",
        type=_rate,
        default=0.0,
        help=(
            "chaos mode: crawl the site through a fault-injecting "
            "transport with this transient-failure rate (0-1)"
        ),
    )
    segment.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault plan (chaos runs are reproducible)",
    )
    segment.add_argument(
        "--max-requests",
        type=_request_budget,
        default=None,
        help="per-site request budget for the chaos crawl",
    )
    segment.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable summary instead of the record dump",
    )
    _add_obs_flags(segment)

    table4 = commands.add_parser(
        "table4", help="run the paper's main experiment"
    )
    table4.add_argument(
        "--methods",
        nargs="+",
        choices=METHODS,
        default=["prob", "csp"],
        help="methods to evaluate",
    )
    table4.add_argument(
        "--cache-dir",
        default=None,
        help="stage-cache root; warm re-runs skip unchanged stages",
    )
    table4.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="run the experiment's sites on a process pool this wide",
    )

    export = commands.add_parser(
        "export", help="save a simulated site's pages + manifest to disk"
    )
    export.add_argument("site", choices=sorted(SITE_BUILDERS))
    export.add_argument("directory", help="output directory")

    export_corpus = commands.add_parser(
        "export-corpus",
        help="save several simulated sites as sample subdirectories",
    )
    export_corpus.add_argument("directory", help="output directory")
    export_corpus.add_argument(
        "--sites",
        nargs="+",
        choices=sorted(SITE_BUILDERS),
        default=None,
        help="sites to export (default: all 12)",
    )
    export_corpus.add_argument(
        "--mixed",
        type=_worker_count,
        default=None,
        metavar="SLOTS",
        help=(
            "export an adversarial mixed *crawl* of this many site "
            "slots instead of clean sample directories (flat pages + "
            "a crawl.json truth manifest; feed it to `repro ingest`)"
        ),
    )
    export_corpus.add_argument(
        "--seed",
        type=int,
        default=0,
        help="mixed-crawl generation seed (with --mixed)",
    )
    export_corpus.add_argument(
        "--generation",
        type=int,
        default=0,
        metavar="G",
        help=(
            "mixed-crawl churn generation (with --mixed): 0 is the "
            "base corpus, each later generation mutates K detail "
            "pages, reskins one template and adds/removes a sub-site "
            "on top of the previous one (untouched pages stay "
            "byte-identical)"
        ),
    )

    ingest = commands.add_parser(
        "ingest",
        help=(
            "turn a crawl of arbitrary mixed pages into runnable site "
            "bundles (fingerprint -> classify -> cluster -> bundle)"
        ),
    )
    ingest.add_argument(
        "directory",
        help=(
            "crawl directory: flat *.html pages, optionally with a "
            "crawl.json ordering manifest (see export-corpus --mixed)"
        ),
    )
    ingest.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help=(
            "output directory: one sample subdirectory per bundle "
            "(segment-dir ready) plus the quarantine manifest"
        ),
    )
    ingest.add_argument(
        "--min-details",
        type=_worker_count,
        default=2,
        help="minimum detail pages per list page",
    )
    ingest.add_argument(
        "--join-threshold",
        type=_rate,
        default=0.5,
        help="fingerprint similarity needed to join a template cluster",
    )
    ingest.add_argument(
        "--merge-threshold",
        type=_rate,
        default=0.6,
        help="cluster similarity at which near-duplicate templates merge",
    )
    ingest.add_argument(
        "--fetch",
        action="append",
        metavar="SEED_URL",
        default=None,
        help=(
            "fetch mode: instead of reading every *.html file, walk "
            "this seed URL through the resilient fetcher (retries, "
            "budget, circuit breaker) and ingest what the crawl "
            "reaches; repeatable for multiple seeds"
        ),
    )
    ingest.add_argument(
        "--max-requests",
        type=_worker_count,
        default=None,
        metavar="N",
        help="fetch mode: hard crawl budget in fetch requests",
    )
    ingest.add_argument(
        "--snapshot",
        metavar="DIR",
        default=None,
        help=(
            "fetch mode: also persist the fetched pages plus a "
            "crawl.json manifest (URL order, fingerprints, crawl "
            "health) to this directory for replay"
        ),
    )
    ingest.add_argument(
        "--incremental",
        action="store_true",
        help=(
            "diff page fingerprints against the previous manifest in "
            "--out and re-ingest only changed/new pages' bundles; "
            "unchanged bundles carry forward byte-identically (falls "
            "back to a full ingest when no usable manifest exists)"
        ),
    )
    ingest.add_argument(
        "--store",
        metavar="DB",
        default=None,
        help=(
            "incremental mode: sqlite relational store whose rows for "
            "stale bundles should be removed (cascading, catalog "
            "recounted)"
        ),
    )
    ingest.add_argument(
        "--wrapper-cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "incremental mode: wrapper stage-cache root whose cached "
            "wrappers for stale bundles should be invalidated"
        ),
    )
    ingest.add_argument(
        "--json",
        action="store_true",
        help="print the full ingest report as JSON",
    )
    _add_obs_flags(ingest)

    segment_dir = commands.add_parser(
        "segment-dir",
        help=(
            "segment saved pages: one sample directory, or a corpus of "
            "sample subdirectories run as a (parallel, cached) batch"
        ),
    )
    segment_dir.add_argument("directory", help="sample or corpus directory")
    segment_dir.add_argument(
        "--method", choices=METHODS, default="prob", help="segmenter to run"
    )
    segment_dir.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="process-pool width (1 = run inline, serially)",
    )
    segment_dir.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="content-addressed stage cache; re-runs hit it",
    )
    segment_dir.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help=(
            "JSONL run manifest path (default: run_manifest.jsonl "
            "inside the corpus directory)"
        ),
    )
    segment_dir.add_argument(
        "--resume",
        action="store_true",
        help="skip tasks the manifest already records as completed",
    )
    segment_dir.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stall watchdog: give up if no site finishes for this long",
    )
    segment_dir.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable summary instead of the record dump",
    )
    segment_dir.add_argument(
        "--store",
        metavar="DB",
        default=None,
        help=(
            "ingest cleanly segmented sites into this sqlite relational "
            "store after the batch (idempotent; see `repro query`)"
        ),
    )
    _add_obs_flags(segment_dir)

    serve = commands.add_parser(
        "serve",
        help="run the long-lived HTTP segmentation service",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers",
        type=_worker_count,
        default=2,
        help="segmentation worker threads",
    )
    serve.add_argument(
        "--max-queue",
        type=_worker_count,
        default=8,
        help="admission-control queue depth (full queue answers 429)",
    )
    serve.add_argument(
        "--method",
        choices=METHODS,
        default="prob",
        help="default segmenter for payloads that name none",
    )
    serve.add_argument(
        "--wrapper-cache-dir",
        metavar="PATH",
        default=None,
        help="disk-backed wrapper registry (survives restarts)",
    )
    serve.add_argument(
        "--wrapper-cache-max-bytes",
        type=int,
        default=64 * 1024 * 1024,
        metavar="BYTES",
        help="LRU size bound of the wrapper cache directory",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-request deadline (queued or running past it -> 504)",
    )
    serve.add_argument(
        "--drift-threshold",
        type=_rate,
        default=0.5,
        help="wrapper quality below this re-runs the pipeline (0-1)",
    )
    serve.add_argument(
        "--hung-grace",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help=(
            "watchdog grace past the deadline before an in-flight "
            "request is abandoned as a 504"
        ),
    )
    serve.add_argument(
        "--mem-limit-mb",
        type=int,
        default=None,
        metavar="MB",
        help="cap the process address space (RLIMIT_AS) per worker",
    )
    serve.add_argument(
        "--procs",
        type=_worker_count,
        default=1,
        help=(
            "worker processes under a supervising parent; >1 needs "
            "SO_REUSEPORT (crashed workers are restarted)"
        ),
    )
    serve.add_argument(
        "--crash-budget",
        type=int,
        default=8,
        help="worker crashes tolerated per rolling window before exit 1",
    )
    serve.add_argument(
        "--crash-window",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="rolling window the crash budget is counted over",
    )
    serve.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="a worker silent this long is presumed wedged and killed",
    )
    serve.add_argument(
        "--chaos-plan",
        metavar="PATH",
        default=None,
        help="JSON ChaosPlan: inject worker kills / hangs / cache faults",
    )
    serve.add_argument(
        "--store",
        metavar="DB",
        default=None,
        help=(
            "sqlite relational store: ingest each response's records "
            "online and answer GET /query from it"
        ),
    )
    # Hidden plumbing: how a supervisor tells the worker process who
    # it is.  Never set by hand.
    serve.add_argument(
        "--_worker-index", dest="_worker_index", type=int, default=None,
        help=argparse.SUPPRESS,
    )
    serve.add_argument(
        "--_generation", dest="_generation", type=int, default=0,
        help=argparse.SUPPRESS,
    )
    serve.add_argument(
        "--_heartbeat-fd", dest="_heartbeat_fd", type=int, default=None,
        help=argparse.SUPPRESS,
    )
    serve.add_argument(
        "--_heartbeat-interval", dest="_heartbeat_interval", type=float,
        default=0.25, help=argparse.SUPPRESS,
    )

    query = commands.add_parser(
        "query",
        help="column-keyword query over a relational store",
    )
    query.add_argument("store", help="sqlite store written by --store")
    query.add_argument(
        "keywords",
        nargs="+",
        help='column keywords, e.g. "name" "charge" "bail"',
    )
    query.add_argument(
        "--method",
        choices=METHODS,
        default=None,
        help="only tables ingested under this segmenter",
    )
    query.add_argument(
        "--limit",
        type=_request_budget,
        default=20,
        metavar="N",
        help="maximum unioned rows returned",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="print the wire-shape result the /query endpoint returns",
    )

    show = commands.add_parser("show", help="print a generated page's HTML")
    show.add_argument("site", choices=sorted(SITE_BUILDERS))
    show.add_argument("--page", type=int, default=0, help="list page index")
    show.add_argument(
        "--detail", type=int, default=None, help="detail page index instead"
    )
    return parser


def _cmd_sites(out) -> int:
    corpus = build_corpus()
    print(f"{'site':<14} {'domain':<12} {'records':<9} layout", file=out)
    for site in corpus.sites:
        spec = site.spec
        counts = "/".join(str(count) for count in spec.records_per_page)
        print(
            f"{spec.name:<14} {spec.domain:<12} {counts:<9} "
            f"{spec.layout.value}",
            file=out,
        )
    return 0


def _cmd_segment(args, out) -> int:
    site = build_site(args.site)
    obs = _make_obs(args)
    pipeline = SegmentationPipeline(args.method, obs=obs)
    if args.fault_rate > 0.0 or args.max_requests is not None:
        from repro.crawl.resilient import CrawlBudget
        from repro.sitegen.faults import FaultPlan

        run = pipeline.segment_generated_site(
            site,
            fault_plan=FaultPlan(
                seed=args.fault_seed, transient_rate=args.fault_rate
            ),
            budget=CrawlBudget(max_requests=args.max_requests),
        )
    else:
        run = pipeline.segment_generated_site(site)
    truth_by_url = {
        site.list_pages[truth.page_index].url: truth for truth in site.truth
    }
    status = 0
    if args.json:
        import json as json_module

        from repro.serve.schema import site_run_summary

        summary = site_run_summary(run)
        summary["site"] = args.site
        for page_run in run.pages:
            truth = truth_by_url[page_run.page.url]
            if score_page(page_run.segmentation, truth).cor < len(truth.rows):
                status = 1
        covered = {page_run.page.url for page_run in run.pages}
        if any(url not in covered for url in truth_by_url):
            status = 1
        summary["exit_code"] = status
        print(json_module.dumps(summary, indent=2), file=out)
        _emit_obs(args, obs, out)
        return status
    if run.crawl_health is not None:
        print(f"crawl: {run.crawl_health.summary()}", file=out)
    for page_run in run.pages:
        truth = truth_by_url[page_run.page.url]
        if args.page is not None and truth.page_index != args.page:
            continue
        score = score_page(page_run.segmentation, truth)
        print(
            f"== {page_run.page.url} [{args.method}] "
            f"Cor={score.cor} InC={score.inc} FN={score.fn} "
            f"FP={score.fp} ({page_run.elapsed:.2f}s)",
            file=out,
        )
        for record in page_run.segmentation.records:
            print(f"  {record}", file=out)
        if score.cor < len(truth.rows):
            status = 1
    covered = {page_run.page.url for page_run in run.pages}
    for url, truth in truth_by_url.items():
        if args.page is not None and truth.page_index != args.page:
            continue
        if url not in covered:  # quarantined or budget-starved page
            status = 1
    _emit_obs(args, obs, out)
    return status


def _cmd_table4(args, out) -> int:
    result = run_corpus(
        methods=tuple(args.methods),
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    print(render_table4(result), file=out)
    return 0


def _cmd_export(args, out) -> int:
    from repro.webdoc.store import save_sample

    site = build_site(args.site)
    manifest = save_sample(
        args.directory,
        args.site,
        site.list_pages,
        [site.detail_pages(i) for i in range(len(site.list_pages))],
    )
    print(f"wrote {manifest}", file=out)
    return 0


def _cmd_segment_dir(args, out) -> int:
    from pathlib import Path

    from repro.runner import BatchRunner, RunnerConfig, tasks_from_directory

    try:
        tasks = tasks_from_directory(args.directory, method=args.method)
    except ValueError as error:
        print(f"error: {error}", file=out)
        return 2
    obs = _make_obs(args)
    manifest_path = args.manifest or str(
        Path(args.directory) / "run_manifest.jsonl"
    )
    runner = BatchRunner(
        RunnerConfig(
            workers=args.workers,
            cache_dir=args.cache_dir,
            manifest_path=manifest_path,
            resume=args.resume,
            stall_timeout=args.timeout,
            collect_trace=bool(args.trace),
            collect_wire=bool(args.store),
        ),
        obs=obs,
    )
    batch = runner.run(tasks)

    store_summary = None
    if args.store:
        store_summary = _ingest_batch_into_store(args, batch, obs, out)

    bad = sum(
        1
        for result in batch.results
        if result.status in ("failed", "timeout", "crashed", "quarantined")
    )
    if args.json:
        import json as json_module

        from repro.serve.schema import batch_summary

        summary = batch_summary(batch, method=args.method)
        if store_summary is not None:
            summary["store"] = store_summary
        summary["exit_code"] = 1 if (bad or batch.interrupted) else 0
        print(json_module.dumps(summary, indent=2), file=out)
        _emit_obs(args, obs, out)
        return summary["exit_code"]

    bad = 0
    for result in sorted(batch.results, key=lambda r: r.task_id):
        if result.status in ("failed", "timeout", "crashed"):
            bad += 1
            reason = (result.error or result.status).strip().splitlines()[-1]
            print(f"!! {result.task_id}: {result.status} — {reason}", file=out)
            continue
        if result.status == "quarantined":
            bad += 1
        for page in result.pages:
            print(
                f"== {page.url} [{args.method}] "
                f"{page.record_count} records "
                f"({page.elapsed:.2f}s)",
                file=out,
            )
            for record in page.records:
                print(f"  {record}", file=out)
            if page.unassigned:
                print(
                    "  unassigned: " + " | ".join(page.unassigned),
                    file=out,
                )
    counts = batch.by_status()
    summary = (
        f"sites: {counts.get('ok', 0)} ok, "
        f"{counts.get('quarantined', 0)} quarantined, "
        f"{counts.get('failed', 0) + counts.get('timeout', 0) + counts.get('crashed', 0)} failed"
    )
    if batch.skipped:
        summary += f", {len(batch.skipped)} resumed-skipped"
    if args.cache_dir:
        summary += (
            f" (cache: {batch.cache_hits} hits, "
            f"{batch.cache_misses} misses)"
        )
    if batch.interrupted:
        summary += " [interrupted]"
    print(summary, file=out)
    if store_summary is not None and "error" not in store_summary:
        print(
            f"store {args.store}: {store_summary['sites']} sites, "
            f"{store_summary['rows']} rows "
            f"({store_summary['unchanged']} unchanged, "
            f"{store_summary['replaced']} replaced, "
            f"{store_summary['skipped']} skipped)",
            file=out,
        )
    _emit_obs(args, obs, out)
    return 1 if (bad or batch.interrupted) else 0


def _ingest_batch_into_store(args, batch, obs, out):
    """Ingest a segment-dir batch into ``args.store``; never raises."""
    from repro.store import RelationalStore, StoreError, ingest_batch

    try:
        with RelationalStore(args.store, obs=obs) as store:
            report = ingest_batch(store, batch, method=args.method, obs=obs)
    except StoreError as error:
        print(f"store error: {error}", file=out)
        return {"error": str(error)}
    return report.as_dict()


def _cmd_export_corpus(args, out) -> int:
    from pathlib import Path

    from repro.webdoc.store import save_sample

    if args.mixed is not None:
        if args.sites:
            print("--mixed and --sites are mutually exclusive", file=out)
            return 2
        from repro.sitegen.mixed import (
            MixedCorpusSpec,
            build_mixed_corpus,
            write_crawl,
        )

        corpus = build_mixed_corpus(
            MixedCorpusSpec(
                sites=args.mixed,
                seed=args.seed,
                generation=args.generation,
            )
        )
        manifest = write_crawl(corpus, args.directory)
        print(
            f"wrote mixed crawl: {corpus.page_count} pages, "
            f"{len(corpus.sites)} true sites, "
            f"{len(corpus.distractor_urls)} distractors "
            f"(truth manifest: {manifest})",
            file=out,
        )
        if corpus.churn is not None:
            churn = corpus.churn
            print(
                f"generation {churn.generation} churn: "
                f"{len(churn.mutated)} pages mutated, "
                f"{len(churn.reskinned)} sites reskinned, "
                f"{len(churn.added)} added, {len(churn.removed)} removed",
                file=out,
            )
        return 0

    names = args.sites or sorted(SITE_BUILDERS)
    root = Path(args.directory)
    for name in names:
        site = build_site(name)
        save_sample(
            root / name,
            name,
            site.list_pages,
            [site.detail_pages(i) for i in range(len(site.list_pages))],
        )
    print(f"wrote {len(names)} sample directories under {root}", file=out)
    return 0


def _ingest_load_pages(args, obs, out):
    """The ingest front half: pages + optional crawl health, or an exit code.

    Returns ``(pages, crawl_health)`` on success and ``(None, code)``
    on failure, so :func:`_cmd_ingest` can return the code directly.
    """
    import json as json_module

    if args.fetch:
        from repro.crawl.fetcher import DirectorySite
        from repro.crawl.resilient import CrawlBudget
        from repro.ingest import fetch_crawl, write_snapshot

        budget = None
        if args.max_requests is not None:
            budget = CrawlBudget(max_requests=args.max_requests)
        crawl = fetch_crawl(
            DirectorySite(args.directory),
            args.fetch,
            budget=budget,
            obs=obs,
        )
        if not crawl.pages:
            print(
                f"fetch mode: no pages reachable from seeds {args.fetch}",
                file=out,
            )
            return None, 2
        if args.snapshot:
            snapshot = write_snapshot(crawl, args.snapshot)
            if not args.json:
                print(
                    f"snapshot: {crawl.page_count} pages -> {snapshot}",
                    file=out,
                )
        return crawl.pages, crawl.health.as_dict()

    from repro.sitegen.mixed import load_crawl_pages

    try:
        pages = load_crawl_pages(args.directory)
    except (OSError, ValueError, json_module.JSONDecodeError) as error:
        print(f"cannot read crawl directory: {error}", file=out)
        return None, 2
    return pages, None


def _ingest_invalidate(args, stale_bundles, obs, out):
    """Propagate stale bundles to the store and wrapper cache."""
    from repro.lifecycle import invalidate_consumers
    from repro.store import RelationalStore, StoreError

    registry = None
    if args.wrapper_cache_dir:
        from repro.runner.cache import StageCache
        from repro.serve.registry import WrapperRegistry

        registry = WrapperRegistry(
            cache=StageCache(args.wrapper_cache_dir), obs=obs
        )
    try:
        if args.store:
            with RelationalStore(args.store, obs=obs) as store:
                report = invalidate_consumers(
                    stale_bundles, store=store, registry=registry, obs=obs
                )
        else:
            report = invalidate_consumers(
                stale_bundles, registry=registry, obs=obs
            )
    except StoreError as error:
        print(f"store error: {error}", file=out)
        return {"error": str(error)}
    return report.as_dict()


def _cmd_ingest(args, out) -> int:
    import json as json_module
    from pathlib import Path

    from repro.ingest import (
        IngestConfig,
        ingest_pages,
        load_previous_manifest,
        reingest_pages,
        write_bundles,
        write_reingest,
    )
    from repro.ingest.cluster import ClusterConfig
    from repro.obs import NULL_OBS

    obs = _make_obs(args)
    run_obs = obs or NULL_OBS

    pages, crawl_health = _ingest_load_pages(args, run_obs, out)
    if pages is None:
        return crawl_health  # the front half already printed the reason

    config = IngestConfig(
        cluster=ClusterConfig(
            join_threshold=args.join_threshold,
            merge_threshold=args.merge_threshold,
        ),
        min_details=args.min_details,
    )

    previous = load_previous_manifest(args.out) if args.incremental else None
    if previous is not None:
        report = reingest_pages(pages, previous, config, obs=run_obs)
        report.crawl_health = crawl_health
        manifest = write_reingest(report, args.out)
        bundle_total = report.bundle_count
        stale_bundles = list(report.stale_bundles)
    else:
        if args.incremental and not args.json:
            print(
                "incremental: no usable previous manifest in "
                f"{args.out}; running a full ingest",
                file=out,
            )
        report = ingest_pages(pages, config, obs=run_obs)
        report.crawl_health = crawl_health
        manifest = write_bundles(report, args.out)
        bundle_total = len(report.bundles)
        stale_bundles = []

    invalidation = None
    if args.store or args.wrapper_cache_dir:
        invalidation = _ingest_invalidate(args, stale_bundles, run_obs, out)

    if args.json:
        summary = report.as_dict()
        summary["out"] = str(Path(args.out))
        summary["invalidation"] = invalidation
        print(json_module.dumps(summary, indent=2), file=out)
    else:
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in report.quarantine_counts().items()
        )
        print(
            f"ingest: {report.page_count} pages -> "
            f"{bundle_total} bundles "
            f"({report.bundled_page_count} pages); "
            f"{len(report.quarantined)} quarantined"
            + (f" ({reasons})" if reasons else ""),
            file=out,
        )
        if previous is not None:
            counts = report.diff.counts()
            print(
                "incremental: "
                f"{counts['unchanged']} unchanged / "
                f"{counts['changed']} changed / "
                f"{counts['added']} added / "
                f"{counts['removed']} removed pages; "
                f"{len(report.carried)} bundles carried, "
                f"{len(report.rebuilt)} rebuilt, "
                f"{len(report.removed_bundles)} removed "
                f"({report.reprocessed_page_count} pages re-processed)",
                file=out,
            )
        if invalidation is not None and "error" not in invalidation:
            print(
                f"invalidated: {invalidation['store_sites_removed']} "
                f"store sites, {invalidation['wrappers_invalidated']} "
                "cached wrappers",
                file=out,
            )
        if not report.reconciles():  # pragma: no cover - safety net
            print("WARNING: page accounting does not reconcile", file=out)
        print(
            f"wrote {bundle_total} bundles under {args.out} "
            f"(manifest: {manifest})",
            file=out,
        )
    _emit_obs(args, obs, out)
    if not report.reconciles():
        return 1
    return 0 if bundle_total else 1


def _service_config(args, wrapper_cache_dir=None):
    from repro.crawl.resilient import CrawlBudget
    from repro.serve import ServiceConfig

    return ServiceConfig(
        method=args.method,
        drift_threshold=args.drift_threshold,
        wrapper_cache_dir=wrapper_cache_dir or args.wrapper_cache_dir,
        wrapper_cache_max_bytes=args.wrapper_cache_max_bytes,
        request_budget=CrawlBudget(deadline_s=args.deadline),
        workers=args.workers,
        max_queue=args.max_queue,
        hung_grace_s=args.hung_grace,
        store_path=args.store,
    )


def _run_supervised(args, out) -> int:
    """``serve --procs N``: supervise N worker processes."""
    import shutil
    import sys as sys_module
    import tempfile

    from repro.serve import Supervisor, SupervisorConfig

    # Crash survivability needs shared state: without an explicit
    # wrapper dir, give the fleet a throwaway one so a restarted
    # worker still warms from its predecessors' wrappers.
    wrapper_dir = args.wrapper_cache_dir
    cleanup_dir = None
    if wrapper_dir is None:
        wrapper_dir = cleanup_dir = tempfile.mkdtemp(prefix="repro-wrappers-")

    def worker_command(spawn):
        argv = [
            sys_module.executable,
            "-m",
            "repro",
            "serve",
            "--host", args.host,
            "--port", str(spawn.port),
            "--workers", str(args.workers),
            "--max-queue", str(args.max_queue),
            "--method", args.method,
            "--wrapper-cache-dir", wrapper_dir,
            "--wrapper-cache-max-bytes", str(args.wrapper_cache_max_bytes),
            "--deadline", str(args.deadline),
            "--drift-threshold", str(args.drift_threshold),
            "--hung-grace", str(args.hung_grace),
            "--_worker-index", str(spawn.index),
            "--_generation", str(spawn.generation),
            "--_heartbeat-fd", str(spawn.heartbeat_fd),
            "--_heartbeat-interval", str(spawn.heartbeat_interval_s),
        ]
        if args.mem_limit_mb is not None:
            argv += ["--mem-limit-mb", str(args.mem_limit_mb)]
        if args.chaos_plan is not None:
            argv += ["--chaos-plan", args.chaos_plan]
        if args.store is not None:
            argv += ["--store", args.store]
        return argv

    supervisor = Supervisor(
        worker_command,
        SupervisorConfig(
            procs=args.procs,
            crash_budget=args.crash_budget,
            crash_window_s=args.crash_window,
            heartbeat_timeout_s=args.heartbeat_timeout,
        ),
        host=args.host,
        port=args.port,
        out=out,
    )
    try:
        return supervisor.run()
    finally:
        if cleanup_dir is not None:
            shutil.rmtree(cleanup_dir, ignore_errors=True)


def _cmd_serve(args, out) -> int:
    from repro.serve import (
        SegmentationServer,
        SegmentationService,
        load_chaos_plan,
        run_worker,
    )

    chaos_plan = (
        load_chaos_plan(args.chaos_plan) if args.chaos_plan else None
    )
    if args._worker_index is not None:
        # Supervised worker process (hidden CLI path).
        return run_worker(
            _service_config(args),
            host=args.host,
            port=args.port,
            heartbeat_fd=args._heartbeat_fd,
            heartbeat_interval_s=args._heartbeat_interval,
            worker_index=args._worker_index,
            generation=args._generation,
            chaos_plan=chaos_plan,
            mem_limit_mb=args.mem_limit_mb,
            out=None,
        )
    if args.procs > 1:
        return _run_supervised(args, out)
    from repro.serve.supervisor import apply_memory_limit

    apply_memory_limit(args.mem_limit_mb)
    service = SegmentationService(_service_config(args))
    server = SegmentationServer(service, host=args.host, port=args.port)
    if chaos_plan is not None:
        from repro.serve import ChaosInjector

        server.request_hook = ChaosInjector(
            chaos_plan, 0, 0, metrics=service.metrics
        ).on_request
    return server.run(out=out)


def _cmd_query(args, out) -> int:
    from pathlib import Path

    from repro.store import RelationalStore, StoreError, query_store

    if not Path(args.store).is_file():
        print(f"error: no store database at {args.store}", file=out)
        return 2
    try:
        with RelationalStore(args.store) as store:
            result = query_store(
                store,
                args.keywords,
                limit=args.limit,
                method=args.method,
            )
    except ValueError as error:
        print(f"error: {error}", file=out)
        return 2
    except StoreError as error:
        print(f"store error: {error}", file=out)
        return 2
    if args.json:
        import json as json_module

        print(json_module.dumps(result.as_dict(), indent=2), file=out)
        return 0 if result.tables else 1
    if not result.tables:
        print(f"no tables match: {', '.join(result.keywords)}", file=out)
        return 1
    for hit in result.tables:
        bindings = ", ".join(
            f"{keyword}→{binding['column']}"
            f" ({binding['attribute']}, {binding['strength']:.1f})"
            for keyword, binding in hit.columns.items()
        )
        print(
            f"== {hit.site_id} [{hit.method}] score={hit.score:.2f} "
            f"{hit.record_count} records — {bindings}",
            file=out,
        )
    header = " | ".join(result.keywords)
    print(f"-- rows ({len(result.rows)}) — {header}", file=out)
    for row in result.rows:
        values = " | ".join(
            row["values"].get(keyword, "") for keyword in result.keywords
        )
        print(f"  [{row['site']} {row['page']}#{row['record']}] {values}", file=out)
    return 0


def _cmd_show(args, out) -> int:
    site = build_site(args.site)
    if args.detail is not None:
        page = site.detail_pages(args.page)[args.detail]
    else:
        page = site.list_pages[args.page]
    print(page.html, file=out)
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "sites":
        return _cmd_sites(out)
    if args.command == "segment":
        return _cmd_segment(args, out)
    if args.command == "table4":
        return _cmd_table4(args, out)
    if args.command == "export":
        return _cmd_export(args, out)
    if args.command == "export-corpus":
        return _cmd_export_corpus(args, out)
    if args.command == "ingest":
        return _cmd_ingest(args, out)
    if args.command == "segment-dir":
        return _cmd_segment_dir(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "query":
        return _cmd_query(args, out)
    if args.command == "show":
        return _cmd_show(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")

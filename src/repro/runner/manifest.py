"""The JSONL run manifest: per-task records, resumable runs.

A batch run appends one JSON object per line to its manifest as work
completes, so a run killed at any point leaves a readable ledger of
exactly what finished.  Three record types:

``header``
    written once when a run (or a resumed continuation) starts::

        {"type": "header", "run": {...engine config summary...},
         "tasks": 12, "resumed": false}

``task``
    one per finished task, appended the moment the engine learns its
    fate::

        {"type": "task", "task_id": "lee", "fingerprint": "ab12...",
         "status": "ok", "duration_s": 1.73, "cache_hits": 4,
         "cache_misses": 0, "records": 31, "digest": "9f3c...",
         "error": null}

    ``status`` is one of ``ok`` (clean), ``quarantined`` (the site
    completed but a page was degraded/unsegmentable), ``failed``
    (the worker raised), or ``timeout`` (the stall watchdog gave up
    on it).  ``fingerprint`` identifies the *task definition* (source
    + method), ``digest`` the *result content*.

``note``
    free-form engine annotations (e.g. an interrupt).

Resume semantics (``--resume``): the engine reloads the manifest,
keeps the **last** record per task id, and skips tasks whose last
status is ``ok`` or ``quarantined`` *and* whose fingerprint matches
the task it was about to run — a task whose definition changed (same
id, different pages or method) is re-run, not wrongly skipped.
Failed and timed-out tasks are always retried.  Appending to the same
file keeps the full history of every attempt.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Iterable

__all__ = ["TaskRecord", "RunManifest", "COMPLETED_STATUSES"]

#: Statuses a resume treats as "done, do not re-run".
COMPLETED_STATUSES = frozenset({"ok", "quarantined"})


@dataclass
class TaskRecord:
    """One task's outcome, as written to the manifest."""

    task_id: str
    fingerprint: str
    status: str
    duration_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    records: int = 0
    digest: str = ""
    error: str | None = None

    def as_line(self) -> str:
        payload: dict[str, Any] = {"type": "task", **asdict(self)}
        payload["duration_s"] = round(self.duration_s, 6)
        return json.dumps(payload, sort_keys=True)


class RunManifest:
    """Append-only JSONL ledger of one (possibly resumed) batch run."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # -- writing ----------------------------------------------------

    def _append(self, payload: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Open/write/close per record: a killed run loses at most the
        # record being written, never buffered earlier ones.
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")

    def write_header(
        self, run: dict[str, Any], tasks: int, resumed: bool
    ) -> None:
        self._append(
            {"type": "header", "run": run, "tasks": tasks, "resumed": resumed}
        )

    def append_task(self, record: TaskRecord) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(record.as_line() + "\n")

    def write_note(self, message: str) -> None:
        self._append({"type": "note", "message": message})

    # -- reading ----------------------------------------------------

    def entries(self) -> list[dict[str, Any]]:
        """All parseable records, in file order.

        A trailing torn line (the run was killed mid-write) is
        skipped, not fatal — that is the expected shape of an
        interrupted run's manifest.
        """
        if not self.path.is_file():
            return []
        entries: list[dict[str, Any]] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return entries

    def latest_by_task(self) -> dict[str, dict[str, Any]]:
        """Last task record per task id (retries overwrite)."""
        latest: dict[str, dict[str, Any]] = {}
        for entry in self.entries():
            if entry.get("type") == "task" and "task_id" in entry:
                latest[entry["task_id"]] = entry
        return latest

    def completed(
        self, fingerprints: dict[str, str] | None = None
    ) -> set[str]:
        """Task ids a resume may skip.

        Args:
            fingerprints: current ``task_id -> fingerprint`` map; when
                given, a recorded completion only counts if its
                fingerprint still matches (the task definition did not
                change under the same id).
        """
        done: set[str] = set()
        for task_id, entry in self.latest_by_task().items():
            if entry.get("status") not in COMPLETED_STATUSES:
                continue
            if fingerprints is not None:
                expected = fingerprints.get(task_id)
                if expected is None or entry.get("fingerprint") != expected:
                    continue
            done.add(task_id)
        return done

    @staticmethod
    def records_from(entries: Iterable[dict[str, Any]]) -> list[TaskRecord]:
        """Parse ``task`` entries back into :class:`TaskRecord`."""
        records = []
        for entry in entries:
            if entry.get("type") != "task":
                continue
            records.append(
                TaskRecord(
                    task_id=entry.get("task_id", ""),
                    fingerprint=entry.get("fingerprint", ""),
                    status=entry.get("status", ""),
                    duration_s=float(entry.get("duration_s", 0.0)),
                    cache_hits=int(entry.get("cache_hits", 0)),
                    cache_misses=int(entry.get("cache_misses", 0)),
                    records=int(entry.get("records", 0)),
                    digest=entry.get("digest", ""),
                    error=entry.get("error"),
                )
            )
        return records

"""Task and result shapes for the batch-execution engine.

A :class:`SiteTask` names one unit of work — one site's pipeline run —
by *reference*, not by value: a worker process receives the sample
directory path or generated-site name and loads/builds the pages
itself, so nothing heavyweight crosses the pickle boundary on the way
in.  On the way back a :class:`TaskResult` carries only plain data
(per-page record strings, counters, a metrics snapshot), so results
are cheap to ship and to compare.

Task kinds understood by :mod:`repro.runner.worker`:

* ``sample_dir`` — ``spec`` is a directory with a ``sample.json``
  manifest (:func:`repro.webdoc.store.load_sample`);
* ``generated`` — ``spec`` is a simulated-corpus site name
  (:func:`repro.sitegen.corpus.build_site`);
* ``eval_generated`` — like ``generated`` but also scored against the
  site's ground truth (the Table 4 experiment path); the rows land in
  ``TaskResult.payload``;
* ``_sleep`` — test hook: sleep ``spec`` seconds (exercises the stall
  watchdog without a real site).

Every result carries a content ``digest`` — a SHA-256 fingerprint of
(url, record strings, unassigned strings) per page — which is what
"parallel run identical to serial run" is asserted on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.runner.cache import fingerprint
from repro.webdoc.store import MANIFEST_NAME

__all__ = [
    "PageOutcome",
    "SiteTask",
    "TaskResult",
    "tasks_for_sites",
    "tasks_from_directory",
]


@dataclass(frozen=True)
class SiteTask:
    """One schedulable unit: one site through the pipeline.

    Attributes:
        task_id: stable identifier; manifest records and resume
            bookkeeping key on it.
        kind: task kind (see module docstring).
        spec: the kind-specific reference (path / site name / seconds).
        method: segmentation method to run.
        cost_hint: relative expected cost; the engine schedules
            largest-first so the pool's tail stays short.
    """

    task_id: str
    kind: str
    spec: str
    method: str = "prob"
    cost_hint: float = 0.0

    def fingerprint(self) -> str:
        """Identity of the task *definition* (not its result)."""
        return fingerprint("task", self.kind, self.spec, self.method)


@dataclass
class PageOutcome:
    """One list page's result, reduced to plain comparable data.

    ``records`` holds display strings (what the digest and the text
    CLI show); ``wire`` — attached only under the runner's
    ``collect_wire`` flag (``segment-dir --store``) — holds the page's
    full wire entry (:func:`repro.store.ingest.page_entry`: structured
    records plus semantic column names) for store ingestion.  The
    digest never covers ``wire``, so collecting it cannot perturb the
    serial/parallel identity checks.
    """

    url: str
    records: list[str] = field(default_factory=list)
    unassigned: list[str] = field(default_factory=list)
    elapsed: float = 0.0
    notes: dict[str, Any] = field(default_factory=dict)
    wire: dict[str, Any] | None = None

    @property
    def record_count(self) -> int:
        return len(self.records)


@dataclass
class TaskResult:
    """Everything a worker reports back for one task.

    ``metrics`` is the worker registry's plain-dict snapshot and
    ``trace`` (optional) its span trees in ``to_dict`` form; the
    engine merges both into the parent's bundle.  ``payload`` carries
    kind-specific extras (scored rows for ``eval_generated``).
    """

    task_id: str
    status: str
    duration_s: float = 0.0
    pages: list[PageOutcome] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)
    trace: list[dict[str, Any]] | None = None
    payload: Any = None
    error: str | None = None

    @property
    def record_count(self) -> int:
        return sum(page.record_count for page in self.pages)

    def digest(self) -> str:
        """Content fingerprint of the segmentation output."""
        return fingerprint(
            "result",
            [
                (page.url, page.records, page.unassigned)
                for page in self.pages
            ],
        )


def _directory_cost(path: Path) -> float:
    """Total page bytes in a sample directory (scheduling weight)."""
    return float(
        sum(
            entry.stat().st_size
            for entry in path.iterdir()
            if entry.is_file()
        )
    )


def tasks_from_directory(
    root: str | Path, method: str = "prob"
) -> list[SiteTask]:
    """Tasks for a sample directory *or* a corpus of sample directories.

    A directory holding ``sample.json`` is one task.  Otherwise every
    immediate subdirectory holding a ``sample.json`` becomes a task
    (the layout ``export-corpus`` writes).  Raises ``ValueError`` when
    neither shape is found.
    """
    root = Path(root)
    if (root / MANIFEST_NAME).is_file():
        return [
            SiteTask(
                task_id=root.name or "sample",
                kind="sample_dir",
                spec=str(root),
                method=method,
                cost_hint=_directory_cost(root),
            )
        ]
    tasks = [
        SiteTask(
            task_id=child.name,
            kind="sample_dir",
            spec=str(child),
            method=method,
            cost_hint=_directory_cost(child),
        )
        for child in sorted(root.iterdir())
        if child.is_dir() and (child / MANIFEST_NAME).is_file()
    ]
    if not tasks:
        raise ValueError(
            f"{root} holds neither a {MANIFEST_NAME} nor sample "
            "subdirectories (see `repro export-corpus`)"
        )
    return tasks


def tasks_for_sites(
    names: list[str], method: str = "prob", kind: str = "generated"
) -> list[SiteTask]:
    """One ``generated`` (or ``eval_generated``) task per site name."""
    return [
        SiteTask(task_id=f"{name}:{method}", kind=kind, spec=name, method=method)
        for name in names
    ]

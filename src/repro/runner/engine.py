"""The batch-execution engine: a worker pool over site tasks.

:class:`BatchRunner` takes a list of :class:`~repro.runner.tasks.SiteTask`
and runs each through :func:`~repro.runner.worker.execute_task`,
either inline (``workers <= 1`` — the serial reference path, bit-for-
bit what the old per-site loops produced) or on a
``ProcessPoolExecutor`` using the ``spawn`` start method (workers
import the code fresh; nothing leaks from the parent but the pickled
task).  Around the pool it provides:

* **ordered-by-cost scheduling** — tasks are submitted largest
  ``cost_hint`` first, so the expensive sites start immediately and
  the pool's tail is short;
* **a stall watchdog** (``stall_timeout``) — if no task completes for
  that many seconds, still-running tasks are recorded as ``timeout``,
  unstarted ones are cancelled, and the batch returns (a hung worker
  cannot wedge the run; it is abandoned with the pool);
* **graceful cancellation** — ``KeyboardInterrupt`` cancels unstarted
  tasks, notes the interrupt in the manifest, and returns the partial
  :class:`BatchResult`; a later ``--resume`` picks up the remainder;
* **pool-crash recovery** — a worker process dying (SIGKILL, OOM,
  segfault) breaks the whole ``ProcessPoolExecutor``; the engine
  records every in-flight task as ``crashed`` (*not* a completed
  status, so ``--resume`` retries them), rebuilds the pool once
  (``runner.pool.rebuilds``) and keeps going; a second broken pool
  in the same run ends it as interrupted.  Tasks are submitted
  incrementally (at most ``workers + 1`` in flight) so one crash
  poisons a bounded set of futures;
* **observability merge** — each worker's metrics snapshot (and span
  tree, with ``collect_trace``) is folded into the parent bundle via
  :meth:`MetricsRegistry.merge` / :meth:`Tracer.merge`, and the engine
  books ``runner.*`` counters and the ``runner.batch`` span;
* **manifest + resume** — every outcome is appended to the JSONL
  :class:`~repro.runner.manifest.RunManifest`; with ``resume=True``
  tasks already completed (per the manifest, fingerprint-checked) are
  skipped.

The cache (``cache_dir``) is shared by all workers: the first run
fills it, subsequent runs and parameter sweeps hit it (see
``docs/runner.md``).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Any

from repro.core.config import PipelineConfig
from repro.obs import Observability, current as current_obs
from repro.runner.cache import fingerprint
from repro.runner.manifest import RunManifest, TaskRecord
from repro.runner.tasks import SiteTask, TaskResult
from repro.runner.worker import execute_task

__all__ = ["RunnerConfig", "BatchResult", "BatchRunner"]


@dataclass(frozen=True)
class RunnerConfig:
    """How a batch should execute.

    Attributes:
        workers: pool size; ``<= 1`` runs inline in this process.
        cache_dir: stage-cache root; ``None`` disables caching.
        manifest_path: JSONL run-manifest path; ``None`` disables the
            manifest (and therefore resume).
        resume: skip tasks the manifest records as completed.
        stall_timeout: watchdog seconds (see module docstring);
            ``None`` waits forever.
        collect_trace: ship per-task span trees home and merge them
            into the parent tracer (costs memory; off by default).
        collect_wire: attach store-ready wire entries to every page
            outcome (``segment-dir --store``); off by default because
            the extra payload crosses the pickle boundary.
        pipeline: pipeline configuration handed to every worker.
    """

    workers: int = 1
    cache_dir: str | None = None
    manifest_path: str | None = None
    resume: bool = False
    stall_timeout: float | None = None
    collect_trace: bool = False
    collect_wire: bool = False
    pipeline: PipelineConfig | None = None

    def summary(self) -> dict[str, Any]:
        """Manifest-header form (plain JSON data)."""
        return {
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "resume": self.resume,
            "stall_timeout": self.stall_timeout,
            "pipeline": fingerprint(self.pipeline) if self.pipeline else None,
        }


@dataclass
class BatchResult:
    """What a batch run produced.

    ``results`` holds one :class:`TaskResult` per *executed* task (in
    completion order for parallel runs); ``skipped`` the task ids a
    resume did not re-run; ``interrupted`` whether the run ended on
    Ctrl-C or the stall watchdog.
    """

    results: list[TaskResult] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    interrupted: bool = False
    wall_s: float = 0.0

    def by_status(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        """Did every executed task finish with status ``ok``?"""
        return not self.interrupted and all(
            result.status == "ok" for result in self.results
        )

    @property
    def cache_hits(self) -> int:
        return sum(result.cache_hits for result in self.results)

    @property
    def cache_misses(self) -> int:
        return sum(result.cache_misses for result in self.results)

    def digest(self) -> str:
        """Order-independent fingerprint of all task result contents."""
        return fingerprint(
            "batch",
            sorted(
                (result.task_id, result.digest()) for result in self.results
            ),
        )


class BatchRunner:
    """Runs site tasks per a :class:`RunnerConfig` (see module docs)."""

    def __init__(
        self, config: RunnerConfig | None = None, obs: Observability | None = None
    ) -> None:
        self.config = config or RunnerConfig()
        self.obs = obs if obs is not None else current_obs()

    # -- helpers ----------------------------------------------------

    def _manifest(self) -> RunManifest | None:
        if self.config.manifest_path is None:
            return None
        return RunManifest(Path(self.config.manifest_path))

    def _record(
        self, manifest: RunManifest | None, task: SiteTask, result: TaskResult
    ) -> None:
        obs = self.obs
        obs.counter(f"runner.tasks.{result.status}").inc()
        obs.histogram("runner.task.seconds").observe(result.duration_s)
        obs.metrics.merge(result.metrics)
        if result.trace:
            obs.tracer.merge(result.trace)
        if manifest is not None:
            manifest.append_task(
                TaskRecord(
                    task_id=task.task_id,
                    fingerprint=task.fingerprint(),
                    status=result.status,
                    duration_s=result.duration_s,
                    cache_hits=result.cache_hits,
                    cache_misses=result.cache_misses,
                    records=result.record_count,
                    digest=result.digest(),
                    error=result.error,
                )
            )

    # -- the run ----------------------------------------------------

    def run(self, tasks: list[SiteTask]) -> BatchResult:
        """Execute ``tasks``; always returns (partial on interrupt)."""
        config = self.config
        manifest = self._manifest()
        batch = BatchResult()
        started = time.perf_counter()

        pending = list(tasks)
        if manifest is not None and config.resume:
            done = manifest.completed(
                {task.task_id: task.fingerprint() for task in tasks}
            )
            batch.skipped = [t.task_id for t in pending if t.task_id in done]
            pending = [t for t in pending if t.task_id not in done]
            self.obs.counter("runner.tasks.skipped").inc(len(batch.skipped))
        # Largest first: the expensive sites start immediately, the
        # pool drains evenly, and the tail is one small task long.
        pending.sort(key=lambda task: task.cost_hint, reverse=True)

        if manifest is not None:
            manifest.write_header(
                run=config.summary(), tasks=len(pending), resumed=config.resume
            )

        with self.obs.span(
            "runner.batch", workers=config.workers, tasks=len(pending)
        ) as span:
            try:
                if config.workers <= 1:
                    self._run_serial(pending, manifest, batch)
                else:
                    self._run_pool(pending, manifest, batch)
            except KeyboardInterrupt:
                # Graceful cancellation: unstarted tasks were cancelled
                # by the pool teardown; report what did finish and let
                # a later --resume pick up the rest.
                batch.interrupted = True
                if manifest is not None:
                    manifest.write_note("interrupted (KeyboardInterrupt)")
            finally:
                batch.wall_s = time.perf_counter() - started
                span.attributes["completed"] = len(batch.results)
                span.attributes["skipped"] = len(batch.skipped)
                span.attributes["interrupted"] = batch.interrupted
        return batch

    def _run_serial(
        self,
        pending: list[SiteTask],
        manifest: RunManifest | None,
        batch: BatchResult,
    ) -> None:
        for task in pending:
            result = execute_task(
                task,
                cache_dir=self.config.cache_dir,
                collect_trace=self.config.collect_trace,
                config=self.config.pipeline,
                collect_wire=self.config.collect_wire,
            )
            batch.results.append(result)
            self._record(manifest, task, result)

    def _make_executor(self) -> ProcessPoolExecutor:
        # ``spawn`` everywhere: identical semantics across platforms,
        # and it catches unpicklable task state immediately.
        return ProcessPoolExecutor(
            max_workers=self.config.workers, mp_context=get_context("spawn")
        )

    def _run_pool(
        self,
        pending: list[SiteTask],
        manifest: RunManifest | None,
        batch: BatchResult,
    ) -> None:
        config = self.config
        executor = self._make_executor()
        queue = list(pending)
        in_flight: dict[Any, SiteTask] = {}
        rebuilt = False

        def submit() -> None:
            # Incremental submission keeps the blast radius of a pool
            # crash bounded: a SIGKILLed worker poisons every future
            # already submitted, so only workers+1 tasks ride at once.
            while queue and len(in_flight) < config.workers + 1:
                task = queue.pop(0)
                in_flight[
                    executor.submit(
                        execute_task,
                        task,
                        cache_dir=config.cache_dir,
                        collect_trace=config.collect_trace,
                        config=config.pipeline,
                        collect_wire=config.collect_wire,
                    )
                ] = task

        try:
            submit()
            while in_flight:
                done, _ = wait(
                    set(in_flight),
                    timeout=config.stall_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Watchdog: nothing finished within stall_timeout.
                    # Record the stragglers and abandon the pool.
                    batch.interrupted = True
                    for future, task in in_flight.items():
                        cancelled = future.cancel()
                        if not cancelled:
                            result = TaskResult(
                                task_id=task.task_id,
                                status="timeout",
                                duration_s=config.stall_timeout or 0.0,
                                error="stall watchdog expired",
                            )
                            batch.results.append(result)
                            self._record(manifest, task, result)
                    if manifest is not None:
                        manifest.write_note("stall watchdog expired")
                    executor.shutdown(wait=False, cancel_futures=True)
                    return
                pool_broken = False
                for future in done:
                    task = in_flight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as error:
                        # A worker process died (SIGKILL, OOM,
                        # segfault).  ``crashed`` is not a completed
                        # status, so --resume retries it.
                        pool_broken = True
                        result = TaskResult(
                            task_id=task.task_id,
                            status="crashed",
                            error=f"worker process died: {error}",
                        )
                    except Exception as error:
                        result = TaskResult(
                            task_id=task.task_id,
                            status="failed",
                            error=f"{type(error).__name__}: {error}",
                        )
                    batch.results.append(result)
                    self._record(manifest, task, result)
                if pool_broken:
                    # Every in-flight future is poisoned with it.
                    self.obs.counter("runner.pool.crashes").inc()
                    executor.shutdown(wait=False, cancel_futures=True)
                    for future, task in list(in_flight.items()):
                        result = TaskResult(
                            task_id=task.task_id,
                            status="crashed",
                            error="worker process died (pool lost)",
                        )
                        batch.results.append(result)
                        self._record(manifest, task, result)
                    in_flight.clear()
                    if rebuilt:
                        # Two broken pools in one run: the problem is
                        # systemic, stop retrying and report partial.
                        batch.interrupted = True
                        if manifest is not None:
                            manifest.write_note(
                                "process pool crashed twice; giving up"
                            )
                        return
                    rebuilt = True
                    self.obs.counter("runner.pool.rebuilds").inc()
                    if manifest is not None:
                        manifest.write_note(
                            "process pool crashed; rebuilt once"
                        )
                    executor = self._make_executor()
                submit()
            executor.shutdown()
        except KeyboardInterrupt:
            executor.shutdown(wait=False, cancel_futures=True)
            raise

"""Parallel batch execution with a content-addressed stage cache.

The runner is the layer between the single-site
:class:`~repro.core.pipeline.SegmentationPipeline` and every batch
consumer (``repro segment-dir``, the Table 4 experiment driver, the
scaling benchmarks).  It turns "a corpus of sites" into scheduled,
cached, resumable work:

* :mod:`repro.runner.engine` — :class:`BatchRunner`: a
  ``ProcessPoolExecutor`` worker pool with ordered-by-cost
  scheduling, a stall watchdog, graceful cancellation, and per-worker
  observability merged back into the parent;
* :mod:`repro.runner.cache` — :class:`StageCache`: stage results
  keyed by a SHA-256 fingerprint of page bytes + stage config, with
  checksummed, atomically-written entries;
* :mod:`repro.runner.manifest` — :class:`RunManifest`: a JSONL
  ledger of per-task outcomes that makes interrupted runs resumable;
* :mod:`repro.runner.tasks` / :mod:`repro.runner.worker` — the task
  shapes and the function executed inside each worker.

See ``docs/runner.md`` for the cache-key scheme, manifest format and
resume semantics.

Usage::

    from repro.runner import BatchRunner, RunnerConfig, tasks_from_directory

    tasks = tasks_from_directory("./corpus", method="csp")
    runner = BatchRunner(RunnerConfig(workers=4, cache_dir=".repro-cache"))
    batch = runner.run(tasks)
    print(batch.by_status(), batch.digest())
"""

from repro.runner.cache import CacheStats, StageCache, fingerprint
from repro.runner.engine import BatchResult, BatchRunner, RunnerConfig
from repro.runner.manifest import RunManifest, TaskRecord
from repro.runner.tasks import (
    PageOutcome,
    SiteTask,
    TaskResult,
    tasks_for_sites,
    tasks_from_directory,
)
from repro.runner.worker import execute_task

__all__ = [
    "BatchResult",
    "BatchRunner",
    "CacheStats",
    "PageOutcome",
    "RunManifest",
    "RunnerConfig",
    "SiteTask",
    "StageCache",
    "TaskRecord",
    "TaskResult",
    "execute_task",
    "fingerprint",
    "tasks_for_sites",
    "tasks_from_directory",
]

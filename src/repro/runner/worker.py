"""The function a batch worker executes, and its task-kind handlers.

:func:`execute_task` is the single entry point the engine submits to
the process pool (it must stay a module-level function: the ``spawn``
start method imports this module in the child and pickles only the
:class:`~repro.runner.tasks.SiteTask` and a few plain arguments).  It
builds a fresh per-worker :class:`~repro.obs.Observability` bundle and
an optional :class:`~repro.runner.cache.StageCache`, dispatches on the
task kind, and reduces the pipeline's output to a picklable
:class:`~repro.runner.tasks.TaskResult` — including the worker
registry's snapshot, which the engine merges into the parent's
metrics so a parallel run profiles exactly like a serial one.

Workers execute stages through the shared stage graph
(:data:`repro.core.pipeline.PIPELINE_GRAPH`): page tokenization is the
graph's declared ``tokenize`` stage (warmed here via
:func:`~repro.core.pipeline.warm_tokens` because it is keyed on page
bytes alone), and everything downstream runs inside the
:class:`~repro.core.pipeline.SegmentationPipeline` assembly of the
same graph — no cache-key tuples or span emission live in this module.

Failures never escape: any exception becomes a ``failed`` result
carrying the traceback, so one broken site cannot take down the
batch (the process-pool analogue of the resilient pipeline's
quarantine semantics).
"""

from __future__ import annotations

import time
import traceback
from pathlib import Path
from typing import Any

from repro.core.config import PipelineConfig
from repro.core.pipeline import SegmentationPipeline, SiteRun, warm_tokens
from repro.obs import Observability
from repro.runner.cache import StageCache
from repro.runner.tasks import PageOutcome, SiteTask, TaskResult

__all__ = ["execute_task"]

#: Segmentation meta keys that mark a page as degraded enough to
#: quarantine the site (exit non-zero, retry on resume-less re-runs).
_QUARANTINE_META = ("segmenter_error", "empty_problem")


def _outcomes(run: SiteRun) -> tuple[list[PageOutcome], str]:
    """Reduce a :class:`SiteRun` to plain data + a site status."""
    pages: list[PageOutcome] = []
    quarantined = False
    for page_run in run.pages:
        segmentation = page_run.segmentation
        meta = segmentation.meta
        if any(key in meta for key in _QUARANTINE_META):
            quarantined = True
        pages.append(
            PageOutcome(
                url=page_run.page.url,
                records=[str(record) for record in segmentation.records],
                unassigned=[
                    observation.extract.text
                    for observation in segmentation.unassigned
                ],
                elapsed=page_run.elapsed,
                notes={
                    "template_ok": meta.get("template_ok"),
                    "whole_page": meta.get("whole_page"),
                    **{
                        key: meta[key]
                        for key in _QUARANTINE_META
                        if key in meta
                    },
                },
            )
        )
    if not run.pages:
        quarantined = True
    return pages, ("quarantined" if quarantined else "ok")


def _attach_wire(
    pages: list[PageOutcome],
    run: SiteRun,
    details_by_url: dict[str, list[Any]],
) -> None:
    """Attach store-ready wire entries to the page outcomes.

    One serialization (``repro.serve.schema.segmentation_records``)
    and one naming pass (``repro.store.ingest.page_entry``) shared
    with the serve path, so batch ingest and online ingest write
    byte-identical store content for the same pages.
    """
    from repro.serve.schema import segmentation_records
    from repro.store.ingest import page_entry

    for outcome, page_run in zip(pages, run.pages):
        outcome.wire = page_entry(
            outcome.url,
            segmentation_records(page_run.segmentation),
            details_by_url.get(outcome.url),
        )


def _run_sample_dir(
    task: SiteTask,
    pipeline: SegmentationPipeline,
    cache: StageCache | None,
    collect_wire: bool = False,
) -> tuple[list[PageOutcome], str, Any]:
    from repro.webdoc.store import load_sample

    sample = load_sample(Path(task.spec))
    warm_tokens(sample.list_pages, cache)
    for details in sample.detail_pages_per_list:
        warm_tokens(details, cache)
    run = pipeline.segment_site(
        sample.list_pages, sample.detail_pages_per_list
    )
    pages, status = _outcomes(run)
    if collect_wire:
        _attach_wire(
            pages,
            run,
            {
                list_page.url: details
                for list_page, details in zip(
                    sample.list_pages, sample.detail_pages_per_list
                )
            },
        )
    return pages, status, None


def _run_generated(
    task: SiteTask,
    pipeline: SegmentationPipeline,
    cache: StageCache | None,
    collect_wire: bool = False,
) -> tuple[list[PageOutcome], str, Any]:
    from repro.sitegen.corpus import build_site

    site = build_site(task.spec)
    warm_tokens(site.list_pages, cache)
    details = [site.detail_pages(i) for i in range(len(site.list_pages))]
    for page_set in details:
        warm_tokens(page_set, cache)
    run = pipeline.segment_site(site.list_pages, details)
    pages, status = _outcomes(run)
    if collect_wire:
        _attach_wire(
            pages,
            run,
            {
                list_page.url: page_set
                for list_page, page_set in zip(site.list_pages, details)
            },
        )
    return pages, status, None


def _run_eval_generated(
    task: SiteTask,
    pipeline: SegmentationPipeline,
    cache: StageCache | None,
    collect_wire: bool = False,
) -> tuple[list[PageOutcome], str, Any]:
    from repro.core.evaluation import score_page
    from repro.reporting.aggregate import PageResult, notes_from_meta
    from repro.sitegen.corpus import build_site

    site = build_site(task.spec)
    warm_tokens(site.list_pages, cache)
    details = [site.detail_pages(i) for i in range(len(site.list_pages))]
    for page_set in details:
        warm_tokens(page_set, cache)
    run = pipeline.segment_site(site.list_pages, details)
    rows = [
        PageResult(
            site=site.spec.name,
            page_index=truth.page_index,
            method=task.method,
            score=score_page(page_run.segmentation, truth),
            notes=notes_from_meta(page_run.segmentation.meta),
            elapsed=page_run.elapsed,
            meta=dict(page_run.segmentation.meta),
        )
        for page_run, truth in zip(run.pages, site.truth)
    ]
    pages, status = _outcomes(run)
    if collect_wire:
        _attach_wire(
            pages,
            run,
            {
                list_page.url: page_set
                for list_page, page_set in zip(site.list_pages, details)
            },
        )
    return pages, status, rows


def execute_task(
    task: SiteTask,
    cache_dir: str | None = None,
    collect_trace: bool = False,
    config: PipelineConfig | None = None,
    collect_wire: bool = False,
) -> TaskResult:
    """Run one task to a :class:`TaskResult`; never raises."""
    obs = Observability(keep_spans=collect_trace)
    cache = StageCache(cache_dir, obs=obs) if cache_dir else None
    started = time.perf_counter()
    try:
        with obs.span(
            "runner.task", task=task.task_id, kind=task.kind
        ) as span:
            if task.kind == "_sleep":  # stall-watchdog test hook
                time.sleep(float(task.spec))
                pages, status, payload = [], "ok", None
            elif task.kind == "_kill":  # pool-crash test hook
                import os
                import signal

                os.kill(os.getpid(), signal.SIGKILL)
                raise AssertionError("unreachable")
            else:
                handler = {
                    "sample_dir": _run_sample_dir,
                    "generated": _run_generated,
                    "eval_generated": _run_eval_generated,
                }.get(task.kind)
                if handler is None:
                    raise ValueError(f"unknown task kind {task.kind!r}")
                pipeline = SegmentationPipeline(
                    task.method, config, obs=obs, cache=cache
                )
                pages, status, payload = handler(
                    task, pipeline, cache, collect_wire
                )
            span.attributes["status"] = status
            span.attributes["pages"] = len(pages)
        return TaskResult(
            task_id=task.task_id,
            status=status,
            duration_s=time.perf_counter() - started,
            pages=pages,
            cache_hits=cache.stats.hits if cache else 0,
            cache_misses=cache.stats.misses if cache else 0,
            metrics=obs.metrics.as_dict(),
            trace=obs.tracer.to_dict() if collect_trace else None,
            payload=payload,
        )
    except Exception:
        return TaskResult(
            task_id=task.task_id,
            status="failed",
            duration_s=time.perf_counter() - started,
            cache_hits=cache.stats.hits if cache else 0,
            cache_misses=cache.stats.misses if cache else 0,
            metrics=obs.metrics.as_dict(),
            error=traceback.format_exc(),
        )

"""Content-addressed on-disk cache for pipeline stage results.

Every cacheable stage of the pipeline — tokenized pages, template
verdicts, extract lists, observation tables, segmentations — is a
pure function of (a) the page bytes it reads and (b) the stage's
configuration.  :class:`StageCache` therefore keys each stored value
by a SHA-256 fingerprint of exactly those inputs: re-running a corpus,
or sweeping a downstream parameter, hits the cache for every stage
whose inputs did not change instead of recomputing it.

Fingerprinting (:func:`fingerprint`) canonicalizes Python values
before hashing so keys are stable across processes and interpreter
restarts: dicts hash by sorted key, sets and frozensets by sorted
element digest (never by iteration order, which ``PYTHONHASHSEED``
randomizes), dataclasses by qualified class name plus per-field
values, and every value carries a type tag so ``1`` / ``1.0`` /
``"1"`` produce distinct digests.

Storage layout and integrity::

    <root>/<stage>/<key[:2]>/<key>.bin
    entry = sha256(payload) || payload        (payload = pickle)

Entries are written atomically (temp file + ``os.replace``) so a
killed run never leaves a torn entry, and verified on read: a
checksum mismatch or unpickle failure is counted as *corrupt*, the
entry is discarded, and the value is recomputed and rewritten — a
damaged cache degrades to a cold one, it is never trusted.

A cache may also be *size-bounded* (``max_bytes``): every verified hit
bumps its entry's mtime, and every store prunes least-recently-used
entries until the cache fits the budget again — the discipline a
long-lived server needs, where an unbounded on-disk cache is a slow
leak.  Evictions are booked into ``CacheStats.evictions`` and the
``runner.cache.evictions`` counter.  Without ``max_bytes`` (the batch
default) nothing is ever pruned.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.obs import NULL_OBS, Observability

__all__ = ["CacheStats", "MemoryStageCache", "StageCache", "fingerprint"]

_CHECKSUM_BYTES = 32


def _update(digest: "hashlib._Hash", obj: Any) -> None:
    """Feed one value into ``digest`` in canonical form."""
    if obj is None:
        digest.update(b"N;")
    elif isinstance(obj, bool):  # before int: bool is an int subclass
        digest.update(b"b1;" if obj else b"b0;")
    elif isinstance(obj, int):
        digest.update(b"i" + repr(obj).encode() + b";")
    elif isinstance(obj, float):
        digest.update(b"f" + repr(obj).encode() + b";")
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        digest.update(b"s" + str(len(data)).encode() + b":")
        digest.update(data)
    elif isinstance(obj, bytes):
        digest.update(b"y" + str(len(obj)).encode() + b":")
        digest.update(obj)
    elif isinstance(obj, (list, tuple)):
        digest.update(b"l(")
        for item in obj:
            _update(digest, item)
        digest.update(b")")
    elif isinstance(obj, (set, frozenset)):
        # Iteration order is hash-randomized; sort element digests.
        digest.update(b"e(")
        for item_digest in sorted(fingerprint(item) for item in obj):
            digest.update(item_digest.encode())
        digest.update(b")")
    elif isinstance(obj, dict):
        digest.update(b"d(")
        for key in sorted(obj, key=lambda k: fingerprint(k)):
            _update(digest, key)
            _update(digest, obj[key])
        digest.update(b")")
    elif is_dataclass(obj) and not isinstance(obj, type):
        digest.update(b"D" + type(obj).__qualname__.encode() + b"(")
        for field in fields(obj):
            _update(digest, field.name)
            _update(digest, getattr(obj, field.name))
        digest.update(b")")
    else:
        digest.update(b"r" + repr(obj).encode() + b";")


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of ``parts`` in canonical form.

    Stable across processes and runs for the value kinds the pipeline
    configures itself with (primitives, containers, dataclasses); see
    the module docstring for the canonicalization rules.
    """
    digest = hashlib.sha256()
    for part in parts:
        _update(digest, part)
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`StageCache` instance."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    evictions: int = 0
    store_errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
            "store_errors": self.store_errors,
        }


class StageCache:
    """The content-addressed stage cache (see module docstring).

    Args:
        root: cache directory; created on first write.
        obs: observability bundle for the ``runner.cache.*`` counters
            (defaults to the no-op bundle).
        max_bytes: total on-disk size budget; each store prunes
            least-recently-used entries back under it (None =
            unbounded, the batch-run default).

    Instances are cheap — one per worker task is the normal pattern —
    and concurrent use of one ``root`` by many processes is safe:
    reads verify checksums, writes are atomic renames, and two workers
    racing to fill the same key simply both write the same bytes.
    Pruning tolerates concurrent deletion (a missing file just means
    someone else evicted it first).
    """

    def __init__(
        self,
        root: str | Path,
        obs: Observability | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1 (or None), got {max_bytes}")
        self.root = Path(root)
        self.obs = obs if obs is not None else NULL_OBS
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    def key(self, stage: str, parts: Iterable[Any]) -> str:
        """The cache key for ``stage`` over the given input parts."""
        return fingerprint(stage, list(parts))

    def _path(self, stage: str, key: str) -> Path:
        return self.root / stage / key[:2] / f"{key}.bin"

    def load(self, stage: str, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a verified hit, else ``(False, None)``."""
        path = self._path(stage, key)
        try:
            blob = path.read_bytes()
        except OSError:
            return False, None
        checksum, payload = blob[:_CHECKSUM_BYTES], blob[_CHECKSUM_BYTES:]
        if hashlib.sha256(payload).digest() != checksum:
            self.stats.corrupt += 1
            self.obs.counter("runner.cache.corrupt").inc()
            return False, None
        try:
            value = pickle.loads(payload)
        except Exception:
            self.stats.corrupt += 1
            self.obs.counter("runner.cache.corrupt").inc()
            return False, None
        if self.max_bytes is not None:
            # Bump recency so LRU pruning spares the working set.
            try:
                os.utime(path)
            except OSError:
                pass
        return True, value

    def store(self, stage: str, key: str, value: Any) -> None:
        """Write ``value`` under ``key`` atomically (torn-write safe)."""
        path = self._path(stage, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = hashlib.sha256(payload).digest() + payload
        handle = tempfile.NamedTemporaryFile(
            dir=path.parent, prefix=".tmp-", delete=False
        )
        try:
            with handle:
                handle.write(blob)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._prune(keep=path)

    def delete(self, stage: str, key: str) -> bool:
        """Drop one entry; True when a file was actually removed.

        The invalidation hook: a consumer that knows an entry is stale
        (e.g. the wrapper registry after its site's template changed)
        removes it so no later process warms up from poisoned history.
        Missing entries are not an error — concurrent deleters race
        benignly, exactly like :meth:`_prune`.
        """
        try:
            os.unlink(self._path(stage, key))
        except OSError:
            return False
        self.obs.counter("runner.cache.deletes").inc()
        return True

    def _entries(self) -> list[tuple[float, int, Path]]:
        """Every cache entry as ``(mtime, size, path)``, oldest first."""
        entries: list[tuple[float, int, Path]] = []
        for path in self.root.glob("*/*/*.bin"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda entry: (entry[0], entry[2]))
        return entries

    def total_bytes(self) -> int:
        """Current on-disk size of all cache entries."""
        return sum(size for _, size, _ in self._entries())

    def _prune(self, keep: Path | None = None) -> None:
        """Evict least-recently-used entries until under ``max_bytes``.

        The just-written entry (``keep``) is evicted only as a last
        resort — when it alone exceeds the whole budget.
        """
        assert self.max_bytes is not None
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        evictions = 0
        for pass_keeps_new in (True, False):
            for _, size, path in entries:
                if total <= self.max_bytes:
                    break
                if pass_keeps_new and keep is not None and path == keep:
                    continue
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                evictions += 1
            if total <= self.max_bytes:
                break
        if evictions:
            self.stats.evictions += evictions
            self.obs.counter("runner.cache.evictions").inc(evictions)

    def get_or_compute(
        self, stage: str, parts: Iterable[Any], compute: Callable[[], Any]
    ) -> Any:
        """The cached value for ``stage`` + ``parts``, computing on miss."""
        key = self.key(stage, parts)
        found, value = self.load(stage, key)
        if found:
            self.stats.hits += 1
            self.obs.counter("runner.cache.hits").inc()
            return value
        self.stats.misses += 1
        self.obs.counter("runner.cache.misses").inc()
        value = compute()
        try:
            self.store(stage, key, value)
        except OSError:
            # A full or failing disk costs the *cache entry*, never
            # the computed result: degrade to uncached and move on.
            self.stats.store_errors += 1
            self.obs.counter("runner.cache.store_errors").inc()
        return value


class MemoryStageCache:
    """An in-process stage cache with :class:`StageCache` semantics.

    Used where the win is sharing *within* one run rather than across
    runs — e.g. a method sweep over a caller-supplied corpus, where
    ``tokenize``/``template``/``extracts``/``observations`` results
    are identical across methods but the corpus object cannot be
    named on disk.  Keys use the same :func:`fingerprint`
    canonicalization as the on-disk cache, and values round-trip
    through pickle on both store and load so a cached result is
    isolated from its producer exactly like a disk hit would be
    (mutating a returned value never poisons the cache).
    """

    def __init__(self) -> None:
        self._entries: dict[str, bytes] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, stage: str, parts: Iterable[Any]) -> str:
        """The cache key for ``stage`` over the given input parts."""
        return fingerprint(stage, list(parts))

    def get_or_compute(
        self, stage: str, parts: Iterable[Any], compute: Callable[[], Any]
    ) -> Any:
        """The cached value for ``stage`` + ``parts``, computing on miss."""
        key = self.key(stage, parts)
        payload = self._entries.get(key)
        if payload is not None:
            self.stats.hits += 1
            return pickle.loads(payload)
        self.stats.misses += 1
        value = compute()
        self._entries[key] = pickle.dumps(
            value, protocol=pickle.HIGHEST_PROTOCOL
        )
        return pickle.loads(self._entries[key])

"""IEPAD-style repeated tag-pattern mining (Chang & Lui, WWW 2001).

The paper's related work (Section 2.1) describes IEPAD: "an algorithm
based on PAT trees for detecting repeated HTML tag sequences that
represented rows of Web tables", noting that "search engine pages are
much simpler than HTML pages containing tables typically found on the
Web" and that a similar approach "had limited utility when applied to
most Web pages".

This implementation mines the page's tag-only stream for the
best-scoring repeated tag n-gram (score = length x occurrences,
ignoring overlaps), takes its occurrences as row starts, and assigns
extracts to rows — a faithful, compact stand-in for the PAT-tree
machinery (a suffix structure is only an efficiency device; the
discovered patterns are the same).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.results import Segmentation
from repro.extraction.observations import ObservationTable
from repro.tokens.tokenizer import Token
from repro.webdoc.page import Page

__all__ = ["PatternSegmenter", "best_repeated_pattern"]


@dataclass(frozen=True)
class _Pattern:
    tags: tuple[str, ...]
    occurrences: tuple[int, ...]  #: token indices of each occurrence start

    @property
    def score(self) -> int:
        return len(self.tags) * len(self.occurrences)


def best_repeated_pattern(
    tokens: list[Token],
    min_count: int = 3,
    max_length: int = 12,
) -> _Pattern | None:
    """The highest-scoring repeated tag n-gram of the page.

    Only tag tokens are considered (IEPAD's encoding).  Occurrences
    are made non-overlapping greedily, left to right.  Ties prefer the
    longer pattern.
    """
    tag_tokens = [token for token in tokens if token.is_html]
    if len(tag_tokens) < min_count:
        return None
    texts = [token.text for token in tag_tokens]

    best: _Pattern | None = None
    for length in range(2, max_length + 1):
        grams: dict[tuple[str, ...], list[int]] = defaultdict(list)
        for start in range(len(texts) - length + 1):
            gram = tuple(texts[start : start + length])
            grams[gram].append(start)
        for gram, starts in grams.items():
            # De-overlap greedily.
            kept: list[int] = []
            cursor = -1
            for start in starts:
                if start >= cursor:
                    kept.append(start)
                    cursor = start + length
            if len(kept) < min_count:
                continue
            pattern = _Pattern(
                tags=gram,
                occurrences=tuple(tag_tokens[start].index for start in kept),
            )
            if (
                best is None
                or pattern.score > best.score
                or (pattern.score == best.score and len(gram) > len(best.tags))
            ):
                best = pattern
    return best


class PatternSegmenter:
    """Rows = occurrences of the best repeated tag pattern."""

    method_name = "pat-tree"

    def __init__(self, min_count: int = 3, max_length: int = 12) -> None:
        self.min_count = min_count
        self.max_length = max_length

    def segment(self, table: ObservationTable, page: Page) -> Segmentation:
        """Assign each used extract to the pattern occurrence block
        containing it."""
        tokens = page.tokens()
        pattern = best_repeated_pattern(
            tokens, min_count=self.min_count, max_length=self.max_length
        )
        assignment: dict[int, int | None] = {
            observation.seq: None for observation in table.observations
        }
        if pattern is not None:
            boundaries = list(pattern.occurrences)
            last = tokens[-1].index + 1 if tokens else 0
            ranges = [
                (start, boundaries[i + 1] if i + 1 < len(boundaries) else last)
                for i, start in enumerate(boundaries)
            ]
            for observation in table.observations:
                start = observation.extract.start_token_index
                for row_index, (low, high) in enumerate(ranges):
                    if low <= start < high:
                        assignment[observation.seq] = row_index
                        break
        return Segmentation.from_assignment(
            method=self.method_name,
            table=table,
            assignment=assignment,
            meta={
                "pattern": list(pattern.tags) if pattern else None,
                "occurrences": len(pattern.occurrences) if pattern else 0,
            },
        )

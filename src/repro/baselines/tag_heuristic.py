"""The naive HTML-tag row-splitting baseline.

The paper's introduction dismisses this family: "A naive approach
based on using HTML tags will not work.  Only a fraction of HTML
tables are actually created with <table> tags, and these tags are also
used to format multi-column text, images, and other non-table
applications."  It is implemented here as the weakest comparator:
split the page at the most promising row tag and call each fragment a
record.

The baseline shares the pipeline's extraction and scoring machinery —
it differs only in *segmentation*, which is the quantity the paper's
Table 4 compares.
"""

from __future__ import annotations

from collections import Counter

from repro.core.results import Segmentation
from repro.extraction.observations import ObservationTable
from repro.tokens.tokenizer import Token
from repro.webdoc.page import Page

__all__ = ["TagHeuristicSegmenter", "split_rows_at_tag", "choose_row_tag"]

#: Tags considered as row separators, in priority order.
_ROW_TAG_PRIORITY = ("<tr>", "<div>", "<p>", "<li>", "<br>")


def choose_row_tag(tokens: list[Token], minimum: int = 2) -> str | None:
    """Pick the row-separator tag: the highest-priority candidate
    occurring at least ``minimum`` times."""
    counts = Counter(token.text for token in tokens if token.is_html)
    for tag in _ROW_TAG_PRIORITY:
        if counts.get(tag, 0) >= minimum:
            return tag
    return None


def split_rows_at_tag(
    tokens: list[Token], tag: str
) -> list[tuple[int, int]]:
    """Token-index ranges of the fragments between occurrences of ``tag``.

    The fragment before the first occurrence is dropped (page header);
    the one after the last occurrence runs to the end of the stream.
    """
    starts = [token.index for token in tokens if token.text == tag]
    if not starts:
        return []
    ranges: list[tuple[int, int]] = []
    for position, start in enumerate(starts):
        end = starts[position + 1] if position + 1 < len(starts) else tokens[-1].index + 1
        ranges.append((start, end))
    return ranges


class TagHeuristicSegmenter:
    """Rows = fragments between the dominant row tag."""

    method_name = "tag-heuristic"

    def segment(self, table: ObservationTable, page: Page) -> Segmentation:
        """Assign each used extract to the row fragment containing it."""
        tokens = page.tokens()
        tag = choose_row_tag(tokens)
        assignment: dict[int, int | None] = {
            observation.seq: None for observation in table.observations
        }
        if tag is not None:
            ranges = split_rows_at_tag(tokens, tag)
            for observation in table.observations:
                start = observation.extract.start_token_index
                for row_index, (low, high) in enumerate(ranges):
                    if low <= start < high:
                        assignment[observation.seq] = row_index
                        break
        return Segmentation.from_assignment(
            method=self.method_name,
            table=table,
            assignment=assignment,
            meta={"row_tag": tag},
        )

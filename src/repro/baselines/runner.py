"""Running baselines over corpus sites with the shared scoring."""

from __future__ import annotations

from time import perf_counter
from typing import Protocol

from repro.core.config import PipelineConfig
from repro.core.evaluation import score_page
from repro.core.results import Segmentation
from repro.extraction.extracts import extract_strings
from repro.extraction.observations import ObservationTable
from repro.reporting.aggregate import PageResult
from repro.sitegen.site import GeneratedSite
from repro.webdoc.page import Page

__all__ = ["BaselineSegmenter", "run_baseline_on_site"]


class BaselineSegmenter(Protocol):
    """What a baseline must provide."""

    method_name: str

    def segment(
        self, table: ObservationTable, page: Page
    ) -> Segmentation:  # pragma: no cover - protocol
        ...


def run_baseline_on_site(
    site: GeneratedSite,
    baseline: BaselineSegmenter,
    config: PipelineConfig | None = None,
) -> list[PageResult]:
    """Evaluate a baseline over one site.

    Baselines see the *whole page* (they bring their own structure
    discovery instead of the paper's template finder) but share the
    pipeline's extraction, observation filtering and scoring, so their
    rows are directly comparable to Table 4's.
    """
    config = config or PipelineConfig()
    rows: list[PageResult] = []
    for page_index, page in enumerate(site.list_pages):
        started = perf_counter()
        extracts = extract_strings(list(page.tokens()), config.allowed_punct)
        others = [
            other
            for position, other in enumerate(site.list_pages)
            if position != page_index
        ]
        table = ObservationTable.build(
            extracts,
            site.detail_pages(page_index),
            other_list_pages=others,
            options=config.match,
        )
        segmentation = baseline.segment(table, page)
        score = score_page(segmentation, site.truth[page_index])
        rows.append(
            PageResult(
                site=site.spec.name,
                page_index=page_index,
                method=baseline.method_name,
                score=score,
                elapsed=perf_counter() - started,
                meta=dict(segmentation.meta),
            )
        )
    return rows

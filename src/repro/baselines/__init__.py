"""Baseline comparators from the paper's related work (Section 2)."""

from repro.baselines.grammar import (
    GrammarSegmenter,
    induce_row_template,
    row_matches_template,
)
from repro.baselines.pat_tree import PatternSegmenter, best_repeated_pattern
from repro.baselines.runner import BaselineSegmenter, run_baseline_on_site
from repro.baselines.tag_heuristic import (
    TagHeuristicSegmenter,
    choose_row_tag,
    split_rows_at_tag,
)

__all__ = [
    "BaselineSegmenter",
    "GrammarSegmenter",
    "PatternSegmenter",
    "TagHeuristicSegmenter",
    "best_repeated_pattern",
    "choose_row_tag",
    "induce_row_template",
    "row_matches_template",
    "run_baseline_on_site",
    "split_rows_at_tag",
]

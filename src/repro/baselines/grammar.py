"""RoadRunner-style union-free row-grammar baseline.

The paper devotes substantial discussion (Sections 2.1, 6.3) to
RoadRunner (Crescenzi, Mecca & Merialdo, VLDB 2001): it infers a
union-free grammar from example pages and extracts whatever varies.
Its documented weakness is exactly what this baseline exhibits —
"union-free grammars do not allow for disjunctions, and disjunctions
appear frequently in the grammar of Web pages", e.g. alternative
formatting when a field is missing.

Implementation: candidate rows are discovered with the repeated
tag-pattern miner; a *union-free row template* is then induced by
iterated longest-common-subsequence over the rows' token streams (the
grammar's invariant part).  A row that cannot be aligned against the
template — the disjunction case — is rejected, and its extracts go
unassigned, reproducing RoadRunner's brittleness on optional fields.
"""

from __future__ import annotations

from difflib import SequenceMatcher

from repro.baselines.pat_tree import best_repeated_pattern
from repro.core.results import Segmentation
from repro.extraction.observations import ObservationTable
from repro.tokens.tokenizer import Token
from repro.webdoc.page import Page

__all__ = ["GrammarSegmenter", "induce_row_template", "row_matches_template"]


def _lcs(first: list[str], second: list[str]) -> list[str]:
    matcher = SequenceMatcher(a=first, b=second, autojunk=False)
    common: list[str] = []
    for block in matcher.get_matching_blocks():
        common.extend(first[block.a : block.a + block.size])
    return common


def induce_row_template(
    rows: list[list[Token]], sample_size: int = 2
) -> list[str]:
    """The union-free row grammar, induced RoadRunner-style.

    RoadRunner generalizes from a *small sample* of instances: the
    template is the LCS of the first ``sample_size`` rows.  Optional
    fields present in the sample stay in the grammar (a union-free
    grammar cannot mark them optional), so rows lacking them later
    fail to parse — exactly the disjunction weakness the paper
    documents.  Pass ``sample_size=len(rows)`` for the fully
    generalized (more forgiving) variant.
    """
    if not rows:
        return []
    sample = rows[: max(1, sample_size)]
    template = [token.text for token in sample[0]]
    for row in sample[1:]:
        template = _lcs(template, [token.text for token in row])
        if not template:
            break
    return template


def row_matches_template(
    row: list[Token], template: list[str], min_coverage: float = 0.9
) -> bool:
    """Does the template embed into the row (in order) almost fully?

    A union-free grammar has no alternatives: a row lacking part of
    the invariant cannot be parsed.  ``min_coverage`` tolerates only a
    sliver of noise.
    """
    if not template:
        return False
    texts = [token.text for token in row]
    cursor = 0
    matched = 0
    for template_text in template:
        try:
            found = texts.index(template_text, cursor)
        except ValueError:
            continue
        matched += 1
        cursor = found + 1
    return matched / len(template) >= min_coverage


class GrammarSegmenter:
    """Rows parsed by an induced union-free row template."""

    method_name = "grammar"

    def __init__(
        self, min_coverage: float = 0.9, sample_size: int = 2
    ) -> None:
        self.min_coverage = min_coverage
        self.sample_size = sample_size

    def segment(self, table: ObservationTable, page: Page) -> Segmentation:
        """Assign extracts of template-parsable rows; reject the rest."""
        tokens = page.tokens()
        assignment: dict[int, int | None] = {
            observation.seq: None for observation in table.observations
        }
        pattern = best_repeated_pattern(tokens)
        meta: dict[str, object] = {"template": None, "rejected_rows": 0}
        if pattern is not None:
            boundaries = list(pattern.occurrences)
            last = tokens[-1].index + 1 if tokens else 0
            ranges = [
                (start, boundaries[i + 1] if i + 1 < len(boundaries) else last)
                for i, start in enumerate(boundaries)
            ]
            index_of = {token.index: token for token in tokens}
            rows = [
                [index_of[i] for i in range(low, high) if i in index_of]
                for low, high in ranges
            ]
            template = induce_row_template(rows, self.sample_size)
            meta["template"] = template
            accepted: list[tuple[int, tuple[int, int]]] = []
            for row_index, (row, row_range) in enumerate(zip(rows, ranges)):
                if row_matches_template(row, template, self.min_coverage):
                    accepted.append((row_index, row_range))
                else:
                    meta["rejected_rows"] = int(meta["rejected_rows"]) + 1
            for observation in table.observations:
                start = observation.extract.start_token_index
                for row_index, (low, high) in accepted:
                    if low <= start < high:
                        assignment[observation.seq] = row_index
                        break
        return Segmentation.from_assignment(
            method=self.method_name,
            table=table,
            assignment=assignment,
            meta=meta,
        )

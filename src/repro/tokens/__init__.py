"""Tokenization substrate: the paper's 8 syntactic types and tokenizer."""

from repro.tokens.tokenizer import (
    DEFAULT_ALLOWED_PUNCT,
    Token,
    is_separator,
    tokenize_html,
    tokenize_text,
)
from repro.tokens.types import (
    NUM_TOKEN_TYPES,
    TOKEN_TYPE_ORDER,
    TokenType,
    classify_text,
    type_vector,
)

__all__ = [
    "DEFAULT_ALLOWED_PUNCT",
    "NUM_TOKEN_TYPES",
    "TOKEN_TYPE_ORDER",
    "Token",
    "TokenType",
    "classify_text",
    "is_separator",
    "tokenize_html",
    "tokenize_text",
    "type_vector",
]

"""The paper's eight syntactic token types (Section 3.1).

    "Each token is assigned one or more syntactic types, based on the
    characters appearing in it.  The three basic syntactic types we
    consider are: HTML, punctuation, and alphanumeric.  In addition,
    the alphanumeric type can be either numeric or alphabetic, and the
    alphabetic can be capitalized, lowercased or allcaps.  This gives
    us a total of eight (non-mutually exclusive) possible token types."

The types form a small specialization hierarchy::

    HTML    PUNCT    ALNUM
                      ├── NUMERIC
                      └── ALPHA
                           ├── CAPITALIZED
                           ├── LOWERCASE
                           └── ALLCAPS

They are modelled as bit flags so a token carries its full type *set*
(e.g. ``ALNUM | ALPHA | CAPITALIZED``), exactly as the probabilistic
model's emission variables require (``T_i`` is an 8-vector).
"""

from __future__ import annotations

import enum

__all__ = [
    "TokenType",
    "NUM_TOKEN_TYPES",
    "TOKEN_TYPE_ORDER",
    "classify_text",
    "type_vector",
]


class TokenType(enum.Flag):
    """Bit-flag set of the eight syntactic types."""

    NONE = 0
    HTML = enum.auto()
    PUNCT = enum.auto()
    ALNUM = enum.auto()
    NUMERIC = enum.auto()
    ALPHA = enum.auto()
    CAPITALIZED = enum.auto()
    LOWERCASE = enum.auto()
    ALLCAPS = enum.auto()


#: Canonical ordering of the eight types; index ``i`` of the emission
#: vector ``T`` corresponds to ``TOKEN_TYPE_ORDER[i]``.
TOKEN_TYPE_ORDER: tuple[TokenType, ...] = (
    TokenType.HTML,
    TokenType.PUNCT,
    TokenType.ALNUM,
    TokenType.NUMERIC,
    TokenType.ALPHA,
    TokenType.CAPITALIZED,
    TokenType.LOWERCASE,
    TokenType.ALLCAPS,
)

NUM_TOKEN_TYPES = len(TOKEN_TYPE_ORDER)


def classify_text(text: str) -> TokenType:
    """Assign the syntactic type set of one *text* token.

    HTML-tag tokens are classified by the tokenizer directly (it knows
    it produced a tag); this function handles visible text tokens only.

    Rules, following the paper's hierarchy:

    * a token made entirely of non-alphanumeric characters is PUNCT;
    * any token containing a letter or digit is ALNUM;
    * an ALNUM token with digits and no letters is also NUMERIC;
    * an ALNUM token with letters is also ALPHA, and exactly one of
      CAPITALIZED / LOWERCASE / ALLCAPS when its letters match that
      casing pattern (a mixed-case token like ``McDonald`` is ALPHA
      only... except that its first letter being uppercase makes it
      CAPITALIZED; see below).

    Casing sub-types:

    * ALLCAPS: every letter is uppercase and there are >= 2 letters
      (a single capital letter counts as CAPITALIZED, not ALLCAPS);
    * CAPITALIZED: first letter uppercase, not ALLCAPS;
    * LOWERCASE: every letter is lowercase.

    >>> classify_text("Smith") == TokenType.ALNUM | TokenType.ALPHA | TokenType.CAPITALIZED
    True
    >>> classify_text("740") == TokenType.ALNUM | TokenType.NUMERIC
    True
    >>> classify_text("(") == TokenType.PUNCT
    True
    """
    if not text:
        return TokenType.NONE

    letters = [char for char in text if char.isalpha()]
    has_digit = any(char.isdigit() for char in text)

    if not letters and not has_digit:
        return TokenType.PUNCT

    types = TokenType.ALNUM
    if has_digit and not letters:
        types |= TokenType.NUMERIC
    if letters:
        types |= TokenType.ALPHA
        if all(char.isupper() for char in letters):
            if len(letters) >= 2:
                types |= TokenType.ALLCAPS
            else:
                types |= TokenType.CAPITALIZED
        elif all(char.islower() for char in letters):
            types |= TokenType.LOWERCASE
        elif letters[0].isupper():
            types |= TokenType.CAPITALIZED
    return types


def type_vector(types: TokenType) -> tuple[int, ...]:
    """The 8-element 0/1 vector ``T_i`` for a type set.

    >>> type_vector(TokenType.ALNUM | TokenType.NUMERIC)
    (0, 0, 1, 1, 0, 0, 0, 0)
    """
    return tuple(int(bool(types & t)) for t in TOKEN_TYPE_ORDER)

"""Page tokenization (paper Section 3.1).

    "The pages are tokenized — the text is split into individual
    words, or more accurately tokens, and HTML escape sequences are
    converted to ASCII text."

A page's token stream interleaves:

* **tag tokens** — one token per HTML tag, spelled canonically as
  ``<name>`` / ``</name>`` with attributes dropped.  Dropping
  attributes is deliberate: two list pages render the same template
  with different ``href`` values, and the template finder must see
  those tags as *the same* token.
* **word tokens** — entity-decoded visible text split on whitespace,
  with *separator punctuation* split off into their own tokens.

The paper defines separators as "HTML tags and special punctuation
characters (any character that is not in the set ``.,()-``)".  The
allowed set is therefore a tokenizer parameter
(:data:`DEFAULT_ALLOWED_PUNCT`): punctuation in the allowed set stays
attached to its word (``"Smith,"`` and ``"335-5555"`` are single
tokens), while every disallowed punctuation character becomes its own
single-character PUNCT token, which downstream stages treat as a
separator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tokens.types import TokenType, classify_text
from repro.webdoc.entities import decode_entities
from repro.webdoc.html import EventKind, lex_html

__all__ = [
    "DEFAULT_ALLOWED_PUNCT",
    "Token",
    "tokenize_html",
    "tokenize_text",
    "is_separator",
]

#: Punctuation characters allowed *inside* extracts (paper Section 3.2).
DEFAULT_ALLOWED_PUNCT = frozenset(".,()-")


@dataclass(frozen=True, slots=True)
class Token:
    """One token of a page's stream.

    Attributes:
        text: the token's text; tags are spelled ``<name>``/``</name>``.
        types: the token's syntactic type set (paper's 8 types).
        index: position in the page's full token stream.
        ws_before: whether whitespace (or a tag boundary) preceded the
            token in the source; used to reconstruct display text.
        start: character offset of the token in the raw document, or
            -1 for tokens without a source span.
    """

    text: str
    types: TokenType
    index: int
    ws_before: bool = True
    start: int = -1

    @property
    def is_html(self) -> bool:
        """True for tag tokens."""
        return bool(self.types & TokenType.HTML)

    @property
    def is_punct(self) -> bool:
        """True for pure-punctuation tokens."""
        return bool(self.types & TokenType.PUNCT)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def is_separator(
    token: Token, allowed_punct: frozenset[str] = DEFAULT_ALLOWED_PUNCT
) -> bool:
    """Is ``token`` a separator in the paper's sense?

    Separators are HTML tags and punctuation tokens containing any
    character outside the allowed set.
    """
    if token.is_html:
        return True
    if token.is_punct:
        return any(char not in allowed_punct for char in token.text)
    return False


def tokenize_html(
    document: str,
    allowed_punct: frozenset[str] = DEFAULT_ALLOWED_PUNCT,
) -> list[Token]:
    """Tokenize an HTML document into the paper's token stream.

    Comments, declarations and script/style bodies are invisible and
    produce no tokens.

    >>> [t.text for t in tokenize_html("<b>John Smith</b> (740) 335-5555")]
    ['<b>', 'John', 'Smith', '</b>', '(740)', '335-5555']
    """
    tokens: list[Token] = []
    for event in lex_html(document):
        if event.kind is EventKind.TAG_OPEN or event.kind is EventKind.TAG_CLOSE:
            tokens.append(
                Token(
                    text=event.raw_tag(),
                    types=TokenType.HTML,
                    index=len(tokens),
                    ws_before=True,
                    start=event.start,
                )
            )
        elif event.kind is EventKind.TEXT:
            _append_text_tokens(
                tokens, decode_entities(event.data), event.start, allowed_punct
            )
    return tokens


def tokenize_text(
    text: str,
    allowed_punct: frozenset[str] = DEFAULT_ALLOWED_PUNCT,
) -> list[Token]:
    """Tokenize plain (already tag-free) text.

    Used to tokenize ground-truth field values with exactly the same
    rules the pages are tokenized with, so that truth and predictions
    align token-for-token.

    >>> [t.text for t in tokenize_text("Price: $12.95")]
    ['Price', ':', '$', '12.95']
    """
    tokens: list[Token] = []
    _append_text_tokens(tokens, decode_entities(text), -1, allowed_punct)
    return tokens


def _append_text_tokens(
    tokens: list[Token],
    text: str,
    base_offset: int,
    allowed_punct: frozenset[str],
) -> None:
    """Split a text run into word/punct tokens and append them."""
    position = 0
    length = len(text)
    while position < length:
        # Skip whitespace.
        if text[position].isspace():
            position += 1
            continue
        word_start = position
        while position < length and not text[position].isspace():
            position += 1
        _append_word_tokens(
            tokens,
            text[word_start:position],
            base_offset + word_start if base_offset >= 0 else -1,
            allowed_punct,
        )


def _append_word_tokens(
    tokens: list[Token],
    word: str,
    offset: int,
    allowed_punct: frozenset[str],
) -> None:
    """Split one whitespace-delimited word on disallowed punctuation.

    Runs of alphanumerics and allowed punctuation stay together; each
    disallowed punctuation character becomes its own token.  The first
    piece of the word carries ``ws_before=True``; later pieces were
    glued to it in the source, so they carry ``ws_before=False``.
    """
    first = True
    piece_start = 0
    index = 0
    length = len(word)

    def emit(piece: str, piece_offset: int) -> None:
        nonlocal first
        if not piece:
            return
        tokens.append(
            Token(
                text=piece,
                types=classify_text(piece),
                index=len(tokens),
                ws_before=first,
                start=piece_offset,
            )
        )
        first = False

    while index < length:
        char = word[index]
        is_disallowed_punct = (
            not char.isalnum() and not char.isspace() and char not in allowed_punct
        )
        if is_disallowed_punct:
            emit(word[piece_start:index], offset + piece_start if offset >= 0 else -1)
            emit(char, offset + index if offset >= 0 else -1)
            piece_start = index + 1
        index += 1
    emit(word[piece_start:], offset + piece_start if offset >= 0 else -1)

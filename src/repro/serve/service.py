"""The online segmentation service's request logic (transport-free).

:class:`SegmentationService` is everything ``POST /v1/segment`` does,
with no HTTP anywhere in sight — the unit tests and the benchmark
drive it directly, and :mod:`repro.serve.http` merely moves JSON in
and out of it.  One request flows::

    payload ──▶ parse (schema.pages_from_payload)
        │
        ▼
    WrapperRegistry.get(site, method)
        │ hit                                   │ miss
        ▼                                       ▼
    apply_wrapper per list page            full pipeline
        │                                  (SegmentationPipeline)
        ▼                                       │
    drift check (wrapped_page_quality)          ▼
        │ healthy        │ drifted ───────▶ induce_wrapper
        ▼                                       │ + registry.put
    records from rows                           ▼
        ("path": "wrapper")             apply induced wrapper
                                        to the request's pages
                                        ("path": "pipeline")

The cold path *also* answers from the freshly-induced wrapper (falling
back to the raw segmentation only when induction fails): both paths
therefore serialize the same deterministic function of the page, which
is what makes cold and warm responses byte-identical for an unchanged
site — the end-to-end acceptance check.

Both paths are *entry points into one stage graph*
(:data:`SERVICE_GRAPH`), not parallel code paths: the warm
wrapper-apply (+ drift scoring), the pipeline fallback, and wrapper
re-induction are each a declared :class:`~repro.core.stages.Stage`
whose span and counters the shared
:class:`~repro.core.stages.StageGraph` executor emits — the same
contract the batch pipeline's stages use.  The pipeline stage itself
nests the full ``pipeline.*`` stage chain of
:data:`~repro.core.pipeline.PIPELINE_GRAPH` under its ``serve.pipeline``
span.

Thread safety: one service instance is shared by every worker thread.
The registry locks internally, the metrics registry is thread-safe,
and each request gets its own private span tree
(:class:`~repro.obs.Observability` with the *shared* metrics
registry), because a tracer's span stack must not interleave across
threads.

Counters (see ``docs/observability.md``): ``serve.requests``,
``serve.wrapper_hits``, ``serve.pipeline_runs``, ``serve.fallbacks``
(drift-triggered), ``serve.reinductions``, ``serve.errors``; the
``serve.request.seconds`` histogram tracks latency.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from typing import Any

from repro.core.config import METHODS
from repro.core.exceptions import ConfigError, ExtractionError, ReproError
from repro.core.pipeline import SegmentationPipeline, SiteRun
from repro.core.stages import Degradation, Stage, StageContext, StageGraph
from repro.crawl.resilient import CrawlBudget
from repro.obs import MetricsRegistry, Observability
from repro.runner.cache import StageCache
from repro.serve.drift import DriftVerdict, wrapped_page_quality
from repro.serve.registry import WrapperRegistry
from repro.serve.schema import (
    PayloadError,
    pages_from_payload,
    run_page_summaries,
    wrapped_row_records,
)
from repro.store import RelationalStore, StoreError, ingest_pages, page_entry
from repro.store.query import query_store
from repro.webdoc.page import Page
from repro.wrapper.apply import apply_wrapper
from repro.wrapper.induce import RowWrapper, induce_wrapper

#: Segmentation meta keys that mark a run too degraded to ingest
#: (the runner quarantines on the same keys).
_DEGRADED_META = ("segmenter_error", "empty_problem")

__all__ = [
    "SERVICE_GRAPH",
    "ServeError",
    "ServiceConfig",
    "SegmentationService",
]


def _compute_apply(ctx: StageContext) -> tuple[list[dict[str, Any]], DriftVerdict]:
    """Wrapper-extract every list page + judge output quality."""
    wrapper = ctx["wrapper"]
    pages: list[dict[str, Any]] = []
    scores: list[float] = []
    for list_page, detail_pages in zip(ctx["list_pages"], ctx["details"]):
        rows = apply_wrapper(wrapper, list_page)
        scores.append(wrapped_page_quality(rows, detail_pages))
        pages.append(
            {
                "url": list_page.url,
                "records": wrapped_row_records(rows),
                "record_count": len(rows),
            }
        )
    score = sum(scores) / len(scores) if scores else 0.0
    return pages, DriftVerdict(
        score=score, threshold=ctx["drift_threshold"]
    )


def _apply_counters(value, ctx: StageContext):
    """Warm-path outcome counters (silent on the post-induction apply)."""
    if not ctx.get("count_outcome"):
        return ()
    _, drift = value
    if drift.drifted:
        return (("serve.fallbacks", 1),)
    return (("serve.wrapper_hits", 1),)


def _compute_pipeline(ctx: StageContext) -> SiteRun:
    pipeline = SegmentationPipeline(ctx["method"], obs=ctx["request_obs"])
    return pipeline.segment_site(ctx["list_pages"], ctx["details"])


def _build_service_graph() -> StageGraph:
    """The online service's stage catalogue, declared as data.

    Context inputs: ``site_id``, ``method``, ``list_pages``,
    ``details``, ``drift_threshold``, ``request_obs``; the warm path
    adds ``wrapper`` and ``count_outcome``.
    """
    apply_stage = Stage(
        name="apply",
        compute=_compute_apply,
        span="serve.apply",
        span_attrs=lambda ctx: {"site": ctx["site_id"]},
        counters=_apply_counters,
    )
    pipeline_stage = Stage(
        name="pipeline",
        compute=_compute_pipeline,
        span="serve.pipeline",
        span_attrs=lambda ctx: {
            "site": ctx["site_id"], "method": ctx["method"]
        },
        counters=lambda run, ctx: (("serve.pipeline_runs", 1),),
        finalize=lambda run, ctx: ctx.set(
            "sample",
            next(
                (page for page in run.pages if page.segmentation.records),
                None,
            ),
        ),
    )
    induce_stage = Stage(
        name="induce",
        deps=("pipeline",),
        compute=lambda ctx: induce_wrapper(
            ctx["sample"], ctx["pipeline"].template_verdict
        ),
        span="serve.induce",
        span_attrs=lambda ctx: {"site": ctx["site_id"]},
        degradations=(
            # A segmentation the induction cannot generalize is not an
            # error: the request is answered from the raw pipeline run.
            Degradation(
                exceptions=(ExtractionError,),
                fallback=lambda error, ctx: None,
            ),
        ),
    )
    return StageGraph((apply_stage, pipeline_stage, induce_stage))


#: The request-handling stage graph (shared executor, serve.* spans).
SERVICE_GRAPH = _build_service_graph()


class ServeError(ReproError):
    """A request the service refuses, with its HTTP status.

    Attributes:
        status: the HTTP status code the transport should emit.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the online service (capacity knobs in docs/serving.md).

    Attributes:
        method: default segmentation method when a payload names none.
        drift_threshold: wrapper quality below this triggers the
            pipeline fallback + re-induction.
        wrapper_cache_dir: disk tier for the wrapper registry (None =
            memory only).
        wrapper_cache_max_bytes: LRU size bound of that disk tier.
        request_budget: per-request spending limits, reusing the crawl
            layer's :class:`~repro.crawl.resilient.CrawlBudget`:
            ``deadline_s`` is the wall-clock deadline after which a
            queued or running request is answered 504.
        workers: worker-thread count (used by the HTTP layer).
        max_queue: admission-control queue depth (HTTP layer); a full
            queue answers 429 with a Retry-After hint.
        max_body_bytes: request bodies above this are refused (413).
        hung_grace_s: how long past its deadline an in-flight request
            may sit before the HTTP layer's watchdog finalizes it as a
            504 and replaces the wedged worker thread (None disables
            the watchdog).
        store_path: when set, every healthy response is also ingested
            into this :class:`~repro.store.RelationalStore` (online
            ingest), and ``GET /query`` answers column-keyword
            queries over it.
    """

    method: str = "prob"
    drift_threshold: float = 0.5
    wrapper_cache_dir: str | None = None
    wrapper_cache_max_bytes: int | None = None
    request_budget: CrawlBudget = field(
        default_factory=lambda: CrawlBudget(deadline_s=60.0)
    )
    workers: int = 2
    max_queue: int = 8
    max_body_bytes: int = 16 * 1024 * 1024
    hung_grace_s: float | None = 5.0
    store_path: str | None = None

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ConfigError(f"unknown default method {self.method!r}")
        if not 0.0 <= self.drift_threshold <= 1.0:
            raise ConfigError("drift_threshold must lie in [0, 1]")
        if self.workers < 1 or self.max_queue < 1:
            raise ConfigError("workers and max_queue must be >= 1")
        if self.hung_grace_s is not None and self.hung_grace_s < 0.0:
            raise ConfigError("hung_grace_s must be >= 0 (or None)")


class SegmentationService:
    """Segment request payloads, caching one wrapper per site.

    Args:
        config: service knobs.
        metrics: shared thread-safe registry exported by ``/metricz``
            (one is created if omitted).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.started_at = time.time()
        cache = None
        if self.config.wrapper_cache_dir is not None:
            cache = StageCache(
                self.config.wrapper_cache_dir,
                obs=self._request_obs(),
                max_bytes=self.config.wrapper_cache_max_bytes,
            )
        self.registry = WrapperRegistry(cache=cache, obs=self._request_obs())
        self.store: RelationalStore | None = None
        if self.config.store_path is not None:
            self.store = RelationalStore(
                self.config.store_path, obs=self._request_obs()
            )

    def _request_obs(self) -> Observability:
        """A per-request bundle: private span stack, shared metrics."""
        return Observability(metrics=self.metrics, keep_spans=False)

    # -- request handling ----------------------------------------------------

    def segment(self, payload: Any, trace_id: str | None = None) -> dict[str, Any]:
        """Handle one ``/v1/segment`` payload; returns the response dict.

        Raises:
            ServeError: refused requests, carrying the HTTP status
                (400 malformed payload, 500 internal failure).
        """
        obs = self._request_obs()
        trace_id = trace_id or uuid.uuid4().hex[:16]
        started = time.perf_counter()
        obs.counter("serve.requests").inc()
        try:
            with obs.span("serve.request"):
                response = self._segment(payload, obs)
        except ServeError:
            obs.counter("serve.errors").inc()
            raise
        except PayloadError as error:
            obs.counter("serve.errors").inc()
            raise ServeError(400, str(error)) from error
        except ReproError as error:
            obs.counter("serve.errors").inc()
            raise ServeError(
                500, f"{type(error).__name__}: {error}"
            ) from error
        elapsed = time.perf_counter() - started
        obs.histogram("serve.request.seconds").observe(elapsed)
        response["trace_id"] = trace_id
        response["elapsed_s"] = round(elapsed, 6)
        return response

    def _segment(self, payload: Any, obs: Observability) -> dict[str, Any]:
        if isinstance(payload, dict) and "_sleep" in payload:
            # Test hook (cf. the runner's ``_sleep`` task kind): hold a
            # worker for a bounded time so admission-control and
            # deadline tests can saturate the queue deterministically.
            seconds = min(float(payload["_sleep"]), 30.0)
            time.sleep(max(seconds, 0.0))
            return {"path": "sleep", "slept_s": seconds, "pages": [],
                    "record_count": 0}
        site_id, list_pages, details = pages_from_payload(payload)
        method = payload.get("method") or self.config.method
        if method not in METHODS:
            raise ServeError(
                400, f"unknown method {method!r}; pick from {METHODS}"
            )

        ctx = StageContext(
            {
                "site_id": site_id,
                "method": method,
                "list_pages": list_pages,
                "details": details,
                "drift_threshold": self.config.drift_threshold,
                "request_obs": obs,
            }
        )

        wrapper = self.registry.get(site_id, method)
        drift: DriftVerdict | None = None
        if wrapper is not None:
            warm_ctx = ctx.child(wrapper=wrapper, count_outcome=True)
            SERVICE_GRAPH.run(warm_ctx, targets=("apply",), obs=obs)
            pages, drift = warm_ctx["apply"]
            if not drift.drifted:
                self._store_ingest(
                    site_id, method, pages, list_pages, details,
                    degraded=False, obs=obs,
                )
                return self._response(
                    site_id, method, "wrapper", pages, drift, cached=True
                )

        run, wrapper = self._run_pipeline(
            ctx, obs, reinduced=drift is not None
        )
        if wrapper is not None:
            apply_ctx = ctx.child(wrapper=wrapper)
            SERVICE_GRAPH.run(apply_ctx, targets=("apply",), obs=obs)
            pages, _ = apply_ctx["apply"]
        else:
            pages = run_page_summaries(run)
        self._store_ingest(
            site_id, method, pages, list_pages, details,
            degraded=self._run_degraded(run, len(list_pages)), obs=obs,
        )
        return self._response(
            site_id, method, "pipeline", pages, drift,
            cached=False, induced=wrapper is not None,
        )

    def _run_pipeline(
        self,
        ctx: StageContext,
        obs: Observability,
        reinduced: bool,
    ) -> tuple[SiteRun, RowWrapper | None]:
        """Graph entry point: pipeline + (re-)induction and registration."""
        SERVICE_GRAPH.run(ctx, targets=("pipeline",), obs=obs)
        run: SiteRun = ctx["pipeline"]
        wrapper: RowWrapper | None = None
        if ctx["sample"] is not None:
            # The ``induce`` stage is only entered when the pipeline
            # produced a usable sample, so the ``serve.induce`` span
            # (and its latency histogram) measures real inductions.
            SERVICE_GRAPH.run(ctx, targets=("induce",), obs=obs)
            wrapper = ctx["induce"]
        if wrapper is not None:
            self.registry.put(ctx["site_id"], ctx["method"], wrapper)
            if reinduced:
                obs.counter("serve.reinductions").inc()
        elif reinduced:
            # Drifted and could not re-induce: the stale wrapper must
            # not answer the next request either.
            self.registry.invalidate(ctx["site_id"], ctx["method"])
        return run, wrapper

    # -- the relational store (online ingest + /query) -----------------------

    @staticmethod
    def _run_degraded(run: SiteRun, expected_pages: int) -> bool:
        """Too broken to ingest: missing pages or quarantine-grade meta."""
        if len(run.pages) < expected_pages:
            return True
        return any(
            key in page_run.segmentation.meta
            for page_run in run.pages
            for key in _DEGRADED_META
        )

    def _store_ingest(
        self,
        site_id: str,
        method: str,
        pages: list[dict[str, Any]],
        list_pages: list[Page],
        details: list[list[Page]],
        degraded: bool,
        obs: Observability,
    ) -> None:
        """Online ingest after a response; never breaks the response."""
        if self.store is None:
            return
        if degraded or not any(page.get("records") for page in pages):
            obs.counter("store.ingest.skipped").inc()
            return
        try:
            details_by_url = {
                list_page.url: page_details
                for list_page, page_details in zip(list_pages, details)
            }
            entries = [
                page_entry(
                    page["url"],
                    page["records"],
                    details_by_url.get(page["url"]),
                )
                for page in pages
            ]
            ingest_pages(
                self.store, site_id, method, entries, source="serve", obs=obs
            )
        except Exception:  # a broken store must not fail the request
            obs.counter("store.ingest.errors").inc()

    def query(
        self,
        keywords: list[str] | str,
        limit: int = 20,
        method: str | None = None,
    ) -> dict[str, Any]:
        """Answer ``GET /query`` from the configured store.

        Raises:
            ServeError: 404 without a store, 400 on an empty keyword
                list, 500 when the store refuses.
        """
        if self.store is None:
            raise ServeError(
                404, "no store configured (start with --store PATH)"
            )
        obs = self._request_obs()
        try:
            result = query_store(
                self.store, keywords, limit=limit, method=method, obs=obs
            )
        except ValueError as error:
            raise ServeError(400, str(error)) from error
        except StoreError as error:
            raise ServeError(500, f"store error: {error}") from error
        return result.as_dict()

    def _response(
        self,
        site_id: str,
        method: str,
        path: str,
        pages: list[dict[str, Any]],
        drift: DriftVerdict | None,
        cached: bool,
        induced: bool | None = None,
    ) -> dict[str, Any]:
        response: dict[str, Any] = {
            "site": site_id,
            "method": method,
            "path": path,
            "pages": pages,
            "record_count": sum(page["record_count"] for page in pages),
            "wrapper": {
                "cached": cached,
                "induced": bool(induced) if induced is not None else cached,
            },
        }
        if drift is not None:
            response["drift"] = drift.as_dict()
        return response

    # -- introspection endpoints ---------------------------------------------

    def health(self, **transport: Any) -> dict[str, Any]:
        """The ``/healthz`` body; the HTTP layer adds queue facts."""
        body = {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "sites_cached": len(self.registry),
            "method": self.config.method,
        }
        body.update(transport)
        return body

    def metrics_dict(self) -> dict[str, Any]:
        """The ``/metricz`` body: the shared registry's snapshot."""
        return self.metrics.as_dict()

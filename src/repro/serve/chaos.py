"""Seeded chaos harness for the serving layer.

The crawl layer got deterministic fault injection in PR 1
(:mod:`repro.sitegen.faults`); this module extends the same discipline
to the *process* level so the supervisor's claims — crash isolation,
self-healing restarts, crash-survivable wrapper state — are tested
against real faults instead of asserted.  A :class:`ChaosPlan` is a
frozen, seeded description of which events fail and how:

* **kill** — the worker SIGKILLs itself mid-request (the supervisor
  must reap and restart it; the client sees a connection reset);
* **hang** — the handler sleeps far past its deadline (the http
  layer's watchdog must convert it into a 504 and replace the wedged
  thread);
* **slow / corrupt cache reads** — the wrapper registry's disk tier
  stalls or returns garbage (a corrupt read must degrade to a miss);
* **disk-full writes** — storing a wrapper raises ``ENOSPC`` (the
  registry must keep serving from memory).

Determinism is the point: every decision is a pure function of
``(seed, worker_index, generation, event_index)`` via the same
SHA-256 draw (:func:`~repro.sitegen.faults.stable_unit`) the crawl
faults use, so a chaos run is exactly reproducible and any failure it
surfaces can be replayed.  The *generation* term matters: a restarted
worker draws a fresh schedule, so a deterministic kill at request
index *i* does not re-kill the replacement at the same index and spin
the supervisor's crash budget down — generations decorrelate, seeds
reproduce.

Plans travel as JSON files (``repro serve --chaos-plan plan.json``)
so the CLI, the smoke test and ``bench_chaos.py`` can share fault
mixes.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from repro.core.exceptions import ConfigError
from repro.obs import MetricsRegistry
from repro.sitegen.faults import stable_unit

__all__ = [
    "ChaosInjector",
    "ChaosPlan",
    "ChaosStageCache",
    "load_chaos_plan",
]


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded description of serve-side faults (see module docstring).

    Rates are marginal probabilities per event; request faults (kill,
    hang) share one draw and may sum to at most 1, as do the cache
    read faults (corrupt, slow).

    Attributes:
        seed: master seed; equal plans make identical decisions.
        kill_rate: fraction of requests on which the worker SIGKILLs
            itself before answering.
        hang_rate: fraction of requests on which the handler hangs.
        hang_s: how long a hung handler sleeps (should dwarf the
            request deadline so the watchdog, not the sleep, ends it).
        cache_slow_rate: fraction of disk-tier reads that stall.
        cache_slow_s: how long a slow read stalls.
        cache_corrupt_rate: fraction of disk-tier reads that return
            a miss as if the entry were corrupt.
        disk_full_rate: fraction of disk-tier writes that raise
            ``OSError(ENOSPC)``.
    """

    seed: int = 0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    hang_s: float = 30.0
    cache_slow_rate: float = 0.0
    cache_slow_s: float = 0.2
    cache_corrupt_rate: float = 0.0
    disk_full_rate: float = 0.0

    def __post_init__(self) -> None:
        rates = (
            self.kill_rate,
            self.hang_rate,
            self.cache_slow_rate,
            self.cache_corrupt_rate,
            self.disk_full_rate,
        )
        if any(rate < 0.0 or rate > 1.0 for rate in rates):
            raise ConfigError(f"chaos rates must lie in [0, 1]: {rates}")
        if self.kill_rate + self.hang_rate > 1.0:
            raise ConfigError(
                "kill_rate + hang_rate must be <= 1; one request can "
                "only fail one way"
            )
        if self.cache_corrupt_rate + self.cache_slow_rate > 1.0:
            raise ConfigError(
                "cache_corrupt_rate + cache_slow_rate must be <= 1"
            )
        if self.hang_s < 0.0 or self.cache_slow_s < 0.0:
            raise ConfigError("hang_s and cache_slow_s must be >= 0")

    # -- decisions (pure functions of the key) -------------------------------

    def _draw(
        self, salt: str, worker_index: int, generation: int, index: int
    ) -> float:
        return stable_unit(
            f"{self.seed}:{salt}:{worker_index}:{generation}:{index}"
        )

    def request_fault(
        self, worker_index: int, generation: int, request_index: int
    ) -> str | None:
        """``"kill"``, ``"hang"`` or None for one handled request."""
        draw = self._draw("request", worker_index, generation, request_index)
        if draw < self.kill_rate:
            return "kill"
        if draw < self.kill_rate + self.hang_rate:
            return "hang"
        return None

    def read_fault(
        self, worker_index: int, generation: int, read_index: int
    ) -> str | None:
        """``"corrupt"``, ``"slow"`` or None for one disk-tier read."""
        draw = self._draw("read", worker_index, generation, read_index)
        if draw < self.cache_corrupt_rate:
            return "corrupt"
        if draw < self.cache_corrupt_rate + self.cache_slow_rate:
            return "slow"
        return None

    def write_fault(
        self, worker_index: int, generation: int, write_index: int
    ) -> bool:
        """Whether one disk-tier write hits the injected full disk."""
        draw = self._draw("write", worker_index, generation, write_index)
        return draw < self.disk_full_rate

    def schedule(
        self, worker_index: int, generation: int, requests: int
    ) -> tuple[tuple[int, str], ...]:
        """The ``(request_index, fault)`` pairs among the first N requests.

        The acceptance-test form of determinism: two plans with equal
        fields produce identical schedules.
        """
        events = []
        for index in range(requests):
            fault = self.request_fault(worker_index, generation, index)
            if fault is not None:
                events.append((index, fault))
        return tuple(events)

    # -- wire form -----------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosPlan":
        known = {field: data[field] for field in data if field in cls.__dataclass_fields__}
        unknown = set(data) - set(known)
        if unknown:
            raise ConfigError(f"unknown chaos plan fields: {sorted(unknown)}")
        return cls(**known)


def load_chaos_plan(path: str | Path) -> ChaosPlan:
    """Read a :class:`ChaosPlan` from a JSON file (CLI ``--chaos-plan``)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ConfigError(f"cannot read chaos plan {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise ConfigError(f"chaos plan {path!r} is not JSON: {error}") from error
    if not isinstance(data, dict):
        raise ConfigError(f"chaos plan {path!r} must be a JSON object")
    return ChaosPlan.from_dict(data)


class ChaosInjector:
    """Executes a plan's request faults inside a serving worker.

    Installed as the :class:`~repro.serve.http.SegmentationServer`'s
    ``request_hook``: called once per dequeued job, it draws the fault
    for the running request index and either does nothing, hangs, or
    SIGKILLs the process (taking every in-flight request with it —
    exactly the blast radius the supervisor must contain).
    """

    def __init__(
        self,
        plan: ChaosPlan,
        worker_index: int = 0,
        generation: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.plan = plan
        self.worker_index = worker_index
        self.generation = generation
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._requests = 0

    def on_request(self) -> None:
        with self._lock:
            index = self._requests
            self._requests += 1
        fault = self.plan.request_fault(self.worker_index, self.generation, index)
        if fault is None:
            return
        self.metrics.counter(f"serve.chaos.{fault}").inc()
        if fault == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault == "hang":
            time.sleep(self.plan.hang_s)


class ChaosStageCache:
    """A :class:`~repro.runner.cache.StageCache` wrapper injecting faults.

    Wraps any cache with ``load``/``store`` (the registry's disk
    tier): reads may stall or come back as misses, writes may raise
    ``OSError(ENOSPC)``.  Event indices count per kind, so the fault
    sequence is deterministic regardless of interleaving between
    reads and writes.
    """

    def __init__(
        self,
        inner: Any,
        plan: ChaosPlan,
        worker_index: int = 0,
        generation: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.worker_index = worker_index
        self.generation = generation
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._reads = 0
        self._writes = 0

    @property
    def stats(self) -> Any:
        return self.inner.stats

    def key(self, stage: str, parts: Any) -> str:
        return self.inner.key(stage, parts)

    def load(self, stage: str, key: str) -> tuple[bool, Any]:
        with self._lock:
            index = self._reads
            self._reads += 1
        fault = self.plan.read_fault(self.worker_index, self.generation, index)
        if fault == "slow":
            self.metrics.counter("serve.chaos.cache_slow").inc()
            time.sleep(self.plan.cache_slow_s)
        elif fault == "corrupt":
            # A checksum-failed entry and an injected one look the
            # same from above: a miss, never a bad value.
            self.metrics.counter("serve.chaos.cache_corrupt").inc()
            return False, None
        return self.inner.load(stage, key)

    def store(self, stage: str, key: str, value: Any) -> None:
        with self._lock:
            index = self._writes
            self._writes += 1
        if self.plan.write_fault(self.worker_index, self.generation, index):
            self.metrics.counter("serve.chaos.disk_full").inc()
            raise OSError(errno.ENOSPC, "injected disk full")
        self.inner.store(stage, key, value)

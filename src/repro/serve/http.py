"""Stdlib HTTP front end for the segmentation service.

Zero extra dependencies: :class:`http.server.ThreadingHTTPServer`
accepts connections (one handler thread each), but handler threads do
**no segmentation work** — they parse the request, submit a job to a
bounded :class:`queue.Queue`, and wait on the job's event.  A fixed
pool of worker threads drains the queue.  That split is what gives the
server real capacity behavior instead of thread-per-request collapse:

* **admission control** — ``queue.put_nowait`` on a full queue is an
  instant ``429 Too Many Requests`` with a ``Retry-After`` hint; the
  server sheds load at the door instead of stacking it up;
* **deadlines** — every job carries an absolute deadline from the
  service's :class:`~repro.crawl.resilient.CrawlBudget`
  (``request_budget.deadline_s``).  A handler waiting past it answers
  ``504``; a worker that dequeues an already-expired or abandoned job
  drops it (``serve.deadline_drops``) rather than burning CPU on an
  answer nobody is waiting for;
* **graceful shutdown** — SIGTERM/SIGINT flips the server to
  *draining*: new ``/v1/segment`` requests get ``503`` (``/healthz``
  keeps answering, reporting ``"draining"``), queued jobs finish,
  workers join, and ``run()`` returns 0.

Endpoints::

    POST /v1/segment   segment a site payload (JSON in, JSON out)
    GET  /healthz      liveness + queue depth + drain state
    GET  /metricz      the shared MetricsRegistry as JSON

Error codes: 400 malformed JSON/schema, 404 unknown path, 405 wrong
verb, 413 oversized body, 429 queue full, 500 internal error, 503
draining, 504 deadline exceeded.  Every response carries its
``X-Trace-Id``; segment responses repeat it in the body.
"""

from __future__ import annotations

import json
import queue
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.serve.service import SegmentationService, ServeError

__all__ = ["SegmentationServer"]


@dataclass
class _Job:
    """One queued segmentation request."""

    payload: Any
    trace_id: str
    deadline: float | None
    done: threading.Event = field(default_factory=threading.Event)
    response: dict[str, Any] | None = None
    error: ServeError | None = None
    abandoned: bool = False

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class SegmentationServer:
    """The long-lived HTTP server around a :class:`SegmentationService`.

    Args:
        service: the request logic (owns registry, metrics, config).
        host: bind address.
        port: bind port (0 = ephemeral; see :attr:`port` after start).
    """

    def __init__(
        self,
        service: SegmentationService,
        host: str = "127.0.0.1",
        port: int = 8080,
    ) -> None:
        self.service = service
        config = service.config
        self.queue: "queue.Queue[_Job]" = queue.Queue(maxsize=config.max_queue)
        self.draining = threading.Event()
        self._workers: list[threading.Thread] = []
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()
        self.httpd = ThreadingHTTPServer(
            (host, port), self._handler_class(), bind_and_activate=True
        )
        self.httpd.daemon_threads = True

    # -- facts ---------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return self.httpd.server_address[1]

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def queue_depth(self) -> int:
        return self.queue.qsize()

    def in_flight(self) -> int:
        with self._in_flight_lock:
            return self._in_flight

    # -- worker pool ---------------------------------------------------------

    def _worker_loop(self) -> None:
        drops = self.service.metrics.counter("serve.deadline_drops")
        while True:
            job = self.queue.get()
            if job is None:  # drain sentinel
                self.queue.task_done()
                return
            with self._in_flight_lock:
                self._in_flight += 1
            try:
                if job.abandoned or job.expired(time.monotonic()):
                    drops.inc()
                    continue
                try:
                    job.response = self.service.segment(
                        job.payload, trace_id=job.trace_id
                    )
                except ServeError as error:
                    job.error = error
                except Exception as error:  # never kill the pool
                    job.error = ServeError(
                        500, f"{type(error).__name__}: {error}"
                    )
            finally:
                with self._in_flight_lock:
                    self._in_flight -= 1
                job.done.set()
                self.queue.task_done()

    def _start_workers(self) -> None:
        if self._workers:
            return
        for index in range(self.service.config.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)

    # -- request paths -------------------------------------------------------

    def _submit(self, payload: Any, trace_id: str) -> _Job:
        """Admission control: enqueue or refuse with 429/503.

        Raises:
            ServeError: 503 while draining, 429 on a full queue.
        """
        if self.draining.is_set():
            raise ServeError(503, "server is draining")
        budget = self.service.config.request_budget
        deadline = (
            time.monotonic() + budget.deadline_s
            if budget.deadline_s is not None
            else None
        )
        job = _Job(payload=payload, trace_id=trace_id, deadline=deadline)
        try:
            self.queue.put_nowait(job)
        except queue.Full:
            self.service.metrics.counter("serve.rejected").inc()
            raise ServeError(429, "request queue is full") from None
        return job

    def _await(self, job: _Job) -> dict[str, Any]:
        """Wait for the job within its deadline.

        Raises:
            ServeError: 504 when the deadline passes first.
        """
        timeout = (
            None
            if job.deadline is None
            else max(job.deadline - time.monotonic(), 0.0)
        )
        if not job.done.wait(timeout):
            job.abandoned = True
            self.service.metrics.counter("serve.deadline_hits").inc()
            raise ServeError(504, "deadline exceeded")
        if job.error is not None:
            raise job.error
        if job.response is None:
            # The worker dropped the job at the deadline edge.
            raise ServeError(504, "deadline exceeded")
        return job.response

    def _retry_after_s(self) -> int:
        """Honest Retry-After hint: mean request time x queue length."""
        latency = self.service.metrics.histogram("serve.request.seconds")
        mean = latency.mean if latency.count else 1.0
        return max(1, int(mean * (self.queue.qsize() + 1) + 0.5))

    def _health_body(self) -> dict[str, Any]:
        return self.service.health(
            status="draining" if self.draining.is_set() else "ok",
            queue_depth=self.queue_depth(),
            queue_limit=self.service.config.max_queue,
            workers=self.service.config.workers,
            in_flight=self.in_flight(),
        )

    # -- HTTP plumbing -------------------------------------------------------

    def _handler_class(self) -> type[BaseHTTPRequestHandler]:
        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            server_version = "repro-serve"

            def log_message(self, format: str, *args: Any) -> None:
                pass  # the metrics registry is the access log

            def _reply(
                self,
                status: int,
                body: dict[str, Any],
                trace_id: str,
                headers: dict[str, str] | None = None,
            ) -> None:
                data = json.dumps(body).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.send_header("X-Trace-Id", trace_id)
                for name, value in (headers or {}).items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(data)

            def _error(
                self, error: ServeError, trace_id: str
            ) -> None:
                headers = {}
                if error.status == 429:
                    headers["Retry-After"] = str(server._retry_after_s())
                self._reply(
                    error.status,
                    {"error": str(error), "trace_id": trace_id},
                    trace_id,
                    headers,
                )

            def do_GET(self) -> None:
                trace_id = uuid.uuid4().hex[:16]
                if self.path == "/healthz":
                    self._reply(200, server._health_body(), trace_id)
                elif self.path == "/metricz":
                    self._reply(200, server.service.metrics_dict(), trace_id)
                elif self.path == "/v1/segment":
                    self._error(ServeError(405, "use POST"), trace_id)
                else:
                    self._error(
                        ServeError(404, f"no route {self.path!r}"), trace_id
                    )

            def do_POST(self) -> None:
                trace_id = uuid.uuid4().hex[:16]
                if self.path != "/v1/segment":
                    self._error(
                        ServeError(404, f"no route {self.path!r}"), trace_id
                    )
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    if length > server.service.config.max_body_bytes:
                        raise ServeError(413, "request body too large")
                    raw = self.rfile.read(length)
                    try:
                        payload = json.loads(raw.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError) as err:
                        raise ServeError(400, f"bad JSON: {err}") from err
                    job = server._submit(payload, trace_id)
                    response = server._await(job)
                except ServeError as error:
                    self._error(error, trace_id)
                    return
                self._reply(200, response, trace_id)

        return Handler

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start workers + the accept loop in background threads.

        The in-process form the tests and benchmarks use; the CLI uses
        the blocking :meth:`run` instead.
        """
        self._start_workers()
        thread = threading.Thread(
            target=self.httpd.serve_forever, name="serve-accept", daemon=True
        )
        thread.start()
        self._accept_thread = thread

    def shutdown(self, drain_timeout_s: float = 30.0) -> None:
        """Graceful stop: refuse new work, finish queued work, join.

        Safe to call more than once.
        """
        if self.draining.is_set():
            return
        self.draining.set()
        deadline = time.monotonic() + drain_timeout_s
        # Let queued jobs finish (workers skip expired ones anyway).
        while self.queue.qsize() > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        while self.in_flight() > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        for _ in self._workers:
            try:
                self.queue.put_nowait(None)  # type: ignore[arg-type]
            except queue.Full:
                break
        for worker in self._workers:
            worker.join(timeout=max(deadline - time.monotonic(), 0.1))
        self.httpd.shutdown()
        self.httpd.server_close()

    def run(self, out=None, install_signals: bool = True) -> int:
        """Blocking CLI entry: serve until SIGTERM/SIGINT, drain, exit 0."""
        stop = threading.Event()

        def _on_signal(signum: int, frame: Any) -> None:
            stop.set()

        if install_signals:
            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        self.start()
        if out is not None:
            print(f"listening on {self.address}", file=out, flush=True)
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
        if out is not None:
            print("draining...", file=out, flush=True)
        self.shutdown()
        if out is not None:
            print("stopped", file=out, flush=True)
        return 0

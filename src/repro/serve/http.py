"""Stdlib HTTP front end for the segmentation service.

Zero extra dependencies: :class:`http.server.ThreadingHTTPServer`
accepts connections (one handler thread each), but handler threads do
**no segmentation work** — they parse the request, submit a job to a
bounded :class:`queue.Queue`, and wait on the job's event.  A fixed
pool of worker threads drains the queue.  That split is what gives the
server real capacity behavior instead of thread-per-request collapse:

* **admission control** — ``queue.put_nowait`` on a full queue is an
  instant ``429 Too Many Requests`` with a ``Retry-After`` hint; the
  server sheds load at the door instead of stacking it up;
* **deadlines** — every job carries an absolute deadline from the
  service's :class:`~repro.crawl.resilient.CrawlBudget`
  (``request_budget.deadline_s``).  A handler waiting past it answers
  ``504``; a worker that dequeues an already-expired or abandoned job
  drops it (``serve.deadline_drops``) rather than burning CPU on an
  answer nobody is waiting for;
* **a hung-handler watchdog** — a worker thread stuck inside a
  request (a wedged wrapper, an injected chaos hang) cannot shrink
  the pool: once a job sits past ``deadline + hung_grace_s`` the
  watchdog finalizes it as a 504 and starts a replacement worker
  thread, so capacity recovers instead of leaking one thread per
  hang (``serve.watchdog.*`` counters);
* **graceful shutdown** — SIGTERM/SIGINT flips the server to
  *draining*: new ``/v1/segment`` requests get ``503`` (``/healthz``
  keeps answering, reporting ``"draining"``), queued jobs finish,
  workers join, and ``run()`` returns 0.  ``shutdown()`` is
  idempotent — concurrent or repeated calls are safe.

Every job is finalized exactly once (:meth:`SegmentationServer._finalize`),
whether by the worker that ran it, the watchdog that gave up on it,
or the deadline drop — so the in-flight gauge can never leak and wedge
the drain loop.

Supervised operation (:mod:`repro.serve.supervisor`) adds two hooks:
``reuse_port=True`` binds with ``SO_REUSEPORT`` so N worker processes
share one port, and the supervisor's control pipe feeds
:attr:`~SegmentationServer.external_status` (``/healthz`` reports
``"degraded"`` when the parent says so) and
:attr:`~SegmentationServer.external_metrics` (the parent's
``serve.supervisor.*`` counters folded into ``/metricz``).  A
``request_hook`` callable, when set, runs before each dequeued job —
the chaos harness's injection point.

Endpoints::

    POST /v1/segment   segment a site payload (JSON in, JSON out)
    GET  /query        column-keyword query over the --store database
    GET  /healthz      liveness + queue depth + drain state
    GET  /metricz      the shared MetricsRegistry as JSON

Error codes: 400 malformed JSON/schema, 404 unknown path, 405 wrong
verb, 413 oversized body, 429 queue full, 500 internal error, 503
draining, 504 deadline exceeded.  Every response carries its
``X-Trace-Id``; segment responses repeat it in the body.
"""

from __future__ import annotations

import json
import queue
import signal
import socket
import threading
import time
import urllib.parse
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.core.exceptions import ConfigError
from repro.obs import Clock
from repro.serve.service import SegmentationService, ServeError

__all__ = ["SegmentationServer"]

#: How often the hung-handler watchdog scans the in-flight set.
_WATCHDOG_INTERVAL_S = 0.1


@dataclass(eq=False)
class _Job:
    """One queued segmentation request."""

    payload: Any
    trace_id: str
    deadline: float | None
    done: threading.Event = field(default_factory=threading.Event)
    response: dict[str, Any] | None = None
    error: ServeError | None = None
    abandoned: bool = False
    finalized: bool = False

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class SegmentationServer:
    """The long-lived HTTP server around a :class:`SegmentationService`.

    Args:
        service: the request logic (owns registry, metrics, config).
        host: bind address.
        port: bind port (0 = ephemeral; see :attr:`port` after start).
        reuse_port: bind with ``SO_REUSEPORT`` so several worker
            processes (under :mod:`repro.serve.supervisor`) listen on
            one port.
        clock: injectable time source for deadlines and drain timing
            (default: ``time.monotonic``); tests use ``ManualClock``.
    """

    def __init__(
        self,
        service: SegmentationService,
        host: str = "127.0.0.1",
        port: int = 8080,
        reuse_port: bool = False,
        clock: Clock | None = None,
    ) -> None:
        self.service = service
        config = service.config
        self._now: Callable[[], float] = (
            clock.now if clock is not None else time.monotonic
        )
        self.queue: "queue.Queue[_Job]" = queue.Queue(maxsize=config.max_queue)
        self.draining = threading.Event()
        self.request_hook: Callable[[], None] | None = None
        self.external_status: str | None = None
        self.external_metrics: dict[str, Any] | None = None
        self._workers: list[threading.Thread] = []
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()
        self._active: set[_Job] = set()
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = False
        self._stop = threading.Event()
        self.httpd = ThreadingHTTPServer(
            (host, port), self._handler_class(), bind_and_activate=False
        )
        if reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise ConfigError(
                    "SO_REUSEPORT is not available on this platform"
                )
            self.httpd.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
        try:
            self.httpd.server_bind()
            self.httpd.server_activate()
        except BaseException:
            self.httpd.server_close()
            raise
        self.httpd.daemon_threads = True

    # -- facts ---------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return self.httpd.server_address[1]

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def queue_depth(self) -> int:
        return self.queue.qsize()

    def in_flight(self) -> int:
        with self._in_flight_lock:
            return self._in_flight

    # -- worker pool ---------------------------------------------------------

    def _worker_loop(self) -> None:
        drops = self.service.metrics.counter("serve.deadline_drops")
        while True:
            job = self.queue.get()
            if job is None:  # drain sentinel
                self.queue.task_done()
                return
            with self._in_flight_lock:
                self._in_flight += 1
                self._active.add(job)
            try:
                if job.abandoned or job.expired(self._now()):
                    drops.inc()
                    continue
                hook = self.request_hook
                if hook is not None:
                    hook()
                try:
                    job.response = self.service.segment(
                        job.payload, trace_id=job.trace_id
                    )
                except ServeError as error:
                    job.error = error
                except Exception as error:  # never kill the pool
                    job.error = ServeError(
                        500, f"{type(error).__name__}: {error}"
                    )
            finally:
                first = self._finalize(job)
                self.queue.task_done()
                if not first:
                    # The watchdog already 504'd this job and started a
                    # replacement thread; this one retires on waking.
                    return

    def _finalize(self, job: _Job, error: ServeError | None = None) -> bool:
        """Close out one job exactly once; False if already finalized.

        The single place the in-flight gauge decrements, shared by the
        worker that ran the job and the watchdog that gave up on it —
        double accounting here would leak the gauge and wedge drains.
        """
        with self._in_flight_lock:
            if job.finalized:
                return False
            job.finalized = True
            self._in_flight -= 1
            self._active.discard(job)
        if error is not None and job.response is None and job.error is None:
            job.error = error
        job.done.set()
        return True

    def _spawn_worker(self, replacement: bool = False) -> None:
        thread = threading.Thread(
            target=self._worker_loop,
            name=f"serve-worker-{len(self._workers)}",
            daemon=True,
        )
        thread.start()
        self._workers.append(thread)
        if replacement:
            self.service.metrics.counter("serve.watchdog.replacements").inc()

    def _watchdog_loop(self) -> None:
        """Convert handler threads stuck past their deadline into 504s."""
        grace = self.service.config.hung_grace_s
        hung = self.service.metrics.counter("serve.watchdog.hung_requests")
        while not self.draining.is_set():
            now = self._now()
            with self._in_flight_lock:
                stuck = [
                    job
                    for job in self._active
                    if job.deadline is not None
                    and now >= job.deadline + grace
                ]
            for job in stuck:
                if self._finalize(
                    job, error=ServeError(504, "request hung past deadline")
                ):
                    hung.inc()
                    self._spawn_worker(replacement=True)
            time.sleep(_WATCHDOG_INTERVAL_S)

    def _start_workers(self) -> None:
        if self._workers:
            return
        for _ in range(self.service.config.workers):
            self._spawn_worker()
        if self.service.config.hung_grace_s is not None:
            thread = threading.Thread(
                target=self._watchdog_loop, name="serve-watchdog", daemon=True
            )
            thread.start()

    # -- request paths -------------------------------------------------------

    def _submit(self, payload: Any, trace_id: str) -> _Job:
        """Admission control: enqueue or refuse with 429/503.

        Raises:
            ServeError: 503 while draining, 429 on a full queue.
        """
        if self.draining.is_set():
            raise ServeError(503, "server is draining")
        budget = self.service.config.request_budget
        deadline = (
            self._now() + budget.deadline_s
            if budget.deadline_s is not None
            else None
        )
        job = _Job(payload=payload, trace_id=trace_id, deadline=deadline)
        try:
            self.queue.put_nowait(job)
        except queue.Full:
            self.service.metrics.counter("serve.rejected").inc()
            raise ServeError(429, "request queue is full") from None
        return job

    def _await(self, job: _Job) -> dict[str, Any]:
        """Wait for the job within its deadline.

        Raises:
            ServeError: 504 when the deadline passes first.
        """
        timeout = (
            None
            if job.deadline is None
            else max(job.deadline - self._now(), 0.0)
        )
        if not job.done.wait(timeout):
            job.abandoned = True
            self.service.metrics.counter("serve.deadline_hits").inc()
            raise ServeError(504, "deadline exceeded")
        if job.error is not None:
            raise job.error
        if job.response is None:
            # The worker dropped the job at the deadline edge.
            raise ServeError(504, "deadline exceeded")
        return job.response

    def _retry_after_s(self) -> int:
        """Honest Retry-After hint: mean request time x queue length."""
        latency = self.service.metrics.histogram("serve.request.seconds")
        mean = latency.mean if latency.count else 1.0
        return max(1, int(mean * (self.queue.qsize() + 1) + 0.5))

    def _health_body(self) -> dict[str, Any]:
        if self.draining.is_set():
            status = "draining"
        else:
            status = self.external_status or "ok"
        return self.service.health(
            status=status,
            queue_depth=self.queue_depth(),
            queue_limit=self.service.config.max_queue,
            workers=self.service.config.workers,
            in_flight=self.in_flight(),
        )

    def _query_body(self, query_string: str) -> dict[str, Any]:
        """Parse ``/query?kw=name&kw=charge`` (or ``?q=name,charge``).

        Raises:
            ServeError: propagated from the service (400/404/500).
        """
        params = urllib.parse.parse_qs(query_string)
        keywords = list(params.get("kw", []))
        for joined in params.get("q", []):
            keywords.extend(joined.split(","))
        limit = 20
        if params.get("limit"):
            try:
                limit = int(params["limit"][0])
            except ValueError as error:
                raise ServeError(400, "limit must be an integer") from error
        method = params["method"][0] if params.get("method") else None
        return self.service.query(keywords, limit=limit, method=method)

    def _metricz_body(self) -> dict[str, Any]:
        """The service registry, plus the supervisor's folded snapshot."""
        body = self.service.metrics_dict()
        extra = self.external_metrics
        if extra:
            for section in ("counters", "histograms"):
                merged = dict(body.get(section, {}))
                merged.update(extra.get(section, {}))
                body[section] = merged
        return body

    # -- HTTP plumbing -------------------------------------------------------

    def _handler_class(self) -> type[BaseHTTPRequestHandler]:
        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            server_version = "repro-serve"

            def log_message(self, format: str, *args: Any) -> None:
                pass  # the metrics registry is the access log

            def _reply(
                self,
                status: int,
                body: dict[str, Any],
                trace_id: str,
                headers: dict[str, str] | None = None,
            ) -> None:
                data = json.dumps(body).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.send_header("X-Trace-Id", trace_id)
                for name, value in (headers or {}).items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(data)

            def _error(
                self, error: ServeError, trace_id: str
            ) -> None:
                headers = {}
                if error.status == 429:
                    headers["Retry-After"] = str(server._retry_after_s())
                self._reply(
                    error.status,
                    {"error": str(error), "trace_id": trace_id},
                    trace_id,
                    headers,
                )

            def do_GET(self) -> None:
                trace_id = uuid.uuid4().hex[:16]
                path, _, query_string = self.path.partition("?")
                if path == "/healthz":
                    self._reply(200, server._health_body(), trace_id)
                elif path == "/metricz":
                    self._reply(200, server._metricz_body(), trace_id)
                elif path == "/query":
                    # Store queries are cheap sqlite reads; they are
                    # answered inline (like /healthz), never queued
                    # behind segmentation work.
                    try:
                        body = server._query_body(query_string)
                    except ServeError as error:
                        self._error(error, trace_id)
                        return
                    self._reply(200, body, trace_id)
                elif path == "/v1/segment":
                    self._error(ServeError(405, "use POST"), trace_id)
                else:
                    self._error(
                        ServeError(404, f"no route {self.path!r}"), trace_id
                    )

            def do_POST(self) -> None:
                trace_id = uuid.uuid4().hex[:16]
                if self.path != "/v1/segment":
                    self._error(
                        ServeError(404, f"no route {self.path!r}"), trace_id
                    )
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    if length > server.service.config.max_body_bytes:
                        raise ServeError(413, "request body too large")
                    raw = self.rfile.read(length)
                    try:
                        payload = json.loads(raw.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError) as err:
                        raise ServeError(400, f"bad JSON: {err}") from err
                    job = server._submit(payload, trace_id)
                    response = server._await(job)
                except ServeError as error:
                    self._error(error, trace_id)
                    return
                self._reply(200, response, trace_id)

        return Handler

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start workers + the accept loop in background threads.

        The in-process form the tests and benchmarks use; the CLI uses
        the blocking :meth:`run` instead.
        """
        self._start_workers()
        thread = threading.Thread(
            target=self.httpd.serve_forever, name="serve-accept", daemon=True
        )
        thread.start()
        self._accept_thread = thread

    def shutdown(self, drain_timeout_s: float = 30.0) -> None:
        """Graceful stop: refuse new work, finish queued work, join.

        Idempotent: repeated or concurrent calls after the first
        return immediately.
        """
        with self._shutdown_lock:
            if self._shutdown_done:
                return
            self._shutdown_done = True
        self.draining.set()
        deadline = self._now() + drain_timeout_s
        # Let queued jobs finish (workers skip expired ones anyway).
        while self.queue.qsize() > 0 and self._now() < deadline:
            time.sleep(0.01)
        while self.in_flight() > 0 and self._now() < deadline:
            time.sleep(0.01)
        for _ in self._workers:
            try:
                self.queue.put_nowait(None)  # type: ignore[arg-type]
            except queue.Full:
                break
        for worker in self._workers:
            worker.join(timeout=max(deadline - self._now(), 0.1))
        self.httpd.shutdown()
        self.httpd.server_close()

    def request_stop(self) -> None:
        """Ask a blocking :meth:`run` to drain and return (thread-safe)."""
        self._stop.set()

    def run(self, out=None, install_signals: bool = True) -> int:
        """Blocking CLI entry: serve until SIGTERM/SIGINT, drain, exit 0."""

        def _on_signal(signum: int, frame: Any) -> None:
            self._stop.set()

        if install_signals:
            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        self.start()
        if out is not None:
            print(f"listening on {self.address}", file=out, flush=True)
        try:
            self._stop.wait()
        except KeyboardInterrupt:
            pass
        if out is not None:
            print("draining...", file=out, flush=True)
        self.shutdown()
        if out is not None:
            print("stopped", file=out, flush=True)
        return 0

"""Online segmentation: a long-lived HTTP service over the pipeline.

Everything below :mod:`repro.serve` turns the one-shot batch codebase
into the ROADMAP's long-lived server.  The economics come from the
wrapper layer: the full pipeline costs seconds per site, but a site's
induced :class:`~repro.wrapper.induce.RowWrapper` re-extracts further
pages in milliseconds — so the service learns each site once (the
*cold* path), caches the wrapper per site (the
:class:`~repro.serve.registry.WrapperRegistry`, optionally disk-backed
through the LRU-bounded :class:`~repro.runner.cache.StageCache`), and
answers repeat traffic from it (the *warm* path).  Template drift is
caught by :mod:`repro.serve.drift`'s detail-page cross-check and
triggers a pipeline fallback plus re-induction, so a redesigned site
heals itself on the next request.

Module map (request logic is transport-free by design):

* :mod:`~repro.serve.schema` — wire shapes shared with the CLI's
  ``--json`` output; payload parsing;
* :mod:`~repro.serve.drift` — wrapper-output quality scoring without
  ground truth;
* :mod:`~repro.serve.registry` — the per-site wrapper cache;
* :mod:`~repro.serve.service` — ``POST /v1/segment`` semantics
  (:class:`SegmentationService`);
* :mod:`~repro.serve.http` — stdlib HTTP front end with a bounded
  worker pool, admission control (429 + Retry-After), per-request
  deadlines (504), ``/healthz``, ``/metricz`` and graceful SIGTERM
  draining (:class:`SegmentationServer`);
* :mod:`~repro.serve.client` — stdlib client for tests, smoke jobs
  and benchmarks.

CLI: ``repro serve --port 8080 --workers 4 --max-queue 16
--wrapper-cache-dir ./wrappers``.  Full endpoint and capacity-knob
reference: ``docs/serving.md``.
"""

from repro.serve.client import (
    ServeClient,
    ServeResponse,
    payload_from_pages,
    payload_from_sample,
)
from repro.serve.drift import DriftVerdict, wrapped_page_quality
from repro.serve.http import SegmentationServer
from repro.serve.registry import WrapperRegistry
from repro.serve.service import (
    SegmentationService,
    ServeError,
    ServiceConfig,
)

__all__ = [
    "DriftVerdict",
    "SegmentationServer",
    "SegmentationService",
    "ServeClient",
    "ServeError",
    "ServeResponse",
    "ServiceConfig",
    "WrapperRegistry",
    "payload_from_pages",
    "payload_from_sample",
    "wrapped_page_quality",
]

"""Online segmentation: a long-lived HTTP service over the pipeline.

Everything below :mod:`repro.serve` turns the one-shot batch codebase
into the ROADMAP's long-lived server.  The economics come from the
wrapper layer: the full pipeline costs seconds per site, but a site's
induced :class:`~repro.wrapper.induce.RowWrapper` re-extracts further
pages in milliseconds — so the service learns each site once (the
*cold* path), caches the wrapper per site (the
:class:`~repro.serve.registry.WrapperRegistry`, optionally disk-backed
through the LRU-bounded :class:`~repro.runner.cache.StageCache`), and
answers repeat traffic from it (the *warm* path).  Template drift is
caught by :mod:`repro.serve.drift`'s detail-page cross-check and
triggers a pipeline fallback plus re-induction, so a redesigned site
heals itself on the next request.

Module map (request logic is transport-free by design):

* :mod:`~repro.serve.schema` — wire shapes shared with the CLI's
  ``--json`` output; payload parsing;
* :mod:`~repro.serve.drift` — wrapper-output quality scoring without
  ground truth;
* :mod:`~repro.serve.registry` — the per-site wrapper cache;
* :mod:`~repro.serve.service` — ``POST /v1/segment`` semantics
  (:class:`SegmentationService`);
* :mod:`~repro.serve.http` — stdlib HTTP front end with a bounded
  worker pool, admission control (429 + Retry-After), per-request
  deadlines (504), a hung-handler watchdog, ``/healthz``,
  ``/metricz`` and graceful SIGTERM draining
  (:class:`SegmentationServer`);
* :mod:`~repro.serve.supervisor` — multi-process serving: a parent
  holds the ``SO_REUSEPORT`` port and keeps N worker processes alive
  via heartbeats, exponential-backoff restarts and a rolling crash
  budget (:class:`Supervisor`);
* :mod:`~repro.serve.chaos` — seeded fault injection for the serving
  path: worker kills, hung handlers, slow/corrupt cache reads,
  disk-full writes (:class:`ChaosPlan`);
* :mod:`~repro.serve.client` — stdlib client for tests, smoke jobs
  and benchmarks, with bounded seeded-jitter retries.

CLI: ``repro serve --port 8080 --procs 4 --workers 4 --max-queue 16
--wrapper-cache-dir ./wrappers``.  Full endpoint and capacity-knob
reference: ``docs/serving.md``.
"""

from repro.serve.chaos import (
    ChaosInjector,
    ChaosPlan,
    ChaosStageCache,
    load_chaos_plan,
)
from repro.serve.client import (
    ServeClient,
    ServeResponse,
    payload_from_pages,
    payload_from_sample,
)
from repro.serve.drift import DriftVerdict, wrapped_page_quality
from repro.serve.http import SegmentationServer
from repro.serve.registry import WrapperRegistry
from repro.serve.service import (
    SegmentationService,
    ServeError,
    ServiceConfig,
)
from repro.serve.supervisor import (
    CrashBudget,
    RestartBackoff,
    Supervisor,
    SupervisorConfig,
    run_worker,
    supports_reuse_port,
)

__all__ = [
    "ChaosInjector",
    "ChaosPlan",
    "ChaosStageCache",
    "CrashBudget",
    "DriftVerdict",
    "RestartBackoff",
    "SegmentationServer",
    "SegmentationService",
    "ServeClient",
    "ServeError",
    "ServeResponse",
    "ServiceConfig",
    "Supervisor",
    "SupervisorConfig",
    "WrapperRegistry",
    "load_chaos_plan",
    "payload_from_pages",
    "payload_from_sample",
    "run_worker",
    "supports_reuse_port",
    "wrapped_page_quality",
]

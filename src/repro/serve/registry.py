"""Per-site wrapper cache for the online segmentation service.

The service's economics rest on one asymmetry: the full pipeline
(template induction + detail matching + segmentation) costs seconds
per site, while applying an already-induced
:class:`~repro.wrapper.induce.RowWrapper` costs milliseconds.  The
:class:`WrapperRegistry` is the ledger of that asymmetry — a
thread-safe map ``(site, method) -> RowWrapper`` with two tiers:

* **memory** — a plain dict behind one lock; every live request that
  hits it skips the pipeline entirely;
* **disk** (optional) — a content-addressed
  :class:`~repro.runner.cache.StageCache` under the ``"wrapper"``
  stage, so a restarted server warms up from its predecessor's work.
  Wrappers cross the disk boundary in their JSON-safe
  :func:`~repro.wrapper.serialize.wrapper_to_dict` form, so a stale
  pickle of a renamed class can never resurrect; a malformed entry is
  treated as a miss.

Lookups and stores are booked into ``serve.registry.*`` counters
(memory hits / disk hits / misses / stores / invalidations, plus
``load_errors``/``store_errors`` when the disk tier itself fails — a
broken disk degrades the registry to memory-only, it never takes a
request down).
"""

from __future__ import annotations

import threading

from repro.obs import Observability, current as current_obs
from repro.runner.cache import StageCache, fingerprint
from repro.wrapper.induce import RowWrapper
from repro.wrapper.serialize import (
    WrapperFormatError,
    wrapper_from_dict,
    wrapper_to_dict,
)

__all__ = ["WrapperRegistry"]

#: StageCache stage name wrappers are stored under.
WRAPPER_STAGE = "wrapper"


class WrapperRegistry:
    """Two-tier (memory + optional disk) cache of induced wrappers.

    Args:
        cache: disk tier; any :class:`StageCache`-shaped object with
            ``load``/``store`` (None = memory only).
        obs: observability bundle for ``serve.registry.*`` counters
            (defaults to the installed bundle).
    """

    def __init__(
        self,
        cache: StageCache | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.cache = cache
        self.obs = obs if obs is not None else current_obs()
        self._lock = threading.Lock()
        self._wrappers: dict[tuple[str, str], RowWrapper] = {}

    @staticmethod
    def _key(site_id: str, method: str) -> str:
        return fingerprint("wrapper", site_id, method)

    def __len__(self) -> int:
        with self._lock:
            return len(self._wrappers)

    def sites(self) -> list[str]:
        """Site ids currently cached in memory, sorted."""
        with self._lock:
            return sorted({site for site, _ in self._wrappers})

    def get(self, site_id: str, method: str) -> RowWrapper | None:
        """The cached wrapper for ``(site_id, method)``, or None.

        Checks memory first, then the disk tier; a disk hit is
        promoted into memory.
        """
        with self._lock:
            wrapper = self._wrappers.get((site_id, method))
        if wrapper is not None:
            self.obs.counter("serve.registry.memory_hits").inc()
            return wrapper
        if self.cache is not None:
            try:
                found, data = self.cache.load(
                    WRAPPER_STAGE, self._key(site_id, method)
                )
            except OSError:
                # A failing disk tier degrades to a cold one.
                self.obs.counter("serve.registry.load_errors").inc()
                found, data = False, None
            if found:
                try:
                    wrapper = wrapper_from_dict(data)
                except WrapperFormatError:
                    wrapper = None
            if wrapper is not None:
                self.obs.counter("serve.registry.disk_hits").inc()
                with self._lock:
                    self._wrappers[(site_id, method)] = wrapper
                return wrapper
        self.obs.counter("serve.registry.misses").inc()
        return None

    def put(self, site_id: str, method: str, wrapper: RowWrapper) -> None:
        """Cache ``wrapper`` in memory and, when wired, on disk.

        A disk-tier write failure (full disk, dead mount) is absorbed:
        the memory tier still answers this process's traffic, only the
        crash-survivability of the entry is lost.
        """
        with self._lock:
            self._wrappers[(site_id, method)] = wrapper
        if self.cache is not None:
            try:
                self.cache.store(
                    WRAPPER_STAGE,
                    self._key(site_id, method),
                    wrapper_to_dict(wrapper),
                )
            except OSError:
                self.obs.counter("serve.registry.store_errors").inc()
        self.obs.counter("serve.registry.stores").inc()

    def invalidate(
        self, site_id: str, method: str, *, disk: bool = False
    ) -> bool:
        """Drop the memory entry — and, with ``disk=True``, the disk one.

        Returns whether any entry (either tier) was dropped.  Two
        callers, two needs:

        * drift detection passes the default ``disk=False``: the stale
          wrapper must not serve another request even if re-induction
          fails, but the disk history is still the best warm-up a
          restarted server has;
        * lifecycle invalidation (the site's *template* changed
          upstream, see :mod:`repro.lifecycle`) passes ``disk=True``:
          a wrapper induced from a dead template must not resurrect in
          any process, so the disk entry is deleted too (booked as
          ``serve.registry.disk_invalidations``).
        """
        with self._lock:
            present = self._wrappers.pop((site_id, method), None) is not None
        if present:
            self.obs.counter("serve.registry.invalidations").inc()
        dropped_disk = False
        if disk and self.cache is not None:
            delete = getattr(self.cache, "delete", None)
            if delete is not None:
                try:
                    dropped_disk = bool(
                        delete(WRAPPER_STAGE, self._key(site_id, method))
                    )
                except OSError:
                    self.obs.counter("serve.registry.store_errors").inc()
            if dropped_disk:
                self.obs.counter("serve.registry.disk_invalidations").inc()
        return present or dropped_disk

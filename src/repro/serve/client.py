"""Minimal stdlib client for the segmentation service.

Used by the tests, the CI smoke job (``tools/serve_smoke.py``) and the
serving benchmark — anything that needs to talk to a running ``repro
serve`` without pulling in an HTTP library.  Every call returns a
:class:`ServeResponse` (status + parsed JSON + headers); HTTP error
statuses are returned, not raised, because callers routinely *assert
on* 429/503/504.  Only transport-level failures (connection refused,
socket timeout) raise, as :class:`urllib.error.URLError`.

Building a payload from pages on disk::

    from repro.webdoc.store import load_sample
    from repro.serve.client import ServeClient, payload_from_sample

    client = ServeClient("http://127.0.0.1:8080")
    sample = load_sample("./corpus/lee")
    response = client.segment(payload_from_sample(sample))
    assert response.status == 200 and response.body["path"] in (
        "pipeline", "wrapper"
    )
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any

from repro.webdoc.page import Page
from repro.webdoc.store import PageSample

__all__ = [
    "ServeClient",
    "ServeResponse",
    "payload_from_pages",
    "payload_from_sample",
]


@dataclass(frozen=True)
class ServeResponse:
    """One HTTP exchange, reduced to what tests assert on."""

    status: int
    body: Any
    headers: dict[str, str]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def payload_from_pages(
    site: str,
    list_pages: list[Page],
    detail_pages_per_list: list[list[Page]],
    method: str | None = None,
) -> dict[str, Any]:
    """A ``/v1/segment`` payload from in-memory pages."""
    payload: dict[str, Any] = {
        "site": site,
        "pages": [
            {
                "url": list_page.url,
                "list": list_page.html,
                "details": [page.html for page in details],
            }
            for list_page, details in zip(list_pages, detail_pages_per_list)
        ],
    }
    if method is not None:
        payload["method"] = method
    return payload


def payload_from_sample(
    sample: PageSample, method: str | None = None
) -> dict[str, Any]:
    """A ``/v1/segment`` payload from a loaded sample directory."""
    return payload_from_pages(
        sample.name, sample.list_pages, sample.detail_pages_per_list, method
    )


class ServeClient:
    """Talk to one ``repro serve`` instance.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8080"`` (no trailing slash).
        timeout_s: socket timeout per request.
    """

    def __init__(self, base_url: str, timeout_s: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(
        self, path: str, body: dict[str, Any] | None = None
    ) -> ServeResponse:
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as raw:
                return ServeResponse(
                    status=raw.status,
                    body=json.loads(raw.read().decode("utf-8")),
                    headers=dict(raw.headers.items()),
                )
        except urllib.error.HTTPError as error:
            payload = error.read().decode("utf-8", errors="replace")
            try:
                parsed = json.loads(payload)
            except json.JSONDecodeError:
                parsed = {"error": payload}
            return ServeResponse(
                status=error.code,
                body=parsed,
                headers=dict(error.headers.items()),
            )

    def segment(self, payload: dict[str, Any]) -> ServeResponse:
        """``POST /v1/segment``."""
        return self._request("/v1/segment", body=payload)

    def sleep(self, seconds: float) -> ServeResponse:
        """Submit the worker-holding test hook (queue saturation)."""
        return self._request("/v1/segment", body={"_sleep": seconds})

    def healthz(self) -> ServeResponse:
        """``GET /healthz``."""
        return self._request("/healthz")

    def metricz(self) -> ServeResponse:
        """``GET /metricz``."""
        return self._request("/metricz")

"""Minimal stdlib client for the segmentation service.

Used by the tests, the CI smoke job (``tools/serve_smoke.py``) and the
serving benchmarks — anything that needs to talk to a running ``repro
serve`` without pulling in an HTTP library.  Every call returns a
:class:`ServeResponse` (status + parsed JSON + headers); HTTP error
statuses are returned, not raised, because callers routinely *assert
on* 429/503/504.  Only transport-level failures (connection refused,
socket timeout) raise, as :class:`urllib.error.URLError`.

With ``max_retries > 0`` the client absorbs the transient failures a
supervised multi-process server exhibits: 429 (queue full) and 503
(worker draining) responses, and connection resets (a worker
SIGKILLed mid-request, its replacement still binding).  Retries are
bounded, honor the server's ``Retry-After`` hint, and back off
exponentially with *seeded* jitter — the delay sequence is a pure
function of ``(retry_seed, path, attempt)`` via the same SHA-256 draw
the fault plans use, so a retry storm in a test or benchmark replays
identically.  The default ``max_retries=0`` preserves the historical
return-the-429 behavior the capacity tests assert on.

Building a payload from pages on disk::

    from repro.webdoc.store import load_sample
    from repro.serve.client import ServeClient, payload_from_sample

    client = ServeClient("http://127.0.0.1:8080", max_retries=3)
    sample = load_sample("./corpus/lee")
    response = client.segment(payload_from_sample(sample))
    assert response.status == 200 and response.body["path"] in (
        "pipeline", "wrapper"
    )
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any

from repro.sitegen.faults import stable_unit
from repro.webdoc.page import Page
from repro.webdoc.store import PageSample

__all__ = [
    "ServeClient",
    "ServeResponse",
    "payload_from_pages",
    "payload_from_sample",
]

#: HTTP statuses worth retrying: shed load (429) and draining (503).
RETRY_STATUSES = frozenset({429, 503})


@dataclass(frozen=True)
class ServeResponse:
    """One HTTP exchange, reduced to what tests assert on."""

    status: int
    body: Any
    headers: dict[str, str]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def payload_from_pages(
    site: str,
    list_pages: list[Page],
    detail_pages_per_list: list[list[Page]],
    method: str | None = None,
) -> dict[str, Any]:
    """A ``/v1/segment`` payload from in-memory pages."""
    payload: dict[str, Any] = {
        "site": site,
        "pages": [
            {
                "url": list_page.url,
                "list": list_page.html,
                "details": [page.html for page in details],
            }
            for list_page, details in zip(list_pages, detail_pages_per_list)
        ],
    }
    if method is not None:
        payload["method"] = method
    return payload


def payload_from_sample(
    sample: PageSample, method: str | None = None
) -> dict[str, Any]:
    """A ``/v1/segment`` payload from a loaded sample directory."""
    return payload_from_pages(
        sample.name, sample.list_pages, sample.detail_pages_per_list, method
    )


class ServeClient:
    """Talk to one ``repro serve`` instance.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8080"`` (no trailing slash).
        timeout_s: socket timeout per request.
        max_retries: extra attempts on 429/503 or a transport failure
            (0 = never retry, the historical behavior).
        retry_base_s: first backoff delay; doubles per attempt.
        retry_max_s: backoff (and honored Retry-After) ceiling.
        retry_seed: seed of the deterministic jitter draw.

    Attributes:
        retries: total retries this client has performed.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 60.0,
        max_retries: int = 0,
        retry_base_s: float = 0.05,
        retry_max_s: float = 2.0,
        retry_seed: int = 0,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.retry_base_s = retry_base_s
        self.retry_max_s = retry_max_s
        self.retry_seed = retry_seed
        self.retries = 0

    def retry_delay(
        self, path: str, attempt: int, retry_after: str | None = None
    ) -> float:
        """The backoff before retry ``attempt`` (deterministic).

        Exponential from ``retry_base_s``, raised to the server's
        ``Retry-After`` hint when one was sent, capped at
        ``retry_max_s``, then jittered into [0.5x, 1.5x) by a draw
        that is a pure function of ``(retry_seed, path, attempt)``.
        """
        delay = min(self.retry_base_s * (2 ** attempt), self.retry_max_s)
        if retry_after is not None:
            try:
                hinted = float(retry_after)
            except ValueError:
                hinted = 0.0
            delay = min(max(delay, hinted), self.retry_max_s)
        jitter = stable_unit(f"{self.retry_seed}:{path}:{attempt}")
        return delay * (0.5 + jitter)

    def _request(
        self, path: str, body: dict[str, Any] | None = None
    ) -> ServeResponse:
        attempt = 0
        while True:
            try:
                response = self._exchange(path, body)
            except (
                urllib.error.URLError,
                ConnectionError,
                http.client.HTTPException,
            ):
                # A worker died mid-exchange or nothing is listening
                # yet; both heal under a supervisor — worth retrying.
                if attempt >= self.max_retries:
                    raise
                delay = self.retry_delay(path, attempt)
            else:
                if (
                    response.status not in RETRY_STATUSES
                    or attempt >= self.max_retries
                ):
                    return response
                delay = self.retry_delay(
                    path, attempt, response.headers.get("Retry-After")
                )
            self.retries += 1
            attempt += 1
            if delay > 0:
                time.sleep(delay)

    def _exchange(
        self, path: str, body: dict[str, Any] | None = None
    ) -> ServeResponse:
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as raw:
                return ServeResponse(
                    status=raw.status,
                    body=json.loads(raw.read().decode("utf-8")),
                    headers=dict(raw.headers.items()),
                )
        except urllib.error.HTTPError as error:
            payload = error.read().decode("utf-8", errors="replace")
            try:
                parsed = json.loads(payload)
            except json.JSONDecodeError:
                parsed = {"error": payload}
            return ServeResponse(
                status=error.code,
                body=parsed,
                headers=dict(error.headers.items()),
            )

    def segment(self, payload: dict[str, Any]) -> ServeResponse:
        """``POST /v1/segment``."""
        return self._request("/v1/segment", body=payload)

    def sleep(self, seconds: float) -> ServeResponse:
        """Submit the worker-holding test hook (queue saturation)."""
        return self._request("/v1/segment", body={"_sleep": seconds})

    def query(
        self, keywords: list[str] | str, limit: int | None = None
    ) -> ServeResponse:
        """``GET /query`` — column-keyword query over the server's store."""
        import urllib.parse

        if isinstance(keywords, str):
            keywords = [keywords]
        params = [("kw", keyword) for keyword in keywords]
        if limit is not None:
            params.append(("limit", str(limit)))
        return self._request("/query?" + urllib.parse.urlencode(params))

    def healthz(self) -> ServeResponse:
        """``GET /healthz``."""
        return self._request("/healthz")

    def metricz(self) -> ServeResponse:
        """``GET /metricz``."""
        return self._request("/metricz")

"""Multi-process supervision for the serving layer.

One :class:`~repro.serve.http.SegmentationServer` process is a single
point of failure: a segfault, an OOM kill, or a wedged wrapper takes
every in-flight request and the whole endpoint with it.  The
:class:`Supervisor` is the crash-only answer — a small parent process
whose *only* jobs are holding the port and keeping N workers alive:

* **the port outlives any worker** — the parent binds the listening
  address with ``SO_REUSEPORT`` but never calls ``listen()``; it
  merely reserves (and, for port 0, resolves) the port.  Each worker
  process binds the same address with ``SO_REUSEPORT`` and listens,
  so the kernel spreads connections across live workers and a dead
  worker's share reroutes on its next SYN;
* **heartbeat pipes** — each worker inherits a pipe fd and writes a
  byte every ``heartbeat_interval_s``; a worker silent past
  ``heartbeat_timeout_s`` is presumed wedged, SIGKILLed and reaped
  (``serve.supervisor.heartbeat_timeouts``), exactly like one that
  exited on its own;
* **self-healing restarts** — a reaped worker is respawned with
  exponential backoff (:class:`RestartBackoff`; stable uptime resets
  the streak) under a rolling-window crash budget
  (:class:`CrashBudget`).  Exhausting the budget means the fleet is
  beyond saving: the supervisor broadcasts ``degraded`` (surviving
  workers report it on ``/healthz``), waits ``degraded_grace_s`` so
  load balancers can see it, drains everyone, and exits non-zero;
* **a control pipe per worker** — the worker's stdin carries JSON
  lines from the parent: periodic ``serve.supervisor.*`` metric
  snapshots (folded into the worker's ``/metricz``, so the fleet's
  restart history is observable from any worker) and state changes
  (``degraded``).  EOF on the pipe means the supervisor died — the
  worker drains itself rather than becoming an orphan;
* **rolling drain** — SIGTERM/SIGINT drains workers *one at a time*
  (each finishes its queue under PR 4's 429/504 semantics and exits
  0), so the endpoint keeps answering until the last worker is gone;
  the supervisor then exits 0.

Worker-side hardening lives in :func:`run_worker`: the per-request
``CrawlBudget`` deadline and hung-handler watchdog from
:mod:`repro.serve.http`, an optional ``resource.setrlimit`` memory
ceiling (an allocation beyond it raises ``MemoryError`` in one
request, or at worst kills the one worker — never the fleet), and the
seeded chaos harness (:mod:`repro.serve.chaos`) when a plan is given.
The shared crash-survivable state is the wrapper registry's *disk*
tier: every worker points at one ``--wrapper-cache-dir``, so a
restarted worker warms from its predecessors' induced wrappers and
answers byte-identically to a never-crashed run.

CLI: ``repro serve --procs 4 --crash-budget 8 --wrapper-cache-dir
./wrappers``; see ``docs/serving.md``.
"""

from __future__ import annotations

import io
import json
import os
import select
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.exceptions import ConfigError
from repro.obs import MetricsRegistry

__all__ = [
    "CrashBudget",
    "RestartBackoff",
    "Supervisor",
    "SupervisorConfig",
    "WorkerSpawn",
    "apply_memory_limit",
    "run_worker",
    "supports_reuse_port",
]


def supports_reuse_port() -> bool:
    """Whether this platform can share one port across processes."""
    return hasattr(socket, "SO_REUSEPORT")


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the supervision loop.

    Attributes:
        procs: worker-process count.
        crash_budget: crashes tolerated per rolling window; one more
            and the supervisor drains and exits non-zero.
        crash_window_s: the rolling window those crashes are counted
            over.
        backoff_base_s: first restart delay after a crash; doubles per
            consecutive crash up to ``backoff_max_s``.
        backoff_max_s: restart-delay ceiling.
        backoff_reset_s: a worker that stayed up this long resets its
            consecutive-crash streak.
        heartbeat_interval_s: how often workers write a heartbeat byte.
        heartbeat_timeout_s: silence past this means wedged: SIGKILL.
        poll_interval_s: supervision-loop tick (select timeout).
        broadcast_interval_s: how often the metrics snapshot is pushed
            down the control pipes.
        degraded_grace_s: how long workers advertise ``degraded`` on
            ``/healthz`` before the budget-exhausted drain begins.
        drain_grace_s: total budget for the rolling SIGTERM drain;
            stragglers past it are killed.
    """

    procs: int = 2
    crash_budget: int = 8
    crash_window_s: float = 60.0
    backoff_base_s: float = 0.1
    backoff_max_s: float = 5.0
    backoff_reset_s: float = 30.0
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 10.0
    poll_interval_s: float = 0.05
    broadcast_interval_s: float = 0.5
    degraded_grace_s: float = 1.0
    drain_grace_s: float = 15.0

    def __post_init__(self) -> None:
        if self.procs < 1:
            raise ConfigError(f"procs must be >= 1, got {self.procs}")
        if self.crash_budget < 0:
            raise ConfigError("crash_budget must be >= 0")
        positives = {
            "crash_window_s": self.crash_window_s,
            "backoff_base_s": self.backoff_base_s,
            "backoff_max_s": self.backoff_max_s,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "heartbeat_timeout_s": self.heartbeat_timeout_s,
            "poll_interval_s": self.poll_interval_s,
            "broadcast_interval_s": self.broadcast_interval_s,
            "drain_grace_s": self.drain_grace_s,
        }
        for name, value in positives.items():
            if value <= 0:
                raise ConfigError(f"{name} must be > 0, got {value}")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ConfigError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s"
            )
        if self.degraded_grace_s < 0 or self.backoff_reset_s < 0:
            raise ConfigError(
                "degraded_grace_s and backoff_reset_s must be >= 0"
            )


class RestartBackoff:
    """Exponential restart delays that reset after stable uptime.

    Pure bookkeeping over caller-supplied uptimes — no clock inside —
    so it is unit-testable without sleeping.
    """

    def __init__(self, base_s: float, max_s: float, reset_s: float) -> None:
        self.base_s = base_s
        self.max_s = max_s
        self.reset_s = reset_s
        self._consecutive = 0

    @property
    def consecutive(self) -> int:
        """Crashes in the current streak."""
        return self._consecutive

    def next_delay(self, uptime_s: float) -> float:
        """The delay before the next restart, given the crashed
        worker's uptime.  A long-enough uptime forgives the streak."""
        if uptime_s >= self.reset_s:
            self._consecutive = 0
        self._consecutive += 1
        return min(self.base_s * (2 ** (self._consecutive - 1)), self.max_s)


class CrashBudget:
    """K crashes per rolling window; one more means give up.

    Takes explicit ``now`` values (no clock inside) so tests drive it
    with manual time.
    """

    def __init__(self, budget: int, window_s: float) -> None:
        self.budget = budget
        self.window_s = window_s
        self._crashes: deque[float] = deque()

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        while self._crashes and self._crashes[0] <= horizon:
            self._crashes.popleft()

    def record(self, now: float) -> None:
        """Book one crash at time ``now``."""
        self._crashes.append(now)
        self._prune(now)

    def count(self, now: float) -> int:
        """Crashes currently inside the window."""
        self._prune(now)
        return len(self._crashes)

    def exhausted(self, now: float) -> bool:
        """Whether the window holds more crashes than the budget."""
        return self.count(now) > self.budget


@dataclass(frozen=True)
class WorkerSpawn:
    """What a worker-command builder needs to know about one spawn."""

    index: int
    generation: int
    port: int
    heartbeat_fd: int
    heartbeat_interval_s: float


class _Slot:
    """One worker position: a live process or a pending restart."""

    def __init__(self, index: int, config: SupervisorConfig) -> None:
        self.index = index
        self.generation = 0
        self.process: subprocess.Popen | None = None
        self.hb_fd: int | None = None
        self.last_beat = 0.0
        self.started_at = 0.0
        self.restart_at: float | None = None
        self.backoff = RestartBackoff(
            config.backoff_base_s,
            config.backoff_max_s,
            config.backoff_reset_s,
        )


class Supervisor:
    """Keep N serving workers alive behind one shared port.

    Args:
        worker_command: builds the argv for one worker from a
            :class:`WorkerSpawn` (the CLI builds ``python -m repro
            serve`` invocations; tests substitute tiny scripts).
        config: supervision knobs.
        host: bind address.
        port: bind port (0 = ephemeral; resolved at :meth:`bind`).
        metrics: the ``serve.supervisor.*`` registry (created if
            omitted); snapshots are broadcast to workers.
        out: progress stream (worker spawn/reap lines; None = silent).
    """

    def __init__(
        self,
        worker_command: Callable[[WorkerSpawn], list[str]],
        config: SupervisorConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        metrics: MetricsRegistry | None = None,
        out=None,
    ) -> None:
        self.worker_command = worker_command
        self.config = config or SupervisorConfig()
        self.host = host
        self._requested_port = port
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.out = out
        self.port: int | None = None
        self._socket: socket.socket | None = None
        self._slots = [_Slot(i, self.config) for i in range(self.config.procs)]
        self._budget = CrashBudget(
            self.config.crash_budget, self.config.crash_window_s
        )
        self._stop = threading.Event()
        self._budget_exhausted = False

    # -- facts ---------------------------------------------------------------

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def live_workers(self) -> int:
        return sum(
            1
            for slot in self._slots
            if slot.process is not None and slot.process.poll() is None
        )

    def _say(self, message: str) -> None:
        if self.out is not None:
            print(message, file=self.out, flush=True)

    # -- socket --------------------------------------------------------------

    def bind(self) -> int:
        """Reserve (and resolve) the shared port; returns it.

        The socket is bound with ``SO_REUSEPORT`` but never listens:
        holding it keeps the port across every worker crash and lets
        the workers bind the same address.
        """
        if not supports_reuse_port():
            raise ConfigError(
                "multi-process serving needs SO_REUSEPORT, which this "
                "platform lacks; run with --procs 1"
            )
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, self._requested_port))
        except BaseException:
            sock.close()
            raise
        self._socket = sock
        self.port = sock.getsockname()[1]
        return self.port

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, slot: _Slot) -> None:
        read_fd, write_fd = os.pipe()
        os.set_blocking(read_fd, False)
        spawn = WorkerSpawn(
            index=slot.index,
            generation=slot.generation,
            port=self.port,
            heartbeat_fd=write_fd,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
        )
        try:
            process = subprocess.Popen(
                self.worker_command(spawn),
                stdin=subprocess.PIPE,
                pass_fds=(write_fd,),
            )
        except BaseException:
            os.close(read_fd)
            os.close(write_fd)
            raise
        os.close(write_fd)
        slot.process = process
        slot.hb_fd = read_fd
        slot.last_beat = slot.started_at = time.monotonic()
        slot.restart_at = None
        self.metrics.counter("serve.supervisor.spawns").inc()
        self._send(slot, self._metrics_message())
        self._say(
            f"worker {slot.index} spawned pid={process.pid} "
            f"generation={slot.generation}"
        )

    def _close_worker_fds(self, slot: _Slot) -> None:
        if slot.hb_fd is not None:
            try:
                os.close(slot.hb_fd)
            except OSError:
                pass
            slot.hb_fd = None
        process = slot.process
        if process is not None and process.stdin is not None:
            try:
                process.stdin.close()
            except OSError:
                pass

    def _reap(self, slot: _Slot, now: float, reason: str) -> None:
        self._close_worker_fds(slot)
        slot.process = None
        self.metrics.counter("serve.supervisor.reaps").inc()
        self._budget.record(now)
        if self._budget.exhausted(now):
            self._budget_exhausted = True
            self.metrics.counter(
                "serve.supervisor.crash_budget_exhausted"
            ).inc()
            self._say(
                f"worker {slot.index} {reason}; crash budget exhausted "
                f"({self._budget.count(now)} crashes in "
                f"{self.config.crash_window_s:.0f}s)"
            )
            return
        delay = slot.backoff.next_delay(uptime_s=now - slot.started_at)
        slot.restart_at = now + delay
        self._say(f"worker {slot.index} {reason}; restart in {delay:.2f}s")

    def _pump_heartbeats(self) -> None:
        fds = [slot.hb_fd for slot in self._slots if slot.hb_fd is not None]
        if not fds:
            time.sleep(self.config.poll_interval_s)
            return
        try:
            readable, _, _ = select.select(
                fds, [], [], self.config.poll_interval_s
            )
        except OSError:
            return
        if not readable:
            return
        now = time.monotonic()
        by_fd = {slot.hb_fd: slot for slot in self._slots}
        for fd in readable:
            try:
                data = os.read(fd, 4096)
            except (OSError, BlockingIOError):
                continue
            if data:
                by_fd[fd].last_beat = now
            # EOF means the worker died; _check_worker reaps it.

    def _check_worker(self, slot: _Slot, now: float) -> None:
        process = slot.process
        assert process is not None
        returncode = process.poll()
        if returncode is not None:
            self._reap(slot, now, f"exited with code {returncode}")
            return
        age = now - slot.last_beat
        self.metrics.histogram(
            "serve.supervisor.heartbeat_age.seconds"
        ).observe(age)
        if age >= self.config.heartbeat_timeout_s:
            self.metrics.counter("serve.supervisor.heartbeat_timeouts").inc()
            process.kill()
            process.wait()
            self._reap(slot, now, f"heartbeat silent for {age:.1f}s")

    # -- control pipe --------------------------------------------------------

    def _metrics_message(self) -> dict[str, Any]:
        return {"type": "supervisor_metrics", "metrics": self.metrics.as_dict()}

    def _send(self, slot: _Slot, message: dict[str, Any]) -> None:
        process = slot.process
        if process is None or process.stdin is None:
            return
        try:
            process.stdin.write(json.dumps(message).encode() + b"\n")
            process.stdin.flush()
        except (BrokenPipeError, OSError, ValueError):
            pass  # the worker died mid-write; the reap path handles it

    def _broadcast(self, message: dict[str, Any]) -> None:
        for slot in self._slots:
            self._send(slot, message)

    # -- the loop ------------------------------------------------------------

    def stop(self) -> None:
        """Ask :meth:`run` to drain and return (signal/thread-safe)."""
        self._stop.set()

    def run(self, install_signals: bool = True) -> int:
        """Supervise until SIGTERM/SIGINT (exit 0) or crash-budget
        exhaustion (exit 1)."""
        config = self.config
        if self.port is None:
            self.bind()
        if install_signals:

            def _on_signal(signum: int, frame: Any) -> None:
                self._stop.set()

            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        self._say(f"listening on {self.address}")
        self._say(f"supervising {config.procs} workers")
        exit_code = 0
        try:
            for slot in self._slots:
                self._spawn(slot)
            last_broadcast = time.monotonic()
            while not self._stop.is_set():
                self._pump_heartbeats()
                now = time.monotonic()
                for slot in self._slots:
                    if slot.process is not None:
                        self._check_worker(slot, now)
                    elif (
                        slot.restart_at is not None and now >= slot.restart_at
                    ):
                        slot.generation += 1
                        self.metrics.counter("serve.supervisor.restarts").inc()
                        self._spawn(slot)
                if self._budget_exhausted:
                    exit_code = 1
                    break
                if now - last_broadcast >= config.broadcast_interval_s:
                    self._broadcast(self._metrics_message())
                    last_broadcast = now
            if exit_code != 0:
                # Give load balancers a window to see the degradation
                # on /healthz before the fleet goes away.
                self._say("crash budget exhausted; degrading then draining")
                self._broadcast({"type": "state", "status": "degraded"})
                self._broadcast(self._metrics_message())
                time.sleep(config.degraded_grace_s)
        finally:
            self._drain()
            self._close()
        self._say("stopped")
        return exit_code

    # -- teardown ------------------------------------------------------------

    def _drain(self) -> None:
        """Rolling SIGTERM drain: one worker at a time, stragglers
        killed at the grace deadline."""
        deadline = time.monotonic() + self.config.drain_grace_s
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            if process.poll() is None:
                self._say(f"draining worker {slot.index}")
                try:
                    process.send_signal(signal.SIGTERM)
                except OSError:
                    pass
                try:
                    process.wait(
                        timeout=max(deadline - time.monotonic(), 0.1)
                    )
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
            self._close_worker_fds(slot)
            slot.process = None

    def _close(self) -> None:
        if self._socket is not None:
            self._socket.close()
            self._socket = None


# -- worker side -------------------------------------------------------------


def apply_memory_limit(mem_limit_mb: int | None) -> bool:
    """Cap this process's address space; returns whether it stuck.

    Uses ``resource.setrlimit(RLIMIT_AS)`` where available (Unix); a
    worker that allocates past the cap gets a ``MemoryError`` in one
    request — or at worst dies alone and is restarted — instead of
    dragging the host into swap.
    """
    if not mem_limit_mb:
        return False
    try:
        import resource
    except ImportError:  # non-Unix
        return False
    limit = int(mem_limit_mb) * 1024 * 1024
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ValueError, OSError):
        return False
    return True


def _heartbeat_loop(fd: int, interval_s: float) -> None:
    while True:
        try:
            os.write(fd, b".")
        except OSError:
            return  # the supervisor is gone; run()'s EOF path drains us
        time.sleep(interval_s)


def _control_lines(stream):
    """Yield lines from a raw (unbuffered) byte stream until EOF."""
    buffer = b""
    while True:
        try:
            chunk = stream.read(4096)
        except OSError:
            return
        if not chunk:
            if buffer:
                yield buffer
            return
        buffer += chunk
        while b"\n" in buffer:
            line, buffer = buffer.split(b"\n", 1)
            yield line


def _control_loop(server, stream) -> None:
    """Apply the supervisor's JSON-line control messages to ``server``."""
    for line in _control_lines(stream):
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue
        kind = message.get("type") if isinstance(message, dict) else None
        if kind == "supervisor_metrics":
            server.external_metrics = message.get("metrics") or {}
        elif kind == "state":
            server.external_status = message.get("status")
    # EOF: the supervisor died or is draining us; never outlive it.
    server.request_stop()


def run_worker(
    service_config,
    host: str,
    port: int,
    heartbeat_fd: int | None = None,
    heartbeat_interval_s: float = 0.25,
    worker_index: int = 0,
    generation: int = 0,
    chaos_plan=None,
    mem_limit_mb: int | None = None,
    out=None,
) -> int:
    """One supervised worker process's main (the hidden CLI path).

    Binds the shared port with ``SO_REUSEPORT``, applies the memory
    ceiling, installs the chaos harness when a plan is given, starts
    the heartbeat and control-pipe threads, and runs the ordinary
    :meth:`SegmentationServer.run` loop — so SIGTERM drain semantics
    are exactly the single-process ones.
    """
    from repro.serve.http import SegmentationServer
    from repro.serve.service import SegmentationService

    apply_memory_limit(mem_limit_mb)
    service = SegmentationService(service_config)
    server = SegmentationServer(service, host=host, port=port, reuse_port=True)
    if chaos_plan is not None:
        from repro.serve.chaos import ChaosInjector, ChaosStageCache

        injector = ChaosInjector(
            chaos_plan, worker_index, generation, metrics=service.metrics
        )
        server.request_hook = injector.on_request
        if service.registry.cache is not None:
            service.registry.cache = ChaosStageCache(
                service.registry.cache,
                chaos_plan,
                worker_index,
                generation,
                metrics=service.metrics,
            )
    if heartbeat_fd is not None:
        threading.Thread(
            target=_heartbeat_loop,
            args=(heartbeat_fd, heartbeat_interval_s),
            name="serve-heartbeat",
            daemon=True,
        ).start()
        # Read the control pipe *unbuffered*: a daemon thread blocked
        # inside sys.stdin.buffer would hold its lock at interpreter
        # shutdown and abort the whole process.
        control = io.FileIO(sys.stdin.fileno(), "r", closefd=False)
        threading.Thread(
            target=_control_loop,
            args=(server, control),
            name="serve-control",
            daemon=True,
        ).start()
    return server.run(out=out, install_signals=True)

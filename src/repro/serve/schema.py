"""Wire shapes shared by the online service and the batch CLI.

One serialization vocabulary for segmentation output, used by three
consumers so they cannot drift apart:

* the service's ``POST /v1/segment`` responses
  (:mod:`repro.serve.service`);
* ``repro segment --json`` (one :class:`~repro.core.pipeline.SiteRun`
  summarized by :func:`site_run_summary`);
* ``repro segment-dir --json`` (a batch result summarized by
  :func:`batch_summary`).

Records are rendered as ``{"texts": [...], "columns": [...]}`` dicts
— the same shape whether they came from a full pipeline run
(:func:`segmentation_records`) or from a cached wrapper
(:func:`wrapped_row_records`) — which is what lets the end-to-end
service test assert byte-identical records across the cold and warm
paths.

Payload parsing for the service lives here too
(:func:`pages_from_payload`): the request schema mirrors the
``sample.json`` manifest of :mod:`repro.webdoc.store`, with inline
HTML instead of file references::

    {
      "site": "lee",
      "method": "prob",                # optional, server default else
      "pages": [
        {"list": "<html>...", "details": ["<html>...", ...]},
        ...
      ]
    }
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.pipeline import SiteRun
from repro.core.results import Segmentation
from repro.webdoc.page import Page
from repro.wrapper.apply import WrappedRow

__all__ = [
    "PayloadError",
    "batch_summary",
    "pages_from_payload",
    "run_page_summaries",
    "segmentation_records",
    "site_run_summary",
    "wrapped_row_records",
]


class PayloadError(ValueError):
    """A request payload does not match the schema (maps to HTTP 400)."""


def segmentation_records(segmentation: Segmentation) -> list[dict[str, Any]]:
    """Pipeline records as wire dicts (assigned + attached texts)."""
    records = []
    for record in segmentation.records:
        columns = None
        if record.columns is not None:
            columns = [
                record.columns[observation.seq]
                for observation in record.observations
                if observation.seq in record.columns
            ]
        records.append({"texts": record.full_texts, "columns": columns})
    return records


def wrapped_row_records(rows: Sequence[WrappedRow]) -> list[dict[str, Any]]:
    """Wrapper-extracted rows as wire dicts (same shape as pipeline)."""
    return [{"texts": row.texts, "columns": list(row.columns)} for row in rows]


def run_page_summaries(
    run: SiteRun, timings: bool = False
) -> list[dict[str, Any]]:
    """One wire page dict per surviving list page of a ``SiteRun``.

    The single shaping of pipeline pages, shared by the service's
    ``/v1/segment`` responses, :func:`site_run_summary`, and the store
    ingester; ``timings=True`` adds the diagnostic fields the CLI
    summary carries (unassigned extracts, per-page elapsed seconds).
    """
    pages: list[dict[str, Any]] = []
    for page_run in run.pages:
        entry: dict[str, Any] = {
            "url": page_run.page.url,
            "records": segmentation_records(page_run.segmentation),
            "record_count": len(page_run.segmentation.records),
        }
        if timings:
            entry["unassigned"] = [
                observation.extract.text
                for observation in page_run.segmentation.unassigned
            ]
            entry["elapsed_s"] = round(page_run.elapsed, 6)
        pages.append(entry)
    return pages


def site_run_summary(
    run: SiteRun, elapsed_s: float | None = None
) -> dict[str, Any]:
    """JSON-ready summary of one pipeline :class:`SiteRun`."""
    summary: dict[str, Any] = {
        "method": run.method,
        "template_ok": run.template_verdict.ok,
        "whole_page_fallback": run.whole_page_fallback,
        "pages": run_page_summaries(run, timings=True),
        "record_count": sum(
            len(page_run.segmentation.records) for page_run in run.pages
        ),
    }
    if elapsed_s is not None:
        summary["elapsed_s"] = round(elapsed_s, 6)
    if run.crawl_health is not None:
        summary["crawl_health"] = run.crawl_health.as_dict()
    return summary


def batch_summary(batch: Any, method: str) -> dict[str, Any]:
    """JSON-ready summary of a :class:`~repro.runner.engine.BatchResult`."""
    sites = []
    for result in sorted(batch.results, key=lambda r: r.task_id):
        entry: dict[str, Any] = {
            "task_id": result.task_id,
            "status": result.status,
            "record_count": result.record_count,
            "duration_s": round(result.duration_s, 6),
            "pages": [
                {
                    "url": page.url,
                    # With wire entries collected (segment-dir --store)
                    # records take the structured {"texts", "columns"}
                    # shape every other consumer ships; batch workers
                    # otherwise reduce them to display strings
                    # ("r0: a | b | c") and those go out as-is.
                    "records": (
                        page.wire["records"]
                        if getattr(page, "wire", None)
                        else list(page.records)
                    ),
                    "record_count": page.record_count,
                    "unassigned": list(page.unassigned),
                    "elapsed_s": round(page.elapsed, 6),
                }
                for page in result.pages
            ],
        }
        if result.error:
            entry["error"] = result.error.strip().splitlines()[-1]
        sites.append(entry)
    summary: dict[str, Any] = {
        "method": method,
        "by_status": batch.by_status(),
        "sites": sites,
        "cache": {"hits": batch.cache_hits, "misses": batch.cache_misses},
        "skipped": len(batch.skipped),
        "interrupted": batch.interrupted,
    }
    return summary


def pages_from_payload(payload: Any) -> tuple[str, list[Page], list[list[Page]]]:
    """Parse a ``/v1/segment`` payload into pipeline inputs.

    Returns ``(site_id, list_pages, detail_pages_per_list)``.

    Raises:
        PayloadError: the payload does not match the schema.
    """
    if not isinstance(payload, dict):
        raise PayloadError("payload must be a JSON object")
    site = payload.get("site")
    if not isinstance(site, str) or not site:
        raise PayloadError('payload needs a non-empty string "site"')
    entries = payload.get("pages")
    if not isinstance(entries, list) or not entries:
        raise PayloadError('payload needs a non-empty "pages" list')
    list_pages: list[Page] = []
    details: list[list[Page]] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or "list" not in entry:
            raise PayloadError(f'pages[{index}] needs a "list" HTML string')
        html = entry["list"]
        if not isinstance(html, str):
            raise PayloadError(f"pages[{index}].list must be a string")
        url = entry.get("url") or f"{site}-list{index}.html"
        list_pages.append(Page(url=str(url), html=html, kind="list"))
        entry_details = entry.get("details", [])
        if not isinstance(entry_details, list) or not all(
            isinstance(page, str) for page in entry_details
        ):
            raise PayloadError(
                f"pages[{index}].details must be a list of HTML strings"
            )
        details.append(
            [
                Page(
                    url=f"{site}-p{index}-detail{position}.html",
                    html=page,
                    kind="detail",
                )
                for position, page in enumerate(entry_details)
            ]
        )
    return site, list_pages, details

"""Wrapper drift detection for the online segmentation service.

A cached :class:`~repro.wrapper.induce.RowWrapper` is only as good as
the site's template staying put.  When the site is redesigned — or the
cached wrapper was induced from an unlucky sample — ``apply_wrapper``
silently produces garbage: zero rows (boundary pattern gone) or rows
whose content no longer lines up with the records.  The service must
notice *without ground truth*, which the offline evaluation's
:func:`~repro.wrapper.apply.score_wrapped_rows` requires but a live
request cannot supply.

:func:`wrapped_page_quality` is the online stand-in for that score: it
exploits the one cross-check every ``/v1/segment`` request carries —
the detail pages.  Row *i* of a healthy list page links to detail page
*i*, and (paper Section 3.2) a record's list-view values reappear on
its detail page.  So the score combines

* **count agreement** — wrapped row count vs. detail page count
  (``min/max`` ratio), and
* **content agreement** — the fraction of checked rows whose extract
  texts mostly (>= ``MATCH_FRACTION``) appear verbatim in *some*
  detail page's text, mirroring ``score_wrapped_rows``'s "row text
  covers the record's values" criterion with the detail pages standing
  in for the truth rows.  Rows are matched against any detail page,
  not their index pair, because a wrapper that legitimately misses one
  boundary shifts every later index — a one-row gap must read as a
  small quality dip, not as total drift.

Both are in ``[0, 1]``; the page score is their product, so either
failure mode alone drags it down.  A healthy template scores near 1.0;
a drifted one scores near 0 (usually exactly 0, because the boundary
pattern vanishes).  The service compares the mean page score against
``ServiceConfig.drift_threshold`` and falls back to the full pipeline
— re-inducing and re-caching the wrapper — when it drops below.

The check is deliberately cheaper than it looks: template drift is
all-or-nothing (a redesign breaks *every* row), so content agreement
is judged on the first ``MAX_CONTENT_ROWS`` rows only, and detail
pages are tokenized lazily, in order, as the matching consumes them.
On a healthy page row *k* matches detail *k* (or *k±1* around a
dropped boundary), so only a handful of detail pages ever get
tokenized — which is what keeps the warm serving path an order of
magnitude cheaper than the pipeline.  A genuinely drifted page pays
for tokenizing every detail, but it is about to pay for a full
pipeline run anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.webdoc.page import Page
from repro.wrapper.apply import WrappedRow

__all__ = ["DriftVerdict", "wrapped_page_quality"]

#: Fraction of a row's extract texts that must appear on its detail
#: page for the row to count as validated.  Below 1.0 because list
#: rows carry chrome the detail page lacks (link text, row numbers)
#: and quirks may re-spell individual fields.
MATCH_FRACTION = 0.4

#: Rows content-checked per page.  Drift breaks every row at once, so
#: a prefix sample decides as reliably as the full page at a fraction
#: of the tokenization cost (see module docstring).
MAX_CONTENT_ROWS = 6


@dataclass(frozen=True)
class DriftVerdict:
    """Outcome of checking wrapper output against one request.

    Attributes:
        score: mean per-page quality in [0, 1].
        threshold: the configured fallback threshold.
    """

    score: float
    threshold: float

    @property
    def drifted(self) -> bool:
        """Should the service distrust the wrapper and fall back?"""
        return self.score < self.threshold

    def as_dict(self) -> dict:
        return {
            "score": round(self.score, 4),
            "threshold": self.threshold,
            "drifted": self.drifted,
        }


def _detail_text(page: Page) -> str:
    """The page's visible text, reconstructed like ``Extract.text``.

    Spacing must match the extracts' own rendering (``ws_before``
    flags), or healthy multi-token values would fail the substring
    test on punctuation spacing alone.
    """
    pieces: list[str] = []
    for token in page.text_tokens():
        if pieces and token.ws_before:
            pieces.append(" ")
        pieces.append(token.text)
    return "".join(pieces)


def wrapped_page_quality(
    rows: Sequence[WrappedRow], detail_pages: Sequence[Page]
) -> float:
    """Quality in [0, 1] of wrapper output for one list page.

    ``rows`` is ``apply_wrapper``'s output; ``detail_pages`` are the
    request's detail pages for the same list page, in link order.
    With no detail pages to check against, any non-empty extraction is
    trusted (score 1.0) and an empty one is not (0.0).
    """
    if not rows:
        return 0.0
    if not detail_pages:
        return 1.0
    expected = len(detail_pages)
    count_score = min(len(rows), expected) / max(len(rows), expected)

    # Detail texts materialize lazily: on a healthy page the checked
    # rows match the first few details and the rest never tokenize.
    rendered: list[str] = []
    remaining = iter(detail_pages)

    def detail_texts():
        yield from rendered
        for page in remaining:
            text = _detail_text(page)
            rendered.append(text)
            yield text

    validated = 0
    considered = 0
    for row in rows[:MAX_CONTENT_ROWS]:
        texts = [extract.text for extract in row.extracts if extract.text.strip()]
        if not texts:
            continue
        considered += 1
        needed = MATCH_FRACTION * len(texts)
        for detail_text in detail_texts():
            hits = sum(1 for text in texts if text in detail_text)
            if hits >= needed:
                validated += 1
                break
    if not considered:
        return 0.0
    return count_score * (validated / considered)

"""Observability: tracing spans, metrics, and an injectable clock.

A zero-dependency instrumentation layer threaded through the whole
pipeline (tokenize -> template -> extracts -> observations -> segment
-> relational build), the resilient crawl layer, and the CSP solvers.
It answers the question ``bench_timing.py``'s end-to-end wall clock
cannot: *which stage should the next performance PR attack?*

Three pieces, bundled by :class:`Observability`:

* :class:`~repro.obs.trace.Tracer` — nested, timed spans with
  structured attributes (`docs/observability.md` catalogues the span
  names);
* :class:`~repro.obs.metrics.MetricsRegistry` — thread-safe
  :class:`~repro.obs.metrics.Counter`/
  :class:`~repro.obs.metrics.Histogram` store with JSON export
  (WalkSAT flips, exact-solver backtracks, crawl retries, ...);
* :class:`~repro.obs.clock.Clock` — the injectable time source every
  duration is read from, so tests swap in a
  :class:`~repro.obs.clock.ManualClock` and traces become
  byte-identical across runs.

Instrumented components take an ``obs`` argument defaulting to the
*installed* bundle (:func:`current`), which is the no-op
:data:`NULL_OBS` unless something — the CLI's ``--trace`` /
``--metrics-out`` flags, the benchmark suite's session profile, a test
— :func:`install`\\ s a live one.  The disabled path allocates no span
tree and registers no metrics, so pristine runs pay near-zero
overhead.

Usage::

    from repro.obs import Observability

    obs = Observability()
    pipeline = SegmentationPipeline("csp", obs=obs)
    run = pipeline.segment_generated_site(site)
    print(obs.tracer.render())          # the span tree
    print(obs.metrics.to_json())        # counters + histograms
"""

from __future__ import annotations

from typing import Any, ContextManager

from repro.obs.clock import Clock, ManualClock, SystemClock
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    render_breakdown,
)
from repro.obs.trace import NullTracer, Span, Tracer

__all__ = [
    "Clock",
    "Counter",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "Span",
    "SystemClock",
    "Tracer",
    "NULL_OBS",
    "current",
    "install",
    "render_breakdown",
]


class Observability:
    """One tracer + one metrics registry + the clock they share.

    Args:
        clock: time source for the tracer and for components that
            measure durations directly (default
            :class:`SystemClock`; pass a :class:`ManualClock` for
            deterministic traces).
        keep_spans: retain the span tree (disable for long metric-only
            sessions such as the benchmark suite).
        tracer: pre-built tracer override (``clock``/``keep_spans``
            are then ignored for the tracer).
        metrics: pre-built registry override.
    """

    enabled = True

    def __init__(
        self,
        clock: Clock | None = None,
        keep_spans: bool = True,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.clock = clock or SystemClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(self.clock, registry=self.metrics, keep_spans=keep_spans)
        )

    # Delegation conveniences so instrumented code reads as
    # ``obs.span(...)`` / ``obs.counter(...)``.

    def span(self, name: str, **attributes: Any) -> ContextManager[Span]:
        """Open a span on the bundle's tracer."""
        return self.tracer.span(name, **attributes)

    def counter(self, name: str) -> Counter:
        """The registry counter called ``name``."""
        return self.metrics.counter(name)

    def histogram(self, name: str) -> Histogram:
        """The registry histogram called ``name``."""
        return self.metrics.histogram(name)


class _NullObservability(Observability):
    """The disabled bundle: real interface, nothing recorded."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(tracer=NullTracer(), metrics=NullRegistry())


#: The no-op bundle instrumented components fall back to.
NULL_OBS: Observability = _NullObservability()

_installed: Observability = NULL_OBS


def current() -> Observability:
    """The installed default bundle (:data:`NULL_OBS` unless set)."""
    return _installed


def install(obs: Observability | None) -> Observability:
    """Set the default bundle; returns the previous one.

    ``None`` restores :data:`NULL_OBS`.  Callers should restore the
    returned previous value when their scope ends (the benchmark
    conftest does this in a fixture finalizer).
    """
    global _installed
    previous = _installed
    _installed = obs if obs is not None else NULL_OBS
    return previous

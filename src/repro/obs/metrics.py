"""Lightweight in-memory metrics: counters, histograms, a registry.

The pipeline and solvers book their work — extracts built, WalkSAT
flips spent, exact-solver backtracks — into a shared
:class:`MetricsRegistry`.  The registry is thread-safe (one lock
guards creation and every update), zero-dependency, and exports to
JSON with stable key order so two identical runs produce identical
dumps.

Registries also cross *process* boundaries: they pickle cleanly under
the ``spawn`` start method (locks are dropped on serialization and
rebuilt on load), and :meth:`MetricsRegistry.merge` folds another
registry — or its plain-dict :meth:`~MetricsRegistry.as_dict`
snapshot, which is what the batch runner's workers ship home — into
this one.  Counters add; histograms combine count/total/min/max, so a
merged mean is exact.

Naming convention (see ``docs/observability.md`` for the full
catalogue): dotted lowercase paths, the first segment naming the
subsystem (``pipeline.``, ``crawl.``, ``csp.``, ``relational.``), and
a trailing unit suffix for non-count histograms (``.seconds``).  Span
durations recorded by a :class:`~repro.obs.trace.Tracer` land in
histograms named ``span.<span name>.seconds``.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "render_breakdown",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None) -> None:
        self.name = name
        self.value = 0
        self._lock = lock or threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative inc {amount}")
        with self._lock:
            self.value += amount

    def __getstate__(self) -> dict[str, Any]:
        return {"name": self.name, "value": self.value}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.name = state["name"]
        self.value = state["value"]
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """Summary statistics over observed values (no bucket storage).

    Tracks count / total / min / max, which is enough for the
    per-stage cost breakdowns the benchmarks print; individual samples
    are not retained, so a histogram's memory cost is constant.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = lock or threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge_summary(self, summary: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`summary` into this one."""
        count = int(summary.get("count", 0))
        if not count:
            return
        with self._lock:
            self.count += count
            self.total += float(summary["total"])
            if float(summary["min"]) < self.min:
                self.min = float(summary["min"])
            if float(summary["max"]) > self.max:
                self.max = float(summary["max"])

    def __getstate__(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.name = state["name"]
        self.count = state["count"]
        self.total = state["total"]
        self.min = state["min"]
        self.max = state["max"]
        self._lock = threading.Lock()

    def summary(self, precision: int = 6) -> dict[str, Any]:
        """JSON-ready statistics (rounded for stable dumps)."""
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": round(self.total, precision),
            "mean": round(self.mean, precision),
            "min": round(self.min, precision),
            "max": round(self.max, precision),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Thread-safe name -> metric store with JSON export.

    ``counter(name)`` / ``histogram(name)`` get-or-create; asking for
    an existing name with the other kind is an error (one name, one
    type).  All metrics created by a registry share its lock, so
    updates are atomic under free threading too.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            if name in self._histograms:
                raise ValueError(f"{name!r} is already a histogram")
            counter = self._counters.get(name)
            if counter is None:
                counter = Counter(name, lock=self._lock)
                self._counters[name] = counter
            return counter

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        with self._lock:
            if name in self._counters:
                raise ValueError(f"{name!r} is already a counter")
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(name, lock=self._lock)
                self._histograms[name] = histogram
            return histogram

    def counters(self) -> Iterator[Counter]:
        with self._lock:
            return iter(sorted(self._counters.values(), key=lambda c: c.name))

    def histograms(self) -> Iterator[Histogram]:
        with self._lock:
            return iter(sorted(self._histograms.values(), key=lambda h: h.name))

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot with sorted, stable key order."""
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name].value
                    for name in sorted(self._counters)
                },
                "histograms": {
                    name: self._histograms[name].summary()
                    for name in sorted(self._histograms)
                },
            }

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`as_dict` snapshot as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent)

    def merge(self, other: "MetricsRegistry | dict[str, Any]") -> None:
        """Fold another registry (or an :meth:`as_dict` snapshot) in.

        Counters add, histograms combine count/total/min/max.  This is
        how per-worker registries from a multi-process batch run are
        joined into the parent's registry; merging a live registry
        uses its exact (unrounded) totals.
        """
        if isinstance(other, MetricsRegistry):
            for counter in other.counters():
                if counter.value:
                    self.counter(counter.name).inc(counter.value)
            for histogram in other.histograms():
                if histogram.count:
                    self.histogram(histogram.name).merge_summary(
                        {
                            "count": histogram.count,
                            "total": histogram.total,
                            "min": histogram.min,
                            "max": histogram.max,
                        }
                    )
            return
        for name, value in other.get("counters", {}).items():
            if value:
                self.counter(name).inc(int(value))
        for name, summary in other.get("histograms", {}).items():
            self.histogram(name).merge_summary(summary)

    def __getstate__(self) -> dict[str, Any]:
        # Locks cannot cross a pickle boundary (the ``spawn`` start
        # method pickles everything shipped to a worker); serialize
        # the metric values and rebuild locks on load.
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": dict(self._histograms),
            }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._lock = threading.Lock()
        self._counters = state["counters"]
        self._histograms = state["histograms"]
        for metric in (*self._counters.values(), *self._histograms.values()):
            metric._lock = self._lock


class NullRegistry(MetricsRegistry):
    """A registry that discards everything (the disabled default).

    Metric objects handed out are real but unregistered, so
    instrumented code runs unchanged while ``as_dict()`` stays empty.
    """

    def counter(self, name: str) -> Counter:
        return Counter(name)

    def histogram(self, name: str) -> Histogram:
        return Histogram(name)


def render_breakdown(registry: MetricsRegistry) -> str:
    """ASCII per-stage cost breakdown of a registry.

    Span-duration histograms (``span.*.seconds``) come first, sorted
    by total time descending — the "which stage to optimize next"
    view — followed by every counter.  Used by the benchmark suite's
    session report and handy from a REPL.
    """
    lines: list[str] = []
    stages = [
        histogram
        for histogram in registry.histograms()
        if histogram.name.startswith("span.") and histogram.count
    ]
    stages.sort(key=lambda h: h.total, reverse=True)
    if stages:
        width = max(len(h.name) for h in stages)
        lines.append("per-stage cost breakdown (total seconds, descending):")
        lines.append(
            f"{'stage'.ljust(width)}  {'calls':>7} {'total_s':>10} "
            f"{'mean_s':>10} {'max_s':>10}"
        )
        for histogram in stages:
            lines.append(
                f"{histogram.name.ljust(width)}  {histogram.count:>7} "
                f"{histogram.total:>10.4f} {histogram.mean:>10.4f} "
                f"{histogram.max:>10.4f}"
            )
    counters = [counter for counter in registry.counters() if counter.value]
    if counters:
        if lines:
            lines.append("")
        lines.append("counters:")
        width = max(len(c.name) for c in counters)
        for counter in counters:
            lines.append(f"{counter.name.ljust(width)}  {counter.value}")
    return "\n".join(lines) if lines else "(no metrics recorded)"

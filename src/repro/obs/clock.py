"""Injectable time sources for the observability layer.

Every duration the tracer, the metrics layer, the pipeline
(``PageRun.elapsed``) or the CSP solvers record is read from a *clock
object* rather than from :func:`time.perf_counter` directly, so tests
can substitute a :class:`ManualClock` and get byte-identical traces on
every run — the same simulated-time discipline the resilient crawl
layer (PR 1) applies to retry backoff.

Two implementations:

* :class:`SystemClock` — the production clock; monotonic wall time via
  :func:`time.perf_counter`.
* :class:`ManualClock` — a deterministic fake.  Time only moves when
  the test says so: either explicitly (:meth:`ManualClock.advance`) or
  by a fixed ``tick`` charged on every read, which makes span
  durations a pure function of how many times the instrumented code
  consulted the clock.

Anything with a ``now() -> float`` method satisfies the
:class:`Clock` protocol.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "SystemClock", "ManualClock"]


@runtime_checkable
class Clock(Protocol):
    """Structural interface: anything with ``now() -> float``."""

    def now(self) -> float:
        """Current time in (possibly simulated) seconds."""
        ...


class SystemClock:
    """Monotonic wall-clock time (:func:`time.perf_counter`)."""

    def now(self) -> float:
        return time.perf_counter()


class ManualClock:
    """A clock that only moves when told to.

    Args:
        start: initial reading.
        tick: seconds charged on *every* :meth:`now` call (after
            returning the pre-tick value).  With ``tick=1.0`` a span's
            duration equals the number of clock reads that happened
            between its start and end — fully deterministic for a
            deterministic code path.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self.tick = tick
        self._now = float(start)

    def now(self) -> float:
        value = self._now
        self._now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards ({seconds})")
        self._now += seconds

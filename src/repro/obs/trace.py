"""Nested, timed tracing spans with structured attributes.

A :class:`Tracer` produces a tree of :class:`Span` objects, one per
instrumented region, via the context manager :meth:`Tracer.span`::

    with tracer.span("pipeline.page", index=0) as span:
        ...
        span.attributes["records"] = len(records)

Span *names* are a small static vocabulary (``pipeline.segment_site``,
``csp.level``, ... — catalogued in ``docs/observability.md``); anything
per-run (URLs, counts, indices) goes in attributes.  Keeping names
static lets the tracer fold every completed span's duration into a
``span.<name>.seconds`` histogram of a linked
:class:`~repro.obs.metrics.MetricsRegistry`, which is where the
benchmark suite's per-stage cost breakdown comes from.

All timestamps are read from an injectable
:class:`~repro.obs.clock.Clock`; with a
:class:`~repro.obs.clock.ManualClock` the rendered tree is
byte-identical across runs.  :class:`NullTracer` is the disabled
variant: same interface, no recording, no clock reads.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.obs.clock import Clock, SystemClock
from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "Tracer", "NullTracer"]


@dataclass
class Span:
    """One timed region of work.

    Attributes:
        name: static span name (``subsystem.operation``).
        start: clock reading at entry.
        end: clock reading at exit; ``None`` while open.
        attributes: structured facts about the work (counts, outcomes).
        children: spans opened while this one was the innermost.
    """

    name: str
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self, precision: int = 6) -> dict[str, Any]:
        """JSON-ready form (durations rounded for stable dumps)."""
        return {
            "name": self.name,
            "duration_s": round(self.duration, precision),
            "attributes": dict(self.attributes),
            "children": [child.to_dict(precision) for child in self.children],
        }

    def find(self, name: str) -> list["Span"]:
        """Every descendant (self included) named ``name``, preorder."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span (tree) from its :meth:`to_dict` form.

        Only durations survive a dump, not absolute clock readings, so
        the rebuilt span starts at 0.0 and ends at its duration —
        enough for :meth:`Tracer.render`, :attr:`duration` and
        :meth:`find` to work on merged remote trees.
        """
        return cls(
            name=data["name"],
            start=0.0,
            end=float(data.get("duration_s", 0.0)),
            attributes=dict(data.get("attributes", {})),
            children=[cls.from_dict(child) for child in data.get("children", [])],
        )


class Tracer:
    """Builds the span tree; optionally feeds a metrics registry.

    Args:
        clock: time source (default: :class:`SystemClock`).
        registry: when given, each completed span's duration is
            observed into the histogram ``span.<name>.seconds``.
        keep_spans: retain finished spans in :attr:`roots`.  Disable
            for long benchmark sessions that only want the per-stage
            histograms, not an ever-growing tree.
    """

    enabled = True

    def __init__(
        self,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
        keep_spans: bool = True,
    ) -> None:
        self.clock = clock or SystemClock()
        self.registry = registry
        self.keep_spans = keep_spans
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span of the innermost open span (or a root)."""
        span = Span(name=name, start=self.clock.now(), attributes=attributes)
        if self.keep_spans:
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self.clock.now()
            if self.registry is not None:
                self.registry.histogram(f"span.{name}.seconds").observe(
                    span.duration
                )

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def find(self, name: str) -> list[Span]:
        """Every recorded span named ``name``, preorder."""
        found: list[Span] = []
        for root in self.roots:
            found.extend(root.find(name))
        return found

    def to_dict(self, precision: int = 6) -> list[dict[str, Any]]:
        """All root spans, JSON-ready."""
        return [root.to_dict(precision) for root in self.roots]

    def merge(self, spans: "Iterable[Span | dict[str, Any]]") -> None:
        """Append root spans recorded elsewhere (another process).

        Accepts :class:`Span` objects or their :meth:`Span.to_dict`
        form — the latter is what a batch-runner worker ships home.
        Durations are *not* re-folded into the registry: the worker's
        own registry already booked them and is merged separately, so
        folding here would double-count.
        """
        for span in spans:
            if isinstance(span, dict):
                span = Span.from_dict(span)
            self.roots.append(span)

    def render(self, precision: int = 6) -> str:
        """The span tree as indented ASCII, durations + attributes.

        Format per line::

            ├─ csp.level  0.123456s  level=STRICT wsat_satisfied=True

        Deterministic given a deterministic clock: attributes render
        in insertion order, durations at fixed precision.
        """
        lines: list[str] = []
        for root in self.roots:
            self._render_span(root, "", "", lines, precision)
        return "\n".join(lines)

    def _render_span(
        self,
        span: Span,
        prefix: str,
        child_prefix: str,
        lines: list[str],
        precision: int,
    ) -> None:
        attrs = " ".join(
            f"{key}={value}" for key, value in span.attributes.items()
        )
        line = f"{prefix}{span.name}  {span.duration:.{precision}f}s"
        if attrs:
            line += f"  {attrs}"
        lines.append(line)
        for index, child in enumerate(span.children):
            last = index == len(span.children) - 1
            connector = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            self._render_span(
                child,
                child_prefix + connector,
                child_prefix + extension,
                lines,
                precision,
            )


class NullTracer(Tracer):
    """A tracer that records nothing (the disabled default).

    ``span()`` still yields a :class:`Span` so instrumented code can
    set attributes unconditionally, but nothing is timed or retained.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=SystemClock(), registry=None, keep_spans=False)

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        yield Span(name=name, start=0.0, attributes=attributes)

"""Top-level pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import ConfigError
from repro.csp.segmenter import CspConfig
from repro.extraction.matching import MatchOptions
from repro.prob.model import ProbConfig
from repro.template.finder import TemplateFinderConfig
from repro.tokens.tokenizer import DEFAULT_ALLOWED_PUNCT

__all__ = ["PipelineConfig", "METHODS"]

#: Segmentation methods the pipeline knows.
METHODS = ("csp", "prob", "hybrid")


@dataclass(frozen=True)
class PipelineConfig:
    """Everything the end-to-end pipeline needs.

    Attributes:
        template: template-induction knobs.
        match: extract/detail matching knobs.
        csp: CSP segmenter settings.
        prob: probabilistic segmenter settings.
        allowed_punct: the punctuation characters allowed inside
            extracts (paper default ``.,()-``); shared by the
            tokenizer and the separator classifier.
    """

    template: TemplateFinderConfig = field(default_factory=TemplateFinderConfig)
    match: MatchOptions = field(default_factory=MatchOptions)
    csp: CspConfig = field(default_factory=CspConfig)
    prob: ProbConfig = field(default_factory=ProbConfig)
    allowed_punct: frozenset[str] = DEFAULT_ALLOWED_PUNCT

    def __post_init__(self) -> None:
        if self.match.allowed_punct != self.allowed_punct:
            raise ConfigError(
                "match.allowed_punct must agree with allowed_punct "
                "(the tokenizer and matcher must classify separators "
                "identically)"
            )

"""Core: pipeline, results, evaluation, configuration, exceptions.

Attributes are loaded lazily (PEP 562): leaf modules throughout the
library import ``repro.core.exceptions``, which initializes this
package — eager re-exports here would close an import cycle back into
those leaf modules.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "METHODS": "repro.core.config",
    "PipelineConfig": "repro.core.config",
    "PageScore": "repro.core.evaluation",
    "ScoreCard": "repro.core.evaluation",
    "score_page": "repro.core.evaluation",
    "truth_assignment": "repro.core.evaluation",
    "CircuitOpenError": "repro.core.exceptions",
    "ConfigError": "repro.core.exceptions",
    "CrawlBudgetExceededError": "repro.core.exceptions",
    "CrawlError": "repro.core.exceptions",
    "CspError": "repro.core.exceptions",
    "EmptyProblemError": "repro.core.exceptions",
    "ExtractionError": "repro.core.exceptions",
    "FetchError": "repro.core.exceptions",
    "HtmlParseError": "repro.core.exceptions",
    "InferenceError": "repro.core.exceptions",
    "InsufficientPagesError": "repro.core.exceptions",
    "ReproError": "repro.core.exceptions",
    "PermanentFetchError": "repro.core.exceptions",
    "SiteGenError": "repro.core.exceptions",
    "SolverBudgetExceededError": "repro.core.exceptions",
    "TemplateError": "repro.core.exceptions",
    "TransientFetchError": "repro.core.exceptions",
    "TemplateNotFoundError": "repro.core.exceptions",
    "UnsatisfiableError": "repro.core.exceptions",
    "HybridConfig": "repro.core.hybrid",
    "HybridSegmenter": "repro.core.hybrid",
    "PIPELINE_GRAPH": "repro.core.pipeline",
    "PageRun": "repro.core.pipeline",
    "SegmentationPipeline": "repro.core.pipeline",
    "SiteRun": "repro.core.pipeline",
    "warm_tokens": "repro.core.pipeline",
    "Degradation": "repro.core.stages",
    "Stage": "repro.core.stages",
    "StageContext": "repro.core.stages",
    "StageGraph": "repro.core.stages",
    "SegmentedRecord": "repro.core.results",
    "Segmentation": "repro.core.results",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return __all__

"""Result types shared by both segmenters.

A :class:`Segmentation` is the common currency of the library: the CSP
and probabilistic segmenters both produce one, the evaluation module
scores one against ground truth, and the reporting module renders one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.extraction.extracts import Extract
from repro.extraction.observations import Observation, ObservationTable

__all__ = ["SegmentedRecord", "Segmentation"]


@dataclass
class SegmentedRecord:
    """One predicted record.

    Attributes:
        record_id: the detail-page index this record corresponds to
            (the ``j`` of ``r_j``).
        observations: the used extracts assigned to this record by the
            segmenter, in page order.
        attached: extracts appended by the paper's rest-of-the-data
            rule ("the rest of the table data are assumed to belong to
            the same record as the last assigned extract"); these did
            not take part in segmentation.
        columns: optional ``seq -> column label`` mapping for the
            assigned observations (probabilistic segmenter only).
    """

    record_id: int
    observations: list[Observation] = field(default_factory=list)
    attached: list[Extract] = field(default_factory=list)
    columns: dict[int, int] | None = None

    @property
    def assigned_seqs(self) -> frozenset[int]:
        """Sequence indices of the assigned observations."""
        return frozenset(observation.seq for observation in self.observations)

    @property
    def extract_texts(self) -> list[str]:
        """Display texts of the assigned extracts (page order)."""
        return [observation.extract.text for observation in self.observations]

    @property
    def full_texts(self) -> list[str]:
        """Assigned plus attached extract texts, in page order."""
        items: list[tuple[int, str]] = [
            (observation.extract.index, observation.extract.text)
            for observation in self.observations
        ]
        items.extend((extract.index, extract.text) for extract in self.attached)
        return [text for _, text in sorted(items)]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"r{self.record_id}: " + " | ".join(self.extract_texts)


@dataclass
class Segmentation:
    """The output of one segmentation run over one list page.

    Attributes:
        method: ``"csp"`` or ``"prob"`` (or a baseline name).
        records: the predicted records, ordered by record id.  Records
            with no assigned extracts are omitted.
        table: the observation table that was segmented.
        unassigned: used observations left out of every record (a
            *partial* assignment — paper Section 6.3).
        meta: method-specific diagnostics (relaxation level, EM
            iterations, log-likelihood, solver stats, template fate...).
    """

    method: str
    records: list[SegmentedRecord]
    table: ObservationTable
    unassigned: list[Observation] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_assignment(
        cls,
        method: str,
        table: ObservationTable,
        assignment: dict[int, int | None],
        columns: dict[int, int] | None = None,
        meta: dict[str, Any] | None = None,
        attach_rest: bool = True,
    ) -> "Segmentation":
        """Build a segmentation from a ``seq -> record`` assignment.

        Args:
            method: segmenter name for provenance.
            table: the observation table segmented.
            assignment: record for each used observation ``seq`` (None
                = unassigned).
            columns: optional ``seq -> column`` labels.
            meta: diagnostics to carry.
            attach_rest: apply the paper's rest-of-the-data rule,
                attaching unused extracts (and leading ones, to the
                first assigned record).
        """
        by_record: dict[int, SegmentedRecord] = {}
        unassigned: list[Observation] = []
        for observation in table.observations:
            record_id = assignment.get(observation.seq)
            if record_id is None:
                unassigned.append(observation)
                continue
            record = by_record.setdefault(record_id, SegmentedRecord(record_id))
            record.observations.append(observation)
            if columns and observation.seq in columns:
                if record.columns is None:
                    record.columns = {}
                record.columns[observation.seq] = columns[observation.seq]

        if attach_rest and by_record:
            cls._attach_rest(table, assignment, by_record)

        records = [by_record[record_id] for record_id in sorted(by_record)]
        return cls(
            method=method,
            records=records,
            table=table,
            unassigned=unassigned,
            meta=dict(meta or {}),
        )

    @staticmethod
    def _attach_rest(
        table: ObservationTable,
        assignment: dict[int, int | None],
        by_record: dict[int, SegmentedRecord],
    ) -> None:
        """Attach non-segmented extracts to the record of the last
        assigned extract (leading ones go to the first record)."""
        record_of_extract: dict[int, int] = {}
        for observation in table.observations:
            record_id = assignment.get(observation.seq)
            if record_id is not None:
                record_of_extract[observation.extract.index] = record_id

        if not record_of_extract:
            return
        first_record = record_of_extract[min(record_of_extract)]

        assigned_indices = set(record_of_extract)
        current = first_record
        for extract in sorted(table.extracts, key=lambda e: e.index):
            if extract.index in assigned_indices:
                current = record_of_extract[extract.index]
                continue
            by_record[current].attached.append(extract)

    @property
    def record_count(self) -> int:
        """Number of non-empty predicted records."""
        return len(self.records)

    @property
    def is_partial(self) -> bool:
        """True when some used observation was left unassigned."""
        return bool(self.unassigned)

    def record_for(self, record_id: int) -> SegmentedRecord | None:
        """The predicted record for detail page ``record_id``, if any."""
        for record in self.records:
            if record.record_id == record_id:
                return record
        return None

    def describe(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [f"Segmentation[{self.method}]: {self.record_count} records"]
        for record in self.records:
            lines.append(f"  {record}")
        if self.unassigned:
            lines.append(
                "  unassigned: "
                + " | ".join(o.extract.text for o in self.unassigned)
            )
        return "\n".join(lines)

"""Scoring segmentations against ground truth (paper Section 6.2).

    "We manually checked the results of automatic segmentation and
    classified them as correctly segmented (Cor) and incorrectly
    segmented (InCor) records, unsegmented records (FN) and
    non-records (FP).
        P = Cor/(Cor + InCor + FP)
        R = Cor/(Cor + FN)
        F = 2PR/(P + R)"

The simulator replaces the manual check: every extract is attributed
to its true record through the character span its row occupied in the
list page HTML.  Counting follows the paper's Table 4, where each
row's Cor + InC + FN equals the page's record count — i.e. every
*true* record is classified exactly once:

* **Cor** — some predicted record's assigned extracts exactly cover
  this record's matchable extracts (and nothing else);
* **InC** — the record's extracts appear in predicted records, but no
  exact cover exists (merged, split or polluted);
* **FN** — no predicted record touches the record at all (the
  unsegmented records that partial/relaxed assignments leave behind).

**FP** counts predicted records containing no truth content at all
(non-records).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.core.results import Segmentation
from repro.extraction.observations import ObservationTable

if TYPE_CHECKING:  # pragma: no cover - break core <-> sitegen import cycle
    from repro.sitegen.site import ListPageTruth

__all__ = ["PageScore", "ScoreCard", "truth_assignment", "score_page"]


@dataclass
class PageScore:
    """Cor / InC / FN / FP counts for one list page."""

    cor: int = 0
    inc: int = 0
    fn: int = 0
    fp: int = 0

    def __add__(self, other: "PageScore") -> "PageScore":
        return PageScore(
            cor=self.cor + other.cor,
            inc=self.inc + other.inc,
            fn=self.fn + other.fn,
            fp=self.fp + other.fp,
        )

    @property
    def precision(self) -> float:
        denominator = self.cor + self.inc + self.fp
        return self.cor / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.cor + self.fn
        return self.cor / denominator if denominator else 0.0

    @property
    def f_measure(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def as_row(self) -> tuple[int, int, int, int]:
        return (self.cor, self.inc, self.fn, self.fp)


@dataclass
class ScoreCard:
    """Accumulates page scores into the paper's aggregate metrics."""

    pages: list[PageScore] = field(default_factory=list)

    def add(self, score: PageScore) -> None:
        self.pages.append(score)

    @property
    def total(self) -> PageScore:
        result = PageScore()
        for page in self.pages:
            result = result + page
        return result


def truth_assignment(
    table: ObservationTable, truth: "ListPageTruth"
) -> dict[int, int | None]:
    """Map each used observation ``seq`` to its true record index.

    The extract's first token carries its character offset in the list
    page; the true record is the row whose span contains it.  Extracts
    outside every row span (chrome, ads under the whole-page fallback)
    map to ``None``.
    """
    assignment: dict[int, int | None] = {}
    for observation in table.observations:
        offset = observation.extract.tokens[0].start
        row = truth.row_of_offset(offset) if offset >= 0 else None
        assignment[observation.seq] = row.record_index if row else None
    return assignment


def score_page(
    segmentation: Segmentation, truth: "ListPageTruth"
) -> PageScore:
    """Score one page's segmentation against its ground truth."""
    table = segmentation.table
    seq_truth = truth_assignment(table, truth)

    # Matchable extract set of each true record.
    truth_sets: dict[int, frozenset[int]] = {}
    for row in truth.rows:
        members = frozenset(
            seq for seq, record in seq_truth.items() if record == row.record_index
        )
        truth_sets[row.record_index] = members

    score = PageScore()

    # Predicted records containing no truth content are non-records.
    predicted_sets: list[frozenset[int]] = []
    for predicted in segmentation.records:
        assigned = predicted.assigned_seqs
        if assigned and all(seq_truth[seq] is None for seq in assigned):
            score.fp += 1
        else:
            predicted_sets.append(assigned)

    # Classify every true record exactly once.
    exactly_covered = {
        assigned for assigned in predicted_sets
    }
    touched: set[int] = set()
    for assigned in predicted_sets:
        for seq in assigned:
            record_index = seq_truth[seq]
            if record_index is not None:
                touched.add(record_index)

    for row in truth.rows:
        members = truth_sets[row.record_index]
        if members and members in exactly_covered:
            score.cor += 1
        elif row.record_index in touched:
            score.inc += 1
        else:
            score.fn += 1
    return score

"""The combined segmenter the paper's conclusion calls for.

    "Both techniques (or a combination of the two) are likely to be
    required for large-scale robust and reliable information
    extraction."  (Section 7)

The combination rule follows the paper's own characterization of the
two methods' strengths:

* the **CSP** is "very reliable on clean data" — when the *strict*
  problem is satisfiable, its solution is exact and is used as-is;
* the **probabilistic** approach "tolerates inconsistencies" — when
  the strict CSP fails (the data is provably or practically
  inconsistent), the factored model takes over instead of falling back
  to a relaxed partial assignment.

The result carries both sub-results' diagnostics plus which engine was
chosen (``meta["engine"]``), and inherits the probabilistic engine's
column labels whenever it ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import EmptyProblemError
from repro.core.results import Segmentation
from repro.csp.relaxation import RelaxationLevel
from repro.csp.segmenter import CspConfig, CspSegmenter
from repro.extraction.observations import ObservationTable
from repro.obs import Observability
from repro.prob.model import ProbConfig
from repro.prob.segmenter import ProbabilisticSegmenter

__all__ = ["HybridConfig", "HybridSegmenter"]


@dataclass(frozen=True)
class HybridConfig:
    """Configuration of the combined segmenter.

    Attributes:
        csp: settings for the CSP attempt.
        prob: settings for the probabilistic fallback.
    """

    csp: CspConfig = field(default_factory=CspConfig)
    prob: ProbConfig = field(default_factory=ProbConfig)


class HybridSegmenter:
    """CSP when the data is clean, probabilistic when it is not."""

    method_name = "hybrid"

    def __init__(
        self,
        config: HybridConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.config = config or HybridConfig()
        self.obs = obs

    def segment(self, table: ObservationTable) -> Segmentation:
        """Segment one list page's observation table.

        Raises:
            EmptyProblemError: the table has no usable observations.
        """
        if not table.observations:
            raise EmptyProblemError("no observations to segment")

        csp_result = CspSegmenter(self.config.csp, obs=self.obs).segment(table)
        if (
            csp_result.meta.get("solution_found")
            and csp_result.meta.get("level") is RelaxationLevel.STRICT
        ):
            csp_result.method = self.method_name
            csp_result.meta["engine"] = "csp"
            return csp_result

        prob_result = ProbabilisticSegmenter(self.config.prob).segment(table)
        prob_result.method = self.method_name
        prob_result.meta["engine"] = "prob"
        prob_result.meta["csp_attempts"] = csp_result.meta.get("attempts")
        prob_result.meta["csp_level"] = csp_result.meta.get("level")
        return prob_result

"""The declarative stage contract and its graph executor.

The paper's method is an explicitly staged dataflow (tokenize →
template → extracts → observations → segment, Sections 3–4), and every
driver in this repository — the single-site pipeline, the batch
runner's workers, the online service, the experiment sweeps — runs the
same stages while needing the same three cross-cutting behaviours:

* **cache-key chaining** — each stage's content-addressed cache key
  extends its upstream stages' key material with its own inputs, so a
  downstream knob change invalidates only downstream stages;
* **observability** — one ``pipeline.*`` span per stage with the
  stage's counts as attributes, plus the stage counters;
* **degradation** — the ladder of paper-prescribed fallbacks
  (whole-page template, empty problem, unsegmentable page) that turns
  recoverable errors into annotated results instead of crashes.

Before this module each driver hand-threaded those behaviours through
its own copy of the plumbing.  Now a stage is a *declaration* — a
:class:`Stage` value naming its dependencies, its own cache-key parts
(its config slice plus per-invocation inputs), its compute function,
its span/counter emissions, and its :class:`Degradation` ladder — and
the :class:`StageGraph` executor supplies the behaviours from one
place.  Adding a stage to the batch and serving layers is adding a
declaration, not re-plumbing four call sites.

This module is deliberately generic: it knows nothing about pages,
templates or segmenters.  The paper's concrete stage catalogue lives
in :mod:`repro.core.pipeline` (see ``PIPELINE_GRAPH`` there), and the
online service declares its own stages in :mod:`repro.serve.service`.

Contract guarantees the executor upholds:

* stages run in dependency order; a stage already present in the
  :class:`StageContext` (for example computed by a parent context) is
  never re-run;
* cache keys are ``fingerprint(stage.name, material)`` where
  ``material`` is the concatenation of every dependency's material
  followed by the stage's own ``key(ctx)`` parts — byte-identical to
  the hand-written tuples the pipeline used before the stage graph
  existed (guarded by ``tests/test_stage_graph.py`` and the CI
  ``stage-parity`` job);
* degradations (pre-condition checks first, then exception matches,
  both in declaration order) run *inside* the cached compute, so a
  degraded result is cached exactly like a computed one;
* the span opens before the cache lookup and closes after
  ``result_attrs``/``finalize``, and counters are booked after the
  span closes — the exact emission order the hand-written pipeline
  used, which keeps traces byte-identical under a ``ManualClock``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.obs import Observability, current as current_obs

__all__ = ["Degradation", "Stage", "StageContext", "StageGraph"]


class StageContext:
    """The value store one stage-graph execution reads and writes.

    A context maps names to values: the run's *inputs* (pages, config
    slices, helper callables) seeded at construction, and each executed
    stage's *result* stored under the stage's name.  Contexts chain —
    a :meth:`child` context resolves missing names through its parent,
    so per-page contexts share the site-level template result without
    re-running the template stage.

    Attributes:
        health: optional degradation ledger (any object with a
            ``fallbacks`` list, e.g.
            :class:`~repro.crawl.resilient.CrawlHealth`).  Labelled
            degradations append to it; inherited from the parent when
            not given.
    """

    __slots__ = ("values", "parent", "health")

    def __init__(
        self,
        values: Mapping[str, Any] | None = None,
        parent: "StageContext | None" = None,
        health: Any = None,
    ) -> None:
        self.values: dict[str, Any] = dict(values or {})
        self.parent = parent
        if health is None and parent is not None:
            health = parent.health
        self.health = health

    def child(self, **values: Any) -> "StageContext":
        """A new context layered over this one."""
        return StageContext(values, parent=self)

    def __contains__(self, name: str) -> bool:
        ctx: StageContext | None = self
        while ctx is not None:
            if name in ctx.values:
                return True
            ctx = ctx.parent
        return False

    def __getitem__(self, name: str) -> Any:
        ctx: StageContext | None = self
        while ctx is not None:
            if name in ctx.values:
                return ctx.values[name]
            ctx = ctx.parent
        raise KeyError(name)

    def get(self, name: str, default: Any = None) -> Any:
        try:
            return self[name]
        except KeyError:
            return default

    def set(self, name: str, value: Any) -> None:
        """Bind ``name`` in *this* layer (never the parent's)."""
        self.values[name] = value


@dataclass(frozen=True)
class Degradation:
    """One rung of a stage's degradation ladder.

    A rung fires either on a *pre-condition* over the context (checked
    before the stage computes) or on a raised exception of one of the
    declared types; its ``fallback`` then supplies the stage's result.
    Rungs are evaluated in declaration order: all conditions first,
    then — if the compute raised — the first matching exception rung.

    Attributes:
        fallback: ``(error_or_None, ctx) -> result`` producing the
            degraded stage result (cached like a computed one).
        exceptions: exception types this rung absorbs.
        condition: pre-check over the context; when true the stage
            never computes and the fallback supplies the result.
        label: when set and the context carries a ``health`` ledger,
            appended to ``health.fallbacks`` (the crawl layer's
            degradation bookkeeping).
    """

    fallback: Callable[[BaseException | None, StageContext], Any]
    exceptions: tuple[type[BaseException], ...] = ()
    condition: Callable[[StageContext], bool] | None = None
    label: str | None = None

    def record(self, ctx: StageContext) -> None:
        """Book this rung into the context's health ledger, if any."""
        if self.label is not None and ctx.health is not None:
            ctx.health.fallbacks.append(self.label)


@dataclass(frozen=True)
class Stage:
    """One declarative stage of the dataflow.

    Attributes:
        name: stage identity — the cache namespace, the context key
            its result is stored under, and what ``deps`` reference.
        compute: ``ctx -> result``; reads inputs and upstream results
            from the context.
        deps: upstream stage names.  They execute first, and their
            cache-key material prefixes this stage's (key chaining).
        key: ``ctx -> tuple`` of this stage's *own* cache-key parts —
            its config slice plus per-invocation inputs.  ``None``
            marks the stage uncacheable (always computed).
        span: span name the executor wraps the stage in (``None`` =
            no span).
        span_attrs: ``ctx -> dict`` of attributes the span opens with.
        result_attrs: ``(result, ctx) -> dict`` of attributes added to
            the span once the result exists.
        counters: ``(result, ctx) -> iterable of (name, amount)``
            booked after the span closes.
        finalize: ``(result, ctx) -> None`` hook run inside the span
            after ``result_attrs`` — for uncached derivations that
            belong to the stage (e.g. resolving table regions from a
            template verdict) or for installing the result somewhere
            (e.g. priming a page's token cache).
        degradations: the stage's fallback ladder (see
            :class:`Degradation`).
    """

    name: str
    compute: Callable[[StageContext], Any]
    deps: tuple[str, ...] = ()
    key: Callable[[StageContext], tuple] | None = None
    span: str | None = None
    span_attrs: Callable[[StageContext], dict] | None = None
    result_attrs: Callable[[Any, StageContext], dict] | None = None
    counters: Callable[[Any, StageContext], Iterable[tuple[str, int]]] | None = None
    finalize: Callable[[Any, StageContext], None] | None = None
    degradations: tuple[Degradation, ...] = field(default=())

    def guarded_compute(self, ctx: StageContext) -> Any:
        """``compute`` wrapped in the degradation ladder.

        This is the unit the cache memoises, so degraded results are
        cached exactly like computed ones (matching the pre-graph
        pipeline, which ran its fallback ladders inside the cached
        closures).
        """
        for rung in self.degradations:
            if rung.condition is not None and rung.condition(ctx):
                rung.record(ctx)
                return rung.fallback(None, ctx)
        try:
            return self.compute(ctx)
        except Exception as error:
            for rung in self.degradations:
                if rung.exceptions and isinstance(error, rung.exceptions):
                    rung.record(ctx)
                    return rung.fallback(error, ctx)
            raise


class StageGraph:
    """Executes :class:`Stage` declarations in dependency order.

    The graph is static data: build it once (module level is fine) and
    run it against many contexts.  ``run`` executes the dependency
    closure of the requested ``targets``, skipping stages whose result
    the context (or an ancestor context) already holds — which is both
    the "don't recompute the site-level template per page" rule and
    the mechanism that lets drivers enter the graph at any stage.

    Args:
        stages: the declarations.  Names must be unique and every
            dependency must name a declared stage; cycles are
            rejected.
    """

    def __init__(self, stages: Iterable[Stage]) -> None:
        self._stages: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self._stages:
                raise ValueError(f"duplicate stage {stage.name!r}")
            self._stages[stage.name] = stage
        for stage in self._stages.values():
            for dep in stage.deps:
                if dep not in self._stages:
                    raise ValueError(
                        f"stage {stage.name!r} depends on unknown "
                        f"stage {dep!r}"
                    )
        self._order = self._toposort()

    def __contains__(self, name: str) -> bool:
        return name in self._stages

    def __iter__(self) -> Iterator[Stage]:
        return iter(self._order)

    def stage(self, name: str) -> Stage:
        """The declaration called ``name`` (KeyError when unknown)."""
        return self._stages[name]

    def _toposort(self) -> tuple[Stage, ...]:
        order: list[Stage] = []
        state: dict[str, int] = {}  # 1 = visiting, 2 = done

        def visit(name: str) -> None:
            mark = state.get(name)
            if mark == 2:
                return
            if mark == 1:
                raise ValueError(f"stage dependency cycle through {name!r}")
            state[name] = 1
            for dep in self._stages[name].deps:
                visit(dep)
            state[name] = 2
            order.append(self._stages[name])

        for name in self._stages:
            visit(name)
        return tuple(order)

    def key_material(self, name: str, ctx: StageContext) -> list:
        """The full cache-key part list for stage ``name``.

        Every dependency's material, in declaration order, followed by
        the stage's own ``key(ctx)`` parts — exactly the hand-built
        tuples the pre-graph pipeline passed to
        ``StageCache.get_or_compute``, so existing on-disk caches stay
        warm across the refactor.
        """
        stage = self._stages[name]
        if stage.key is None:
            raise ValueError(f"stage {name!r} declares no cache key")
        material: list = []
        for dep in stage.deps:
            material.extend(self.key_material(dep, ctx))
        material.extend(stage.key(ctx))
        return material

    def run(
        self,
        ctx: StageContext,
        targets: Iterable[str] | None = None,
        *,
        obs: Observability | None = None,
        cache: Any = None,
    ) -> StageContext:
        """Execute ``targets`` (default: every stage) and their deps.

        Args:
            ctx: the value store; stage results are bound into it.
            targets: stage names to produce.  The dependency closure
                runs in topological order; stages already bound in the
                context are skipped.
            obs: observability bundle for spans/counters (default: the
                installed bundle, usually the no-op one).
            cache: optional stage cache — any object with
                ``get_or_compute(stage, parts, compute)`` (the
                :class:`~repro.runner.cache.StageCache` interface).
                Stages without a ``key`` bypass it.
        """
        obs = obs if obs is not None else current_obs()
        if targets is None:
            wanted = {stage.name for stage in self._order}
        else:
            wanted = set()
            pending = list(targets)
            while pending:
                name = pending.pop()
                if name in wanted:
                    continue
                stage = self._stages.get(name)
                if stage is None:
                    raise ValueError(f"unknown stage {name!r}")
                wanted.add(name)
                pending.extend(stage.deps)
        for stage in self._order:
            if stage.name in wanted and stage.name not in ctx:
                self._execute(stage, ctx, obs, cache)
        return ctx

    # -- internals -----------------------------------------------------------

    def _compute(self, stage: Stage, ctx: StageContext, cache: Any) -> Any:
        if cache is None or stage.key is None:
            return stage.guarded_compute(ctx)
        return cache.get_or_compute(
            stage.name,
            self.key_material(stage.name, ctx),
            lambda: stage.guarded_compute(ctx),
        )

    def _execute(
        self, stage: Stage, ctx: StageContext, obs: Observability, cache: Any
    ) -> None:
        if stage.span is None:
            value = self._compute(stage, ctx, cache)
            if stage.finalize is not None:
                stage.finalize(value, ctx)
        else:
            attrs = stage.span_attrs(ctx) if stage.span_attrs else {}
            with obs.span(stage.span, **attrs) as span:
                value = self._compute(stage, ctx, cache)
                if stage.result_attrs is not None:
                    span.attributes.update(stage.result_attrs(value, ctx))
                if stage.finalize is not None:
                    stage.finalize(value, ctx)
        if stage.counters is not None:
            for counter_name, amount in stage.counters(value, ctx):
                obs.counter(counter_name).inc(amount)
        ctx.set(stage.name, value)

"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at the pipeline boundary.  Sub-types are
deliberately fine-grained: the segmentation pipeline treats several of
them (template failure, unsatisfiable constraints) as *recoverable*
conditions with paper-prescribed fallbacks, so they must be
distinguishable from plain bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is out of range or inconsistent."""


class HtmlParseError(ReproError):
    """Raised when an HTML document cannot be lexed at all.

    The lexer is intentionally forgiving (real pages are malformed), so
    this is reserved for truly unusable input such as ``None`` or
    non-string payloads.
    """


class TemplateError(ReproError):
    """Base class for page-template induction problems."""


class TemplateNotFoundError(TemplateError):
    """No usable page template could be induced from the sample pages.

    The paper's pipeline recovers from this by using the entire list
    page as the table slot (Section 6.2, note *b* in Table 4).
    """


class InsufficientPagesError(TemplateError):
    """Template induction needs at least two sample pages."""


class ExtractionError(ReproError):
    """Extract or observation construction failed."""


class CspError(ReproError):
    """Base class for constraint-solver problems."""


class UnsatisfiableError(CspError):
    """The constraint problem admits no solution at this relaxation level.

    The CSP segmenter reacts by climbing the relaxation ladder
    (Section 6.3, notes *c*/*d* in Table 4); only if every level fails
    does the failure propagate to the caller.
    """


class SolverBudgetExceededError(CspError):
    """The local-search solver exhausted its flip budget without a solution.

    Distinct from :class:`UnsatisfiableError`: the instance may well be
    satisfiable, the solver just could not prove it within budget.
    """


class InferenceError(ReproError):
    """Probabilistic inference failed (degenerate lattice, NaNs, ...)."""


class EmptyProblemError(ReproError):
    """There is nothing to segment: no extracts survived the filters."""


class SiteGenError(ReproError):
    """A site specification is inconsistent and cannot be rendered."""


class CrawlError(ReproError):
    """The simulated crawler could not retrieve or classify pages."""


class FetchError(CrawlError):
    """A URL was requested that the simulated site does not serve."""


class TransientFetchError(FetchError):
    """A fetch failed in a way that may succeed on retry.

    Raised by fault-injecting transports (simulated timeouts, connection
    resets).  :class:`~repro.crawl.resilient.ResilientFetcher` retries
    these with backoff; every other :class:`FetchError` is treated as
    permanent.
    """


class PermanentFetchError(FetchError):
    """A fetch failed definitively (simulated 404/410); retrying is useless."""


class CircuitOpenError(FetchError):
    """A fetch was refused fast because its URL-class circuit is open.

    Not a server response at all: the resilient fetcher has seen too
    many consecutive failures in this URL-class and is shedding load
    until the cooldown elapses.
    """


class CrawlBudgetExceededError(CrawlError):
    """The per-site request or deadline budget ran out mid-crawl.

    The resilient layer converts this into gaps in the crawl (pages it
    never attempted) rather than letting it propagate, so it surfaces
    only when a caller uses the strict fetch API directly.
    """

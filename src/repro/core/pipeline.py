"""The end-to-end segmentation pipeline (paper Section 3).

Given a site's sample list pages and, for each, its detail pages in
link order, :class:`SegmentationPipeline` runs the full method:

1. page-template induction over the list pages, with the whole-page
   fallback on failure (Sections 3.1, 6.2);
2. table-slot resolution and extract extraction (Section 3.2);
3. observation building: matching against detail pages, the
   all-lists/all-details filters, positions (Sections 3.2, 4.2);
4. record segmentation by the configured method — ``"csp"``
   (Section 4) or ``"prob"`` (Section 5);
5. the rest-of-the-data attachment rule (Section 6.2).

Since the stage-graph refactor the pipeline is a *thin assembly of
stage declarations*: the catalogue below (:data:`PIPELINE_GRAPH`)
declares each stage's dependencies, cache-key parts, compute function,
span/counter emissions, and degradation ladder as data, and the
generic :class:`~repro.core.stages.StageGraph` executor supplies the
plumbing.  ``segment_site`` seeds a :class:`~repro.core.stages.StageContext`
with the sample and the config, runs the ``template`` stage once per
site and the ``extracts → observations → segment`` chain once per list
page, and assembles the :class:`SiteRun`.  The other drivers — the
batch runner's workers (:mod:`repro.runner.worker`), the online
service (:mod:`repro.serve.service`), the experiment sweeps
(:mod:`repro.reporting.experiment`) — enter the same graph instead of
re-implementing the plumbing.

The pipeline never raises on a *degenerate page* (no extracts survive
the filters): the ``segment`` stage's degradation ladder returns an
empty segmentation with the reason in ``meta`` so corpus-wide runs
always complete, mirroring how the paper reports such pages as rows of
unsegmented records.

The same best-effort stance extends to *degenerate samples* from
incomplete crawls: template failures (including a raised
:class:`~repro.core.exceptions.TemplateNotFoundError`) downgrade to the
whole-page fallback, a single surviving list page is segmented without
template induction, and a :class:`~repro.crawl.resilient.CrawlHealth`
report handed in by the crawl layer is carried on the
:class:`SiteRun` and summarized into every ``Segmentation.meta`` — so
evaluation can condition accuracy on crawl completeness.  Each rung of
that ladder is a declared :class:`~repro.core.stages.Degradation`.

Every stage is also *cacheable*: constructed with a ``cache`` (any
object with the :class:`~repro.runner.cache.StageCache` interface —
the pipeline itself depends on nothing in :mod:`repro.runner`), each
stage is looked up by a content fingerprint of its exact inputs (page
bytes + the stage's config slice) before being computed, so warm
re-runs and parameter sweeps skip the work upstream of the changed
knob.  Key material chains: each stage's material extends its
dependencies' material, byte-identically to the hand-written key
tuples that predate the stage graph, so existing on-disk caches stay
warm.  Caching engages only for pristine samples: a run carrying a
``crawl_health`` report came through a (possibly fault-injected) crawl
whose degradation bookkeeping must actually execute, so it always
computes.

The pipeline is fully instrumented: handed an
:class:`~repro.obs.Observability` bundle it emits a
``pipeline.segment_site`` span tree (template induction, then per
list page the extract / observation / segment stages, each with
counts in its attributes) and books stage totals into the metrics
registry — the per-stage cost profile ``docs/observability.md``
documents.  The per-stage spans and counters are emitted by the stage
executor from the declarations, not by per-call-site code.  Without a
bundle it falls back to the installed default
(:func:`repro.obs.current`), which is a no-op unless the CLI's
``--trace``/``--metrics-out`` flags or the benchmark session profile
installed a live bundle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.config import METHODS, PipelineConfig
from repro.core.exceptions import (
    ConfigError,
    CspError,
    EmptyProblemError,
    InferenceError,
    InsufficientPagesError,
    TemplateNotFoundError,
)
from repro.core.results import Segmentation
from repro.core.stages import Degradation, Stage, StageContext, StageGraph
from repro.crawl.resilient import CrawlBudget, CrawlHealth, RetryPolicy
from repro.csp.segmenter import CspSegmenter
from repro.extraction.extracts import extract_strings
from repro.extraction.observations import ObservationTable
from repro.obs import Observability, current as current_obs
from repro.prob.segmenter import ProbabilisticSegmenter
from repro.sitegen.faults import FaultPlan
from repro.sitegen.site import GeneratedSite
from repro.template.finder import TemplateFinder, TemplateVerdict
from repro.template.model import PageTemplate
from repro.template.table_slot import resolve_table_regions
from repro.webdoc.page import Page

__all__ = [
    "PIPELINE_GRAPH",
    "PageRun",
    "SiteRun",
    "SegmentationPipeline",
    "warm_tokens",
]


@dataclass
class PageRun:
    """Everything produced for one list page.

    Attributes:
        page: the list page.
        table: the observation table that was segmented.
        segmentation: the method's output.
        elapsed: segmentation wall-clock seconds (observation building
            included).
    """

    page: Page
    table: ObservationTable
    segmentation: Segmentation
    elapsed: float


@dataclass
class SiteRun:
    """A pipeline run over one site's sample.

    Attributes:
        method: the segmentation method used.
        template_verdict: outcome of template induction.
        pages: one :class:`PageRun` per surviving list page.
        crawl_health: retrieval-layer report when the sample came from
            a (possibly fault-injected) crawl; ``None`` for pristine
            samples handed in directly.
    """

    method: str
    template_verdict: TemplateVerdict
    pages: list[PageRun] = field(default_factory=list)
    crawl_health: CrawlHealth | None = None

    @property
    def whole_page_fallback(self) -> bool:
        """Did the site hit the template fallback (Table 4 note *b*)?"""
        return not self.template_verdict.ok


def _failed_verdict(reason: str, page_count: int) -> TemplateVerdict:
    """A verdict that routes every page to the whole-page fallback."""
    return TemplateVerdict(
        template=PageTemplate(aligned=(), page_count=page_count),
        ok=False,
        reason=reason,
    )


def _empty_segmentation(ctx: StageContext, **meta: Any) -> Segmentation:
    """The degradation ladder's single exit: no records, reason in meta."""
    return Segmentation(
        method=ctx["method"],
        records=[],
        table=ctx["observations"],
        meta=dict(meta),
    )


def _template_result_attrs(verdict: TemplateVerdict, ctx: StageContext) -> dict:
    attrs: dict = {"ok": verdict.ok}
    if not verdict.ok:
        attrs["reason"] = verdict.reason
    return attrs


def _build_pipeline_graph() -> StageGraph:
    """The paper's stage catalogue, declared as data.

    Context inputs the stages read (seeded by the drivers):

    * site scope — ``list_pages``, ``list_htmls``, ``config``,
      ``method``, ``method_config``, ``finder``, ``make_segmenter``;
    * page scope — ``index``, ``region``, ``details``, ``other_lists``;
    * tokenize scope — ``page``.
    """
    tokenize = Stage(
        name="tokenize",
        key=lambda ctx: (ctx["page"].html,),
        compute=lambda ctx: ctx["page"].tokens(),
        finalize=lambda tokens, ctx: ctx["page"].prime_tokens(tokens),
    )
    template = Stage(
        name="template",
        key=lambda ctx: (ctx["list_htmls"], ctx["config"].template),
        compute=lambda ctx: ctx["finder"].find(ctx["list_pages"]),
        span="pipeline.template",
        span_attrs=lambda ctx: {"pages": len(ctx["list_pages"])},
        result_attrs=_template_result_attrs,
        finalize=lambda verdict, ctx: ctx.set(
            "regions", resolve_table_regions(ctx["list_pages"], verdict)
        ),
        degradations=(
            # A single-page sample (the rest quarantined by the crawl)
            # skips induction entirely: it needs two pages.
            Degradation(
                label="single_list_page",
                condition=lambda ctx: len(ctx["list_pages"]) == 1,
                fallback=lambda error, ctx: _failed_verdict(
                    "only one list page survived the crawl; template "
                    "induction needs two",
                    page_count=1,
                ),
            ),
            # A raised template failure becomes the paper's
            # Section 6.2 whole-page fallback.
            Degradation(
                label="whole_page_template",
                exceptions=(TemplateNotFoundError, InsufficientPagesError),
                fallback=lambda error, ctx: _failed_verdict(
                    str(error), page_count=len(ctx["list_pages"])
                ),
            ),
        ),
    )
    extracts = Stage(
        name="extracts",
        deps=("template",),
        key=lambda ctx: (ctx["index"], ctx["config"].allowed_punct),
        compute=lambda ctx: extract_strings(
            ctx["region"], ctx["config"].allowed_punct
        ),
        span="pipeline.extracts",
        result_attrs=lambda extracts, ctx: {"count": len(extracts)},
        counters=lambda extracts, ctx: (("pipeline.extracts", len(extracts)),),
    )
    observations = Stage(
        name="observations",
        deps=("extracts",),
        key=lambda ctx: (
            [page.html for page in ctx["details"]],
            ctx["config"].match,
        ),
        compute=lambda ctx: ObservationTable.build(
            ctx["extracts"],
            ctx["details"],
            other_list_pages=ctx["other_lists"],
            options=ctx["config"].match,
            token_table=ctx["token_table"],
            obs=ctx["obs"],
        ),
        span="pipeline.observations",
        span_attrs=lambda ctx: {"detail_pages": len(ctx["details"])},
        result_attrs=lambda table, ctx: {
            "observations": len(table.observations)
        },
        counters=lambda table, ctx: (
            ("pipeline.observations", len(table.observations)),
        ),
    )
    segment = Stage(
        name="segment",
        deps=("observations",),
        key=lambda ctx: (ctx["method"], ctx["method_config"]),
        compute=lambda ctx: ctx["make_segmenter"]().segment(
            ctx["observations"]
        ),
        span="pipeline.segment",
        span_attrs=lambda ctx: {"method": ctx["method"]},
        result_attrs=lambda segmentation, ctx: {
            "records": len(segmentation.records)
        },
        counters=lambda segmentation, ctx: (
            ("pipeline.records", len(segmentation.records)),
        ),
        degradations=(
            # Nothing to segment at all.
            Degradation(
                condition=lambda ctx: not ctx["observations"].observations,
                fallback=lambda error, ctx: _empty_segmentation(
                    ctx, empty_problem=True
                ),
            ),
            # Segmenters may decide the problem is empty on criteria
            # stricter than "no observations" (e.g. every observation
            # filtered as unusable); degrade to an empty result.
            Degradation(
                exceptions=(EmptyProblemError,),
                fallback=lambda error, ctx: _empty_segmentation(
                    ctx, empty_problem=True
                ),
            ),
            # A page the method cannot segment (degenerate lattice from
            # an incomplete crawl, constraints unsatisfiable at every
            # relaxation level) is reported as a page of unsegmented
            # records — the paper's FN rows — not a crashed site run.
            Degradation(
                exceptions=(InferenceError, CspError),
                fallback=lambda error, ctx: _empty_segmentation(
                    ctx, segmenter_error=str(error)
                ),
            ),
        ),
    )
    return StageGraph((tokenize, template, extracts, observations, segment))


#: The shared stage graph every driver executes through: the pipeline
#: itself, the batch runner's workers (``tokenize`` pre-stage), the
#: online service's fallback path, and the experiment sweeps.
PIPELINE_GRAPH = _build_pipeline_graph()


def warm_tokens(pages: Iterable[Page], cache: Any) -> None:
    """Populate token streams through the declared ``tokenize`` stage.

    Tokenization is keyed on page bytes alone, so a warm stage cache
    hands every worker its token streams without re-lexing.  Without a
    cache this is a no-op (pages tokenize lazily on first use).
    """
    if cache is None:
        return
    for page in pages:
        PIPELINE_GRAPH.run(
            StageContext({"page": page}), targets=("tokenize",), cache=cache
        )


class SegmentationPipeline:
    """Site in, records out."""

    def __init__(
        self,
        method: str = "csp",
        config: PipelineConfig | None = None,
        obs: Observability | None = None,
        cache=None,
    ) -> None:
        if method not in METHODS:
            raise ConfigError(f"unknown method {method!r}; pick from {METHODS}")
        self.method = method
        self.config = config or PipelineConfig()
        self.obs = obs if obs is not None else current_obs()
        self.cache = cache
        self._finder = TemplateFinder(self.config.template)

    def _method_config(self):
        """The config slice that determines segmentation output."""
        if self.method == "csp":
            return self.config.csp
        if self.method == "hybrid":
            return (self.config.csp, self.config.prob)
        return self.config.prob

    def _make_segmenter(self):
        if self.method == "csp":
            return CspSegmenter(self.config.csp, obs=self.obs)
        if self.method == "hybrid":
            from repro.core.hybrid import HybridConfig, HybridSegmenter

            return HybridSegmenter(
                HybridConfig(csp=self.config.csp, prob=self.config.prob),
                obs=self.obs,
            )
        return ProbabilisticSegmenter(self.config.prob)

    def _site_context(
        self, list_pages: list[Page], crawl_health: CrawlHealth | None
    ) -> StageContext:
        """The site-scope stage context (see the graph's docstring)."""
        return StageContext(
            {
                "list_pages": list_pages,
                "list_htmls": [page.html for page in list_pages],
                "config": self.config,
                "method": self.method,
                "method_config": self._method_config(),
                "finder": self._finder,
                "make_segmenter": self._make_segmenter,
                # Site-scoped intern table: every list page's
                # observation build shares one id space and one set of
                # page reductions (detail pages double as other-list
                # context across pages of the same site).
                "token_table": self.config.match.make_table(),
                # The pipeline's bundle, for stages whose compute books
                # counters directly (the CLI threads obs explicitly and
                # never installs a global bundle).
                "obs": self.obs,
            },
            health=crawl_health,
        )

    def segment_site(
        self,
        list_pages: list[Page],
        detail_pages_per_list: list[list[Page]],
        crawl_health: CrawlHealth | None = None,
    ) -> SiteRun:
        """Run the full method over one site's sample.

        Args:
            list_pages: the sample list pages.  Two or more get the
                paper's setup; one is segmented under the whole-page
                fallback; zero yields an empty run (the crawl found
                nothing usable).
            detail_pages_per_list: for each list page, its detail
                pages in link order (index = record number).  Sets may
                be incomplete — missing detail pages shift record
                numbering and show up as crawl gaps, not errors.
            crawl_health: the retrieval layer's report, attached to
                the run and summarized into each segmentation's meta.
        """
        if len(list_pages) != len(detail_pages_per_list):
            raise ConfigError(
                "need one detail-page list per list page "
                f"({len(list_pages)} vs {len(detail_pages_per_list)})"
            )
        if not list_pages:
            if crawl_health is not None:
                crawl_health.fallbacks.append("empty_sample")
            return SiteRun(
                method=self.method,
                template_verdict=_failed_verdict(
                    "no list pages survived the crawl", page_count=0
                ),
                crawl_health=crawl_health,
            )
        obs = self.obs
        obs.counter("pipeline.sites").inc()
        # Caching engages only for pristine samples: degraded crawls
        # must run their health/fallback bookkeeping for real.
        cache = self.cache if crawl_health is None else None
        site_ctx = self._site_context(list_pages, crawl_health)
        with obs.span(
            "pipeline.segment_site",
            method=self.method,
            list_pages=len(list_pages),
        ) as site_span:
            PIPELINE_GRAPH.run(
                site_ctx, targets=("template",), obs=obs, cache=cache
            )
            verdict = site_ctx["template"]
            run = SiteRun(
                method=self.method,
                template_verdict=verdict,
                crawl_health=crawl_health,
            )

            for index, region in enumerate(site_ctx["regions"]):
                with obs.span(
                    "pipeline.page", index=index, url=region.page.url
                ) as page_span:
                    started = obs.clock.now()
                    page_ctx = site_ctx.child(
                        index=index,
                        region=region,
                        details=detail_pages_per_list[index],
                        other_lists=[
                            page
                            for position, page in enumerate(list_pages)
                            if position != index
                        ],
                    )
                    PIPELINE_GRAPH.run(
                        page_ctx, targets=("segment",), obs=obs, cache=cache
                    )
                    segmentation = page_ctx["segment"]
                    segmentation.meta.setdefault("template_ok", verdict.ok)
                    segmentation.meta.setdefault("whole_page", region.whole_page)
                    if crawl_health is not None:
                        segmentation.meta.setdefault(
                            "crawl",
                            {
                                "gap_count": crawl_health.gap_count,
                                "retries": crawl_health.retries,
                                "recovered": crawl_health.recovered,
                                "quarantined": len(
                                    crawl_health.quarantined_pages
                                ),
                                "budget_exhausted": crawl_health.budget_exhausted,
                            },
                        )
                    page_span.attributes["records"] = len(segmentation.records)
                    run.pages.append(
                        PageRun(
                            page=region.page,
                            table=page_ctx["observations"],
                            segmentation=segmentation,
                            elapsed=obs.clock.now() - started,
                        )
                    )
            obs.counter("pipeline.pages").inc(len(run.pages))
            site_span.attributes["pages"] = len(run.pages)
            site_span.attributes["template_ok"] = verdict.ok
        return run

    def segment_generated_site(
        self,
        site: GeneratedSite,
        *,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        budget: CrawlBudget | None = None,
    ) -> SiteRun:
        """Convenience wrapper for simulator sites.

        Without a fault plan the site's true pages are used directly
        (the pristine fast path).  With one, the sample is obtained by
        actually crawling the site through the resilient retrieval
        stack, and the run carries the resulting
        :class:`~repro.crawl.resilient.CrawlHealth`.
        """
        if fault_plan is None and retry is None and budget is None:
            return self.segment_site(
                site.list_pages,
                [site.detail_pages(index) for index in range(len(site.list_pages))],
            )
        from repro.crawl.crawler import crawl_site

        crawl = crawl_site(
            site,
            fault_plan=fault_plan,
            retry=retry,
            budget=budget,
            obs=self.obs,
        )
        return self.segment_site(
            crawl.list_pages,
            crawl.detail_pages_per_list,
            crawl_health=crawl.health,
        )

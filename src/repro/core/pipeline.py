"""The end-to-end segmentation pipeline (paper Section 3).

Given a site's sample list pages and, for each, its detail pages in
link order, :class:`SegmentationPipeline` runs the full method:

1. page-template induction over the list pages, with the whole-page
   fallback on failure (Sections 3.1, 6.2);
2. table-slot resolution and extract extraction (Section 3.2);
3. observation building: matching against detail pages, the
   all-lists/all-details filters, positions (Sections 3.2, 4.2);
4. record segmentation by the configured method — ``"csp"``
   (Section 4) or ``"prob"`` (Section 5);
5. the rest-of-the-data attachment rule (Section 6.2).

The pipeline never raises on a *degenerate page* (no extracts survive
the filters): it returns an empty segmentation with the reason in
``meta`` so corpus-wide runs always complete, mirroring how the paper
reports such pages as rows of unsegmented records.

The same best-effort stance extends to *degenerate samples* from
incomplete crawls: template failures (including a raised
:class:`~repro.core.exceptions.TemplateNotFoundError`) downgrade to the
whole-page fallback, a single surviving list page is segmented without
template induction, and a :class:`~repro.crawl.resilient.CrawlHealth`
report handed in by the crawl layer is carried on the
:class:`SiteRun` and summarized into every ``Segmentation.meta`` — so
evaluation can condition accuracy on crawl completeness.

Every stage is also *cacheable*: constructed with a ``cache`` (any
object with the :class:`~repro.runner.cache.StageCache` interface —
the pipeline itself depends on nothing in :mod:`repro.runner`), the
template / extracts / observations / segmentation stages are looked
up by a content fingerprint of their exact inputs (page bytes + the
stage's config slice) before being computed, so warm re-runs and
parameter sweeps skip the work upstream of the changed knob.  Caching
engages only for pristine samples: a run carrying a ``crawl_health``
report came through a (possibly fault-injected) crawl whose
degradation bookkeeping must actually execute, so it always computes.

The pipeline is fully instrumented: handed an
:class:`~repro.obs.Observability` bundle it emits a
``pipeline.segment_site`` span tree (template induction, then per
list page the extract / observation / segment stages, each with
counts in its attributes) and books stage totals into the metrics
registry — the per-stage cost profile ``docs/observability.md``
documents.  Without one it falls back to the installed default
(:func:`repro.obs.current`), which is a no-op unless the CLI's
``--trace``/``--metrics-out`` flags or the benchmark session profile
installed a live bundle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import METHODS, PipelineConfig
from repro.core.exceptions import (
    ConfigError,
    CspError,
    EmptyProblemError,
    InferenceError,
    InsufficientPagesError,
    TemplateNotFoundError,
)
from repro.core.results import Segmentation
from repro.crawl.resilient import CrawlBudget, CrawlHealth, RetryPolicy
from repro.csp.segmenter import CspSegmenter
from repro.extraction.extracts import extract_strings
from repro.extraction.observations import ObservationTable
from repro.obs import Observability, current as current_obs
from repro.prob.segmenter import ProbabilisticSegmenter
from repro.sitegen.faults import FaultPlan
from repro.sitegen.site import GeneratedSite
from repro.template.finder import TemplateFinder, TemplateVerdict
from repro.template.model import PageTemplate
from repro.template.table_slot import resolve_table_regions
from repro.webdoc.page import Page

__all__ = ["PageRun", "SiteRun", "SegmentationPipeline"]


@dataclass
class PageRun:
    """Everything produced for one list page.

    Attributes:
        page: the list page.
        table: the observation table that was segmented.
        segmentation: the method's output.
        elapsed: segmentation wall-clock seconds (observation building
            included).
    """

    page: Page
    table: ObservationTable
    segmentation: Segmentation
    elapsed: float


@dataclass
class SiteRun:
    """A pipeline run over one site's sample.

    Attributes:
        method: the segmentation method used.
        template_verdict: outcome of template induction.
        pages: one :class:`PageRun` per surviving list page.
        crawl_health: retrieval-layer report when the sample came from
            a (possibly fault-injected) crawl; ``None`` for pristine
            samples handed in directly.
    """

    method: str
    template_verdict: TemplateVerdict
    pages: list[PageRun] = field(default_factory=list)
    crawl_health: CrawlHealth | None = None

    @property
    def whole_page_fallback(self) -> bool:
        """Did the site hit the template fallback (Table 4 note *b*)?"""
        return not self.template_verdict.ok


def _failed_verdict(reason: str, page_count: int) -> TemplateVerdict:
    """A verdict that routes every page to the whole-page fallback."""
    return TemplateVerdict(
        template=PageTemplate(aligned=(), page_count=page_count),
        ok=False,
        reason=reason,
    )


class SegmentationPipeline:
    """Site in, records out."""

    def __init__(
        self,
        method: str = "csp",
        config: PipelineConfig | None = None,
        obs: Observability | None = None,
        cache=None,
    ) -> None:
        if method not in METHODS:
            raise ConfigError(f"unknown method {method!r}; pick from {METHODS}")
        self.method = method
        self.config = config or PipelineConfig()
        self.obs = obs if obs is not None else current_obs()
        self.cache = cache
        self._finder = TemplateFinder(self.config.template)

    def _method_config(self):
        """The config slice that determines segmentation output."""
        if self.method == "csp":
            return self.config.csp
        if self.method == "hybrid":
            return (self.config.csp, self.config.prob)
        return self.config.prob

    @staticmethod
    def _cached(cache, stage: str, parts, compute):
        """``compute()`` through the stage cache when one is wired."""
        if cache is None:
            return compute()
        return cache.get_or_compute(stage, parts, compute)

    def _make_segmenter(self):
        if self.method == "csp":
            return CspSegmenter(self.config.csp, obs=self.obs)
        if self.method == "hybrid":
            from repro.core.hybrid import HybridConfig, HybridSegmenter

            return HybridSegmenter(
                HybridConfig(csp=self.config.csp, prob=self.config.prob),
                obs=self.obs,
            )
        return ProbabilisticSegmenter(self.config.prob)

    def _find_template(
        self, list_pages: list[Page], health: CrawlHealth | None
    ) -> TemplateVerdict:
        """Template induction downgraded to best-effort.

        Degradation ladder: a full sample gets real induction; a
        raised template failure becomes the paper's whole-page
        fallback; a single-page sample (the rest quarantined by the
        crawl) skips induction entirely.
        """
        if len(list_pages) == 1:
            if health is not None:
                health.fallbacks.append("single_list_page")
            return _failed_verdict(
                "only one list page survived the crawl; template "
                "induction needs two",
                page_count=1,
            )
        try:
            return self._finder.find(list_pages)
        except (TemplateNotFoundError, InsufficientPagesError) as error:
            if health is not None:
                health.fallbacks.append("whole_page_template")
            return _failed_verdict(str(error), page_count=len(list_pages))

    def segment_site(
        self,
        list_pages: list[Page],
        detail_pages_per_list: list[list[Page]],
        crawl_health: CrawlHealth | None = None,
    ) -> SiteRun:
        """Run the full method over one site's sample.

        Args:
            list_pages: the sample list pages.  Two or more get the
                paper's setup; one is segmented under the whole-page
                fallback; zero yields an empty run (the crawl found
                nothing usable).
            detail_pages_per_list: for each list page, its detail
                pages in link order (index = record number).  Sets may
                be incomplete — missing detail pages shift record
                numbering and show up as crawl gaps, not errors.
            crawl_health: the retrieval layer's report, attached to
                the run and summarized into each segmentation's meta.
        """
        if len(list_pages) != len(detail_pages_per_list):
            raise ConfigError(
                "need one detail-page list per list page "
                f"({len(list_pages)} vs {len(detail_pages_per_list)})"
            )
        if not list_pages:
            if crawl_health is not None:
                crawl_health.fallbacks.append("empty_sample")
            return SiteRun(
                method=self.method,
                template_verdict=_failed_verdict(
                    "no list pages survived the crawl", page_count=0
                ),
                crawl_health=crawl_health,
            )
        obs = self.obs
        obs.counter("pipeline.sites").inc()
        # Caching engages only for pristine samples: degraded crawls
        # must run their health/fallback bookkeeping for real.
        cache = self.cache if crawl_health is None else None
        list_htmls = [page.html for page in list_pages]
        with obs.span(
            "pipeline.segment_site",
            method=self.method,
            list_pages=len(list_pages),
        ) as site_span:
            with obs.span(
                "pipeline.template", pages=len(list_pages)
            ) as template_span:
                verdict = self._cached(
                    cache,
                    "template",
                    (list_htmls, self.config.template),
                    lambda: self._find_template(list_pages, crawl_health),
                )
                template_span.attributes["ok"] = verdict.ok
                if not verdict.ok:
                    template_span.attributes["reason"] = verdict.reason
                regions = resolve_table_regions(list_pages, verdict)
            run = SiteRun(
                method=self.method,
                template_verdict=verdict,
                crawl_health=crawl_health,
            )

            for index, region in enumerate(regions):
                with obs.span(
                    "pipeline.page", index=index, url=region.page.url
                ) as page_span:
                    started = obs.clock.now()
                    # Each stage key extends the previous stage's key
                    # material with its own inputs, so a downstream
                    # knob change invalidates only downstream stages.
                    extract_parts = (
                        list_htmls,
                        self.config.template,
                        index,
                        self.config.allowed_punct,
                    )
                    with obs.span("pipeline.extracts") as extract_span:
                        extracts = self._cached(
                            cache,
                            "extracts",
                            extract_parts,
                            lambda: extract_strings(
                                region, self.config.allowed_punct
                            ),
                        )
                        extract_span.attributes["count"] = len(extracts)
                    obs.counter("pipeline.extracts").inc(len(extracts))
                    other_lists = [
                        page
                        for position, page in enumerate(list_pages)
                        if position != index
                    ]
                    observe_parts = (
                        *extract_parts,
                        [p.html for p in detail_pages_per_list[index]],
                        self.config.match,
                    )
                    with obs.span(
                        "pipeline.observations",
                        detail_pages=len(detail_pages_per_list[index]),
                    ) as observe_span:
                        table = self._cached(
                            cache,
                            "observations",
                            observe_parts,
                            lambda: ObservationTable.build(
                                extracts,
                                detail_pages_per_list[index],
                                other_list_pages=other_lists,
                                options=self.config.match,
                            ),
                        )
                        observe_span.attributes["observations"] = len(
                            table.observations
                        )
                    obs.counter("pipeline.observations").inc(
                        len(table.observations)
                    )
                    with obs.span(
                        "pipeline.segment", method=self.method
                    ) as segment_span:
                        segmentation = self._cached(
                            cache,
                            "segment",
                            (
                                *observe_parts,
                                self.method,
                                self._method_config(),
                            ),
                            lambda: self._segment_table(table),
                        )
                        segment_span.attributes["records"] = len(
                            segmentation.records
                        )
                    obs.counter("pipeline.records").inc(
                        len(segmentation.records)
                    )
                    segmentation.meta.setdefault("template_ok", verdict.ok)
                    segmentation.meta.setdefault("whole_page", region.whole_page)
                    if crawl_health is not None:
                        segmentation.meta.setdefault(
                            "crawl",
                            {
                                "gap_count": crawl_health.gap_count,
                                "retries": crawl_health.retries,
                                "recovered": crawl_health.recovered,
                                "quarantined": len(
                                    crawl_health.quarantined_pages
                                ),
                                "budget_exhausted": crawl_health.budget_exhausted,
                            },
                        )
                    page_span.attributes["records"] = len(segmentation.records)
                    run.pages.append(
                        PageRun(
                            page=region.page,
                            table=table,
                            segmentation=segmentation,
                            elapsed=obs.clock.now() - started,
                        )
                    )
            obs.counter("pipeline.pages").inc(len(run.pages))
            site_span.attributes["pages"] = len(run.pages)
            site_span.attributes["template_ok"] = verdict.ok
        return run

    def segment_generated_site(
        self,
        site: GeneratedSite,
        *,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        budget: CrawlBudget | None = None,
    ) -> SiteRun:
        """Convenience wrapper for simulator sites.

        Without a fault plan the site's true pages are used directly
        (the pristine fast path).  With one, the sample is obtained by
        actually crawling the site through the resilient retrieval
        stack, and the run carries the resulting
        :class:`~repro.crawl.resilient.CrawlHealth`.
        """
        if fault_plan is None and retry is None and budget is None:
            return self.segment_site(
                site.list_pages,
                [site.detail_pages(index) for index in range(len(site.list_pages))],
            )
        from repro.crawl.crawler import crawl_site

        crawl = crawl_site(
            site,
            fault_plan=fault_plan,
            retry=retry,
            budget=budget,
            obs=self.obs,
        )
        return self.segment_site(
            crawl.list_pages,
            crawl.detail_pages_per_list,
            crawl_health=crawl.health,
        )

    def _segment_table(self, table: ObservationTable) -> Segmentation:
        if not table.observations:
            return Segmentation(
                method=self.method,
                records=[],
                table=table,
                meta={"empty_problem": True},
            )
        segmenter = self._make_segmenter()
        try:
            return segmenter.segment(table)
        except EmptyProblemError:
            # Segmenters may decide the problem is empty on criteria
            # stricter than "no observations" (e.g. every observation
            # filtered as unusable); degrade to an empty result.
            return Segmentation(
                method=self.method,
                records=[],
                table=table,
                meta={"empty_problem": True},
            )
        except (InferenceError, CspError) as error:
            # A page the method cannot segment (degenerate lattice from
            # an incomplete crawl, constraints unsatisfiable at every
            # relaxation level) is reported as a page of unsegmented
            # records — the paper's FN rows — not a crashed site run.
            return Segmentation(
                method=self.method,
                records=[],
                table=table,
                meta={"segmenter_error": str(error)},
            )

"""The end-to-end segmentation pipeline (paper Section 3).

Given a site's sample list pages and, for each, its detail pages in
link order, :class:`SegmentationPipeline` runs the full method:

1. page-template induction over the list pages, with the whole-page
   fallback on failure (Sections 3.1, 6.2);
2. table-slot resolution and extract extraction (Section 3.2);
3. observation building: matching against detail pages, the
   all-lists/all-details filters, positions (Sections 3.2, 4.2);
4. record segmentation by the configured method — ``"csp"``
   (Section 4) or ``"prob"`` (Section 5);
5. the rest-of-the-data attachment rule (Section 6.2).

The pipeline never raises on a *degenerate page* (no extracts survive
the filters): it returns an empty segmentation with the reason in
``meta`` so corpus-wide runs always complete, mirroring how the paper
reports such pages as rows of unsegmented records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.core.config import METHODS, PipelineConfig
from repro.core.exceptions import ConfigError, EmptyProblemError
from repro.core.results import Segmentation
from repro.csp.segmenter import CspSegmenter
from repro.extraction.extracts import extract_strings
from repro.extraction.observations import ObservationTable
from repro.prob.segmenter import ProbabilisticSegmenter
from repro.sitegen.site import GeneratedSite
from repro.template.finder import TemplateFinder, TemplateVerdict
from repro.template.table_slot import resolve_table_regions
from repro.webdoc.page import Page

__all__ = ["PageRun", "SiteRun", "SegmentationPipeline"]


@dataclass
class PageRun:
    """Everything produced for one list page.

    Attributes:
        page: the list page.
        table: the observation table that was segmented.
        segmentation: the method's output.
        elapsed: segmentation wall-clock seconds (observation building
            included).
    """

    page: Page
    table: ObservationTable
    segmentation: Segmentation
    elapsed: float


@dataclass
class SiteRun:
    """A pipeline run over one site's sample."""

    method: str
    template_verdict: TemplateVerdict
    pages: list[PageRun] = field(default_factory=list)

    @property
    def whole_page_fallback(self) -> bool:
        """Did the site hit the template fallback (Table 4 note *b*)?"""
        return not self.template_verdict.ok


class SegmentationPipeline:
    """Site in, records out."""

    def __init__(
        self, method: str = "csp", config: PipelineConfig | None = None
    ) -> None:
        if method not in METHODS:
            raise ConfigError(f"unknown method {method!r}; pick from {METHODS}")
        self.method = method
        self.config = config or PipelineConfig()
        self._finder = TemplateFinder(self.config.template)

    def _make_segmenter(self):
        if self.method == "csp":
            return CspSegmenter(self.config.csp)
        if self.method == "hybrid":
            from repro.core.hybrid import HybridConfig, HybridSegmenter

            return HybridSegmenter(
                HybridConfig(csp=self.config.csp, prob=self.config.prob)
            )
        return ProbabilisticSegmenter(self.config.prob)

    def segment_site(
        self,
        list_pages: list[Page],
        detail_pages_per_list: list[list[Page]],
    ) -> SiteRun:
        """Run the full method over one site's sample.

        Args:
            list_pages: the sample list pages (>= 2).
            detail_pages_per_list: for each list page, its detail
                pages in link order (index = record number).
        """
        if len(list_pages) != len(detail_pages_per_list):
            raise ConfigError(
                "need one detail-page list per list page "
                f"({len(list_pages)} vs {len(detail_pages_per_list)})"
            )
        verdict = self._finder.find(list_pages)
        regions = resolve_table_regions(list_pages, verdict)
        run = SiteRun(method=self.method, template_verdict=verdict)

        for index, region in enumerate(regions):
            started = perf_counter()
            extracts = extract_strings(region, self.config.allowed_punct)
            other_lists = [
                page for position, page in enumerate(list_pages) if position != index
            ]
            table = ObservationTable.build(
                extracts,
                detail_pages_per_list[index],
                other_list_pages=other_lists,
                options=self.config.match,
            )
            segmentation = self._segment_table(table)
            segmentation.meta.setdefault("template_ok", verdict.ok)
            segmentation.meta.setdefault("whole_page", region.whole_page)
            run.pages.append(
                PageRun(
                    page=region.page,
                    table=table,
                    segmentation=segmentation,
                    elapsed=perf_counter() - started,
                )
            )
        return run

    def segment_generated_site(self, site: GeneratedSite) -> SiteRun:
        """Convenience wrapper for simulator sites."""
        return self.segment_site(
            site.list_pages,
            [site.detail_pages(index) for index in range(len(site.list_pages))],
        )

    def _segment_table(self, table: ObservationTable) -> Segmentation:
        if not table.observations:
            return Segmentation(
                method=self.method,
                records=[],
                table=table,
                meta={"empty_problem": True},
            )
        segmenter = self._make_segmenter()
        try:
            return segmenter.segment(table)
        except EmptyProblemError:  # pragma: no cover - guarded above
            return Segmentation(
                method=self.method,
                records=[],
                table=table,
                meta={"empty_problem": True},
            )

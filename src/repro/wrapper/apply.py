"""Applying a learned wrapper to unseen list pages.

No detail pages are needed: the wrapper locates the table slot via the
stored page template, splits it into rows at the learned boundary
pattern, and labels each row's extracts with the column whose learned
type profile fits best (order-preserving).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extraction.extracts import Extract, extract_strings
from repro.tokens.tokenizer import Token
from repro.tokens.types import NUM_TOKEN_TYPES, type_vector
from repro.webdoc.page import Page
from repro.wrapper.induce import RowWrapper

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sitegen.site import ListPageTruth

__all__ = ["WrappedRow", "apply_wrapper", "score_wrapped_rows"]


@dataclass
class WrappedRow:
    """One record extracted by the wrapper (no detail pages involved).

    Attributes:
        index: row position on the page.
        extracts: the row's extracts, in page order.
        columns: column label per extract (parallel to ``extracts``).
    """

    index: int
    extracts: list[Extract]
    columns: list[int]

    @property
    def texts(self) -> list[str]:
        return [extract.text for extract in self.extracts]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"row{self.index}: " + " | ".join(self.texts)


def _table_region(wrapper: RowWrapper, page: Page) -> list[Token]:
    """The unseen page's table region (template slot or whole page)."""
    tokens = page.tokens()
    if wrapper.table_slot_id is None or not wrapper.template.aligned:
        return list(tokens)
    positions = wrapper.template.locate(tokens)
    if positions is None:
        return list(tokens)
    slot = wrapper.table_slot_id
    start = 0 if slot == 0 else positions[slot - 1] + 1
    end = len(tokens) if slot >= len(positions) else positions[slot]
    return list(tokens[start:end])


def _boundary_positions(
    tokens: list[Token], boundary: tuple[str, ...]
) -> list[int]:
    """Indices (into ``tokens``) right after each boundary occurrence."""
    texts = [token.text for token in tokens]
    length = len(boundary)
    positions: list[int] = []
    for start in range(len(texts) - length + 1):
        if tuple(texts[start : start + length]) == boundary:
            positions.append(start + length)
    return positions


def _signature(extract: Extract) -> np.ndarray:
    merged = np.zeros(NUM_TOKEN_TYPES)
    for token in extract.tokens:
        merged = np.maximum(merged, np.array(type_vector(token.types)))
    return merged


def _label_columns(
    extracts: list[Extract], profiles: np.ndarray
) -> list[int]:
    """Order-preserving best-profile column labels for one row.

    Columns must increase along the row; each extract takes the best
    remaining column by profile distance (greedy, which is exact here
    because profiles are ordered like the schema).
    """
    k = len(profiles)
    columns: list[int] = []
    next_column = 0
    for position, extract in enumerate(extracts):
        remaining_needed = len(extracts) - position - 1
        high = max(next_column, k - 1 - remaining_needed)
        candidates = range(next_column, min(high, k - 1) + 1)
        signature = _signature(extract)
        best = min(
            candidates,
            key=lambda c: float(np.abs(signature - profiles[c]).mean()),
            default=min(next_column, k - 1),
        )
        columns.append(best)
        next_column = best + 1
    return columns


def apply_wrapper(wrapper: RowWrapper, page: Page) -> list[WrappedRow]:
    """Extract records from an unseen list page.

    Returns the wrapped rows in page order; an empty list when the
    boundary pattern does not occur (the page is probably not from
    this site's template).
    """
    region = _table_region(wrapper, page)
    if not region:
        return []
    starts = _boundary_positions(region, wrapper.boundary)
    if not starts:
        return []

    rows: list[WrappedRow] = []
    for row_index, start in enumerate(starts):
        if row_index + 1 < len(starts):
            # Stop before the next row's boundary tags.
            stop = starts[row_index + 1] - len(wrapper.boundary)
        else:
            stop = len(region)
        extracts = extract_strings(list(region[start:stop]))
        if not extracts:
            continue
        columns = _label_columns(extracts, wrapper.column_profiles)
        rows.append(
            WrappedRow(index=len(rows), extracts=extracts, columns=columns)
        )
    return rows


def score_wrapped_rows(
    rows: list[WrappedRow], truth: "ListPageTruth"
) -> tuple[int, int]:
    """(correct, total) wrapped rows against ground truth.

    A wrapped row is correct when every one of its extracts falls
    inside exactly one true record's character span (the extracts
    carry their source offsets) and the row's text covers all of that
    record's list-view field values.
    """
    correct = 0
    for row in rows:
        touched: set[int] = set()
        for extract in row.extracts:
            true_row = truth.row_of_offset(extract.tokens[0].start)
            if true_row is not None:
                touched.add(true_row.record_index)
        if len(touched) != 1:
            continue
        (record_index,) = touched
        joined = " | ".join(row.texts)
        values = truth.rows[record_index].values
        if all(value in joined for value in values.values()):
            correct += 1
    return correct, len(truth.rows)

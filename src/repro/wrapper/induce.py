"""Inducing a row wrapper from one segmented list page.

A :class:`RowWrapper` captures what one successful detail-page-driven
segmentation teaches about a site's list layout:

* the **page template** (to locate the table slot on unseen pages);
* the **boundary pattern** — the sequence of tag tokens immediately
  preceding each record's first extract.  On template-generated pages
  this is identical for every row (``</tr><tr><td><a>``-style), so the
  most common pattern across the segmented records generalizes;
* **column profiles** — the token-type signature of each column,
  learned from the segmentation's column labels, used to label the
  extracts of wrapped rows.

Induction needs nothing beyond one :class:`SiteRun` page; application
(:mod:`repro.wrapper.apply`) needs no detail pages at all.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ExtractionError
from repro.core.pipeline import PageRun
from repro.template.finder import TemplateVerdict
from repro.template.model import PageTemplate
from repro.tokens.tokenizer import Token
from repro.tokens.types import NUM_TOKEN_TYPES, type_vector

__all__ = ["RowWrapper", "induce_wrapper"]


@dataclass(frozen=True)
class RowWrapper:
    """A learned list-page wrapper for one site.

    Attributes:
        template: the site's page template (may be empty when the
            sample used the whole-page fallback).
        table_slot_id: the template slot holding the table, or None.
        boundary: the tag-token texts that precede each record's first
            extract, innermost last.
        column_profiles: [k, 8] mean token-type signatures per column.
    """

    template: PageTemplate
    table_slot_id: int | None
    boundary: tuple[str, ...]
    column_profiles: np.ndarray

    @property
    def k(self) -> int:
        return len(self.column_profiles)


def _preceding_tags(
    tokens: list[Token], start_index: int, depth: int
) -> tuple[str, ...]:
    """Up to ``depth`` consecutive tag tokens right before a position."""
    tags: list[str] = []
    cursor = start_index - 1
    while cursor >= 0 and len(tags) < depth and tokens[cursor].is_html:
        tags.append(tokens[cursor].text)
        cursor -= 1
    tags.reverse()
    return tuple(tags)


def induce_wrapper(
    page_run: PageRun,
    verdict: TemplateVerdict,
    boundary_depth: int = 3,
) -> RowWrapper:
    """Learn a :class:`RowWrapper` from one segmented page.

    Args:
        page_run: a pipeline page result whose segmentation will be
            generalized.
        verdict: the template verdict of the pipeline run (carries the
            template and table slot).
        boundary_depth: how many preceding tag tokens form the
            boundary pattern.

    Raises:
        ExtractionError: the segmentation has no records to learn from.
    """
    segmentation = page_run.segmentation
    if not segmentation.records:
        raise ExtractionError("cannot induce a wrapper from zero records")

    tokens = page_run.page.tokens()

    # Boundary: majority preceding-tag pattern over record starts.
    patterns = Counter()
    for record in segmentation.records:
        first = record.observations[0]
        pattern = _preceding_tags(
            tokens, first.extract.start_token_index, boundary_depth
        )
        if pattern:
            patterns[pattern] += 1
    if not patterns:
        raise ExtractionError("no tag context before any record start")
    boundary = patterns.most_common(1)[0][0]

    # Column profiles from the segmentation's own labels (positional
    # fallback when the segmenter produced none).
    k = 0
    for record in segmentation.records:
        if record.columns:
            k = max(k, max(record.columns.values()) + 1)
        else:
            k = max(k, len(record.observations))
    sums = np.zeros((k, NUM_TOKEN_TYPES))
    counts = np.zeros(k)
    for record in segmentation.records:
        for position, observation in enumerate(record.observations):
            column = (
                record.columns.get(observation.seq, position)
                if record.columns
                else position
            )
            column = min(column, k - 1)
            merged = np.zeros(NUM_TOKEN_TYPES)
            for token in observation.extract.tokens:
                merged = np.maximum(merged, np.array(type_vector(token.types)))
            sums[column] += merged
            counts[column] += 1
    profiles = np.where(
        counts[:, None] > 0, sums / np.maximum(counts[:, None], 1), 0.5
    )

    return RowWrapper(
        template=verdict.template,
        table_slot_id=verdict.table_slot_id if verdict.ok else None,
        boundary=boundary,
        column_profiles=profiles,
    )

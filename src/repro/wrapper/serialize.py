"""JSON-safe serialization of :class:`~repro.wrapper.induce.RowWrapper`.

A wrapper is the unit the online serving layer caches per site: it has
to survive a round trip through the on-disk
:class:`~repro.runner.cache.StageCache` (and, being plain JSON-ready
data, through any other store) without depending on pickle's class
identity.  ``wrapper_to_dict`` therefore flattens the wrapper into
primitives only — the template's aligned tokens as
``{text, positions, is_html}`` dicts, the column profiles as nested
lists — and ``wrapper_from_dict`` rebuilds a structurally identical
:class:`RowWrapper`.

A ``version`` field guards the format: loading a dict written by an
incompatible future layout raises :class:`WrapperFormatError` instead
of resurrecting a subtly wrong wrapper.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.exceptions import ReproError
from repro.template.alignment import AlignedToken
from repro.template.model import PageTemplate
from repro.wrapper.induce import RowWrapper

__all__ = ["WrapperFormatError", "wrapper_from_dict", "wrapper_to_dict"]

#: Current on-disk wrapper format version.
WRAPPER_FORMAT_VERSION = 1


class WrapperFormatError(ReproError):
    """A serialized wrapper is malformed or from an unknown version."""


def wrapper_to_dict(wrapper: RowWrapper) -> dict[str, Any]:
    """Flatten ``wrapper`` into JSON-compatible primitives."""
    return {
        "version": WRAPPER_FORMAT_VERSION,
        "table_slot_id": wrapper.table_slot_id,
        "boundary": list(wrapper.boundary),
        "column_profiles": [
            [float(value) for value in row] for row in wrapper.column_profiles
        ],
        "template": {
            "page_count": wrapper.template.page_count,
            "aligned": [
                {
                    "text": token.text,
                    "positions": list(token.positions),
                    "is_html": token.is_html,
                }
                for token in wrapper.template.aligned
            ],
        },
    }


def wrapper_from_dict(data: dict[str, Any]) -> RowWrapper:
    """Rebuild a :class:`RowWrapper` from its :func:`wrapper_to_dict` form.

    Raises:
        WrapperFormatError: unknown version or missing/malformed fields.
    """
    if not isinstance(data, dict):
        raise WrapperFormatError(f"expected a dict, got {type(data).__name__}")
    version = data.get("version")
    if version != WRAPPER_FORMAT_VERSION:
        raise WrapperFormatError(
            f"unsupported wrapper format version {version!r} "
            f"(expected {WRAPPER_FORMAT_VERSION})"
        )
    try:
        template_data = data["template"]
        aligned = tuple(
            AlignedToken(
                text=str(token["text"]),
                positions=tuple(int(p) for p in token["positions"]),
                is_html=bool(token["is_html"]),
            )
            for token in template_data["aligned"]
        )
        template = PageTemplate(
            aligned=aligned, page_count=int(template_data["page_count"])
        )
        slot = data["table_slot_id"]
        profiles = np.asarray(data["column_profiles"], dtype=float)
        if profiles.size and profiles.ndim != 2:
            raise WrapperFormatError(
                f"column_profiles must be 2-D, got shape {profiles.shape}"
            )
        return RowWrapper(
            template=template,
            table_slot_id=None if slot is None else int(slot),
            boundary=tuple(str(tag) for tag in data["boundary"]),
            column_profiles=profiles,
        )
    except WrapperFormatError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise WrapperFormatError(f"malformed wrapper dict: {error}") from error

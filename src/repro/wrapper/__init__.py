"""Wrapper induction from one segmented sample.

The paper's motivating scenario (Sections 1, 3) is programmatic access
to a whole site, but its method needs each list page's detail pages.
This subpackage closes the loop: from one list page segmented *with*
detail pages, induce a :class:`~repro.wrapper.induce.RowWrapper` — a
record-boundary pattern plus column profiles — and apply it to further
list pages of the same site *without fetching any detail pages*.
(This is the wrapper the paper's own wrapper-induction lineage, Lerman
et al. JAIR 2003, would maintain; here it is bootstrapped fully
automatically.)

Wrappers also cross process and disk boundaries (the online service
caches one per site): :mod:`~repro.wrapper.serialize` flattens them
to JSON-safe dicts and back, with a versioned format guard.
"""

from repro.wrapper.apply import WrappedRow, apply_wrapper, score_wrapped_rows
from repro.wrapper.induce import RowWrapper, induce_wrapper
from repro.wrapper.serialize import (
    WrapperFormatError,
    wrapper_from_dict,
    wrapper_to_dict,
)

__all__ = [
    "RowWrapper",
    "WrappedRow",
    "WrapperFormatError",
    "apply_wrapper",
    "induce_wrapper",
    "score_wrapped_rows",
    "wrapper_from_dict",
    "wrapper_to_dict",
]

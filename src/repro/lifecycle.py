"""Cross-layer invalidation: one notion of freshness for the system.

Every downstream layer caches something derived from a site's
template: the relational store holds its segmented rows, the serving
registry holds its induced wrapper (in memory and on disk).  When
incremental re-ingest (:mod:`repro.ingest.diff`) declares a bundle
stale — its pages changed, vanished, or got re-wired — those derived
artifacts are wrong *now*, whether or not anything re-segments later.

:func:`invalidate_consumers` is the single place that knowledge
propagates from.  For every stale site id it:

* drops the store rows via
  :meth:`~repro.store.db.RelationalStore.remove_site` (cascading
  cells / columns / site row, orphaned catalog attributes pruned), so
  ``/query`` stops returning data from a dead template immediately;
* invalidates the cached wrapper for every method via
  :meth:`~repro.serve.registry.WrapperRegistry.invalidate` with
  ``disk=True``, so neither this process nor a restarted one can
  serve with a wrapper induced from the old template.

Both consumers are optional — batch users may have no store, offline
users no registry — and invalidating a site nobody ever ingested is
a no-op, so re-ingest drivers call this unconditionally for every
stale bundle.  The outcome is returned as an
:class:`InvalidationReport` and booked under ``lifecycle.*``
counters; ``docs/ingestion.md`` carries the full what-changed →
what-is-dropped matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.config import METHODS
from repro.obs import Observability, current

__all__ = ["InvalidationReport", "invalidate_consumers"]


@dataclass
class InvalidationReport:
    """What one invalidation pass actually dropped.

    Attributes:
        sites: the stale site ids processed, sorted.
        store: summed per-table delete counts from
            :meth:`~repro.store.db.RelationalStore.remove_site`
            (None when no store was wired).
        store_sites_removed: sites that actually had store rows.
        wrappers_invalidated: (site, method) wrapper entries dropped
            from the registry, either tier.
    """

    sites: tuple[str, ...]
    store: dict[str, int] | None = None
    store_sites_removed: int = 0
    wrappers_invalidated: int = 0
    errors: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "sites": list(self.sites),
            "store": self.store,
            "store_sites_removed": self.store_sites_removed,
            "wrappers_invalidated": self.wrappers_invalidated,
            "errors": list(self.errors),
        }


def invalidate_consumers(
    site_ids: Iterable[str],
    store=None,
    registry=None,
    methods: Sequence[str] = METHODS,
    obs: Observability | None = None,
) -> InvalidationReport:
    """Drop every derived artifact of the given stale site ids.

    Args:
        site_ids: stale bundle/site names (duplicates collapsed).
            Bundle names are store site ids: ``segment-dir --store``
            keys rows by the bundle directory name.
        store: a :class:`~repro.store.db.RelationalStore` (or None).
            Store failures are collected into ``errors`` rather than
            raised — a broken store must not stop wrapper
            invalidation.
        registry: a :class:`~repro.serve.registry.WrapperRegistry`
            (or None); invalidated with ``disk=True`` per method.
        methods: the segmenter methods whose wrappers to drop.
        obs: observability bundle for the ``lifecycle.*`` counters.
    """
    from repro.store.db import StoreError  # local: store is optional

    obs = obs if obs is not None else current()
    sites = tuple(sorted(set(site_ids)))
    report = InvalidationReport(sites=sites)
    if store is not None:
        report.store = {"sites": 0, "columns": 0, "cells": 0, "attributes": 0}

    with obs.span("lifecycle.invalidate", sites=len(sites)) as span:
        for site in sites:
            if store is not None:
                try:
                    removed = store.remove_site(site)
                except StoreError as error:
                    report.errors.append(f"store: {site}: {error}")
                else:
                    for key, count in removed.items():
                        report.store[key] += count
                    if removed["sites"]:
                        report.store_sites_removed += 1
            if registry is not None:
                for method in methods:
                    if registry.invalidate(site, method, disk=True):
                        report.wrappers_invalidated += 1
        span.attributes["store_sites"] = report.store_sites_removed
        span.attributes["wrappers"] = report.wrappers_invalidated

    obs.counter("lifecycle.sites").inc(len(sites))
    if report.store_sites_removed:
        obs.counter("lifecycle.store_sites_removed").inc(
            report.store_sites_removed
        )
    if report.wrappers_invalidated:
        obs.counter("lifecycle.wrappers_invalidated").inc(
            report.wrappers_invalidated
        )
    return report

"""Separator-tolerant matching of extracts against detail pages.

The paper's footnote 1 defines the matcher:

    "The string matching algorithm ignores intervening separators on
    detail pages.  For example, a string 'FirstName LastName' on [a]
    list page will be matched to 'FirstName <br>LastName' on the
    detail page."

Concretely: a detail page is reduced to its sequence of non-separator
tokens, and an extract matches wherever its token-text sequence occurs
contiguously in that reduced sequence.  Matching is **case-sensitive**
by default — the paper reports that a case mismatch between list and
detail values on the Minnesota Corrections site broke the match, which
only happens under case-sensitive comparison.  A ``casefold`` option is
provided for ablation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.tokens.tokenizer import DEFAULT_ALLOWED_PUNCT, Token, is_separator
from repro.webdoc.page import Page

__all__ = ["MatchOptions", "PageIndex", "find_occurrences"]


@dataclass(frozen=True)
class MatchOptions:
    """Matching behaviour knobs.

    Attributes:
        casefold: compare token texts case-insensitively (ablation
            only; the paper's matcher is case-sensitive).
        allowed_punct: the punctuation set defining separators; must
            agree with the tokenizer's.
    """

    casefold: bool = False
    allowed_punct: frozenset[str] = DEFAULT_ALLOWED_PUNCT

    def key(self, text: str) -> str:
        """Normalize one token text for comparison."""
        return text.casefold() if self.casefold else text


class PageIndex:
    """A detail page pre-processed for fast repeated matching.

    Builds the reduced (separator-free) token sequence once, plus an
    inverted index from first-token text to candidate start offsets, so
    that matching N extracts against K pages is close to linear in the
    number of true occurrences.
    """

    def __init__(self, page: Page, options: MatchOptions | None = None) -> None:
        self.page = page
        self.options = options or MatchOptions()
        self._reduced: list[Token] = [
            token
            for token in page.tokens()
            if not is_separator(token, self.options.allowed_punct)
        ]
        self._keys: list[str] = [
            self.options.key(token.text) for token in self._reduced
        ]
        self._starts: dict[str, list[int]] = defaultdict(list)
        for offset, key in enumerate(self._keys):
            self._starts[key].append(offset)

    @property
    def reduced_tokens(self) -> list[Token]:
        """The page's non-separator tokens, in order."""
        return self._reduced

    def occurrences(self, texts: tuple[str, ...]) -> list[int]:
        """All start positions of ``texts`` in the reduced sequence.

        Positions are reported as the *original* token index of the
        occurrence's first token in the detail page's full stream —
        this is the paper's ``pos_j^k`` (Table 3).
        """
        if not texts:
            return []
        keys = [self.options.key(text) for text in texts]
        length = len(keys)
        positions: list[int] = []
        for start in self._starts.get(keys[0], ()):
            if start + length > len(self._keys):
                continue
            if self._keys[start : start + length] == keys:
                positions.append(self._reduced[start].index)
        return positions

    def contains(self, texts: tuple[str, ...]) -> bool:
        """Does the page contain ``texts`` at least once?"""
        return bool(self.occurrences(texts))


def find_occurrences(
    texts: tuple[str, ...],
    pages: list[Page],
    options: MatchOptions | None = None,
) -> dict[int, list[int]]:
    """Occurrences of a token-text sequence on each of ``pages``.

    Convenience wrapper for one-off queries; bulk matching should build
    :class:`PageIndex` objects once and reuse them.

    Returns a mapping from page index to start positions (empty pages
    are omitted).
    """
    options = options or MatchOptions()
    result: dict[int, list[int]] = {}
    for page_number, page in enumerate(pages):
        positions = PageIndex(page, options).occurrences(texts)
        if positions:
            result[page_number] = positions
    return result

"""Separator-tolerant matching of extracts against detail pages.

The paper's footnote 1 defines the matcher:

    "The string matching algorithm ignores intervening separators on
    detail pages.  For example, a string 'FirstName LastName' on [a]
    list page will be matched to 'FirstName <br>LastName' on the
    detail page."

Concretely: a detail page is reduced to its sequence of non-separator
tokens, and an extract matches wherever its token-text sequence occurs
contiguously in that reduced sequence.  Matching is **case-sensitive**
by default — the paper reports that a case mismatch between list and
detail values on the Minnesota Corrections site broke the match, which
only happens under case-sensitive comparison.  A ``casefold`` option is
provided for ablation.

Mechanically, matching runs over *interned token ids*, not strings: a
site-scoped :class:`~repro.webdoc.interning.TokenTable` maps each
normalized token text to a dense int, the page's reduced stream becomes
an id list, and an occurrence check is a hash-index probe on the first
id followed by one C-level slice comparison of int lists.  Because
``intern(a) == intern(b)`` exactly when the normalized texts are equal,
the id matcher accepts precisely the occurrences the string matcher
accepted — same positions, same order (see ``docs/paper_mapping.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import current as current_obs
from repro.tokens.tokenizer import DEFAULT_ALLOWED_PUNCT, Token
from repro.webdoc.interning import TokenTable
from repro.webdoc.page import Page

__all__ = ["MatchOptions", "PageIndex", "find_occurrences"]


@dataclass(frozen=True)
class MatchOptions:
    """Matching behaviour knobs.

    Attributes:
        casefold: compare token texts case-insensitively (ablation
            only; the paper's matcher is case-sensitive).
        allowed_punct: the punctuation set defining separators; must
            agree with the tokenizer's.
    """

    casefold: bool = False
    allowed_punct: frozenset[str] = DEFAULT_ALLOWED_PUNCT

    def key(self, text: str) -> str:
        """Normalize one token text for comparison."""
        return text.casefold() if self.casefold else text

    def make_table(self) -> TokenTable:
        """A fresh site-scoped intern table for these options."""
        normalize = str.casefold if self.casefold else None
        return TokenTable(
            normalize=normalize, allowed_punct=self.allowed_punct
        )


class PageIndex:
    """A detail page pre-processed for fast repeated matching.

    Builds the reduced (separator-free) id sequence once, plus an
    inverted index from first-token id to candidate start offsets, so
    that matching N extracts against K pages is close to linear in the
    number of true occurrences.

    Args:
        page: the detail (or list) page to index.
        options: matching options; must agree with ``table``'s when a
            shared table is passed.
        table: the site-scoped intern table to share with sibling
            indexes and queries; a private one is created when absent.
        obs: observability bundle for the ``extraction.index.*``
            counters; defaults to the installed bundle.
    """

    def __init__(
        self,
        page: Page,
        options: MatchOptions | None = None,
        table: TokenTable | None = None,
        obs=None,
    ) -> None:
        self.page = page
        self.options = options or MatchOptions()
        self.table = table if table is not None else self.options.make_table()
        self.obs = obs if obs is not None else current_obs()
        self._reduced, self._ids = self.table.reduced(page)
        starts: dict[int, list[int]] = {}
        for offset, token_id in enumerate(self._ids):
            bucket = starts.get(token_id)
            if bucket is None:
                starts[token_id] = [offset]
            else:
                bucket.append(offset)
        self._starts = starts
        self._probes = self.obs.counter("extraction.index.probes")
        self.obs.counter("extraction.index.pages").inc()
        self.obs.counter("extraction.index.tokens").inc(len(self._ids))

    @property
    def reduced_tokens(self) -> list[Token]:
        """The page's non-separator tokens, in order."""
        return self._reduced

    def occurrences(self, texts: tuple[str, ...]) -> list[int]:
        """All start positions of ``texts`` in the reduced sequence.

        Positions are reported as the *original* token index of the
        occurrence's first token in the detail page's full stream —
        this is the paper's ``pos_j^k`` (Table 3).
        """
        if not texts:
            return []
        return self.occurrences_ids(self.table.intern_texts(texts))

    def occurrences_ids(self, ids: list[int]) -> list[int]:
        """Start positions of an already-interned id sequence.

        Bulk callers (the observation builder) intern each extract once
        and probe every page with the same id list.
        """
        if not ids:
            return []
        candidates = self._starts.get(ids[0])
        if candidates is None:
            return []
        page_ids = self._ids
        length = len(ids)
        limit = len(page_ids) - length
        reduced = self._reduced
        positions = [
            reduced[start].index
            for start in candidates
            if start <= limit and page_ids[start : start + length] == ids
        ]
        self._probes.inc(len(candidates))
        return positions

    def contains(self, texts: tuple[str, ...]) -> bool:
        """Does the page contain ``texts`` at least once?"""
        return bool(self.occurrences(texts))

    def contains_ids(self, ids: list[int]) -> bool:
        """Does the page contain the interned sequence at least once?"""
        return bool(self.occurrences_ids(ids))


def find_occurrences(
    texts: tuple[str, ...],
    pages: list[Page],
    options: MatchOptions | None = None,
) -> dict[int, list[int]]:
    """Occurrences of a token-text sequence on each of ``pages``.

    Convenience wrapper for one-off queries; bulk matching should build
    :class:`PageIndex` objects once over a shared table and reuse them.

    Returns a mapping from page index to start positions (empty pages
    are omitted).
    """
    options = options or MatchOptions()
    table = options.make_table()
    result: dict[int, list[int]] = {}
    for page_number, page in enumerate(pages):
        positions = PageIndex(page, options, table=table).occurrences(texts)
        if positions:
            result[page_number] = positions
    return result

"""Extract extraction (paper Section 3.2).

    "We extract, from the slot we believe to contain the table, the
    contiguous sequences of tokens that do not contain separators.
    Separators are HTML tags and special punctuation characters (any
    character that is not in the set ``.,()-``).  Practically speaking,
    we end up with all visible strings in the table.  We call these
    sequences extracts, E = {E_1, E_2, ..., E_N}."

An :class:`Extract` is therefore a maximal run of non-separator tokens
in a table region's token stream, identified by its position ``index``
on the list page (the same string occurring twice yields two distinct
extracts, as in the paper's Table 1 where "John Smith" is both E_1 and
E_5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.template.table_slot import TableRegion
from repro.tokens.tokenizer import DEFAULT_ALLOWED_PUNCT, Token, is_separator

__all__ = ["Extract", "extract_strings"]


@dataclass(frozen=True)
class Extract:
    """One extract: a maximal separator-free token run on a list page.

    Attributes:
        index: position of the extract in the list page's extract
            sequence (the ``i`` of ``E_i``, 0-based).
        tokens: the extract's tokens, in stream order.
        start_token_index: index of the first token in the full page
            token stream (used for ordering and diagnostics).
    """

    index: int
    tokens: tuple[Token, ...]
    start_token_index: int

    @property
    def texts(self) -> tuple[str, ...]:
        """The token texts; this is the extract's matching key."""
        return tuple(token.text for token in self.tokens)

    @property
    def text(self) -> str:
        """Human-readable rendering of the extract."""
        pieces: list[str] = []
        for position, token in enumerate(self.tokens):
            if position > 0 and token.ws_before:
                pieces.append(" ")
            pieces.append(token.text)
        return "".join(pieces)

    def __len__(self) -> int:
        return len(self.tokens)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def extract_strings(
    region: TableRegion | list[Token],
    allowed_punct: frozenset[str] = DEFAULT_ALLOWED_PUNCT,
) -> list[Extract]:
    """Split a table region into its extracts.

    Accepts either a :class:`TableRegion` or a bare token list (handy
    for tests).  Pure-punctuation runs (e.g. a lone ``-`` between
    separators) are dropped: they carry no content to match against
    detail pages.

    >>> from repro.tokens.tokenizer import tokenize_html
    >>> [e.text for e in extract_strings(tokenize_html(
    ...     "<tr><td>John Smith</td><td>(740) 335-5555</td></tr>"))]
    ['John Smith', '(740) 335-5555']
    """
    tokens = region.tokens if isinstance(region, TableRegion) else region
    extracts: list[Extract] = []
    run: list[Token] = []

    def flush() -> None:
        if run and any(not token.is_punct for token in run):
            extracts.append(
                Extract(
                    index=len(extracts),
                    tokens=tuple(run),
                    start_token_index=run[0].index,
                )
            )
        run.clear()

    for token in tokens:
        if is_separator(token, allowed_punct):
            flush()
        else:
            run.append(token)
    flush()
    return extracts

"""The observation table (paper Tables 1 and 3).

For each extract ``E_i`` of a list page, this module records the detail
pages on which it occurs (the set ``D_i``) and the position of every
occurrence (``pos_j^k``), after applying the paper's usefulness filter:

    "If an extract appears in all the list pages or in all the detail
    pages, it is ignored: such extracts will not contribute useful
    information to the record segmentation task."

Extracts that match *no* detail page get an empty ``D_i``; they are not
part of the segmentation problem but remain available to the pipeline,
which attaches them to the record of the last assigned extract
(Section 6.2).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.extraction.extracts import Extract
from repro.extraction.matching import MatchOptions, PageIndex
from repro.obs import current as current_obs
from repro.webdoc.interning import TokenTable
from repro.webdoc.page import Page

__all__ = ["Observation", "ObservationTable", "PositionGroup"]


@dataclass(frozen=True)
class Observation:
    """One extract that survived the filters, with its evidence.

    Attributes:
        extract: the underlying extract.
        seq: index of this observation in the *used* sequence (this is
            the ``i`` the segmenters reason over; it differs from
            ``extract.index`` whenever earlier extracts were filtered).
        detail_pages: the set ``D_i`` of detail-page indices (0-based)
            on which the extract occurs.
        positions: for each detail page in ``D_i``, the start positions
            (full-stream token indices) of every occurrence there.
    """

    extract: Extract
    seq: int
    detail_pages: frozenset[int]
    positions: dict[int, tuple[int, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class PositionGroup:
    """All used observations sharing one (detail page, position) cell.

    The paper's position constraints (Section 4.2) are generated one
    per group: the extracts observed at the same position on detail
    page ``j`` compete for assignment to record ``r_j``.
    """

    detail_page: int
    position: int
    members: tuple[int, ...]  #: ``seq`` indices of the observations


@dataclass
class ObservationTable:
    """The complete observation evidence for one list page.

    Attributes:
        extracts: every extract of the table region, in page order.
        observations: the used observations, in page order.
        detail_count: ``K``, the number of detail pages (= records).
        ignored_all_lists: extracts dropped because they occur on every
            list page of the sample (page-template junk).
        ignored_all_details: extracts dropped because they occur on
            every detail page ("More Info"-style boilerplate).
        unmatched: extracts occurring on no detail page.
    """

    extracts: list[Extract]
    observations: list[Observation]
    detail_count: int
    ignored_all_lists: list[Extract] = field(default_factory=list)
    ignored_all_details: list[Extract] = field(default_factory=list)
    unmatched: list[Extract] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        extracts: list[Extract],
        detail_pages: list[Page],
        other_list_pages: list[Page] | None = None,
        options: MatchOptions | None = None,
        token_table: TokenTable | None = None,
        obs=None,
    ) -> "ObservationTable":
        """Match ``extracts`` against ``detail_pages`` and filter.

        Args:
            extracts: the list page's extracts, in order.
            detail_pages: the detail pages reached from the list page,
                in link order — index ``j`` is record ``r_j``.
            other_list_pages: the *other* sample list pages, used for
                the appears-on-all-list-pages filter.
            options: matching options (case sensitivity etc.).
            token_table: the site-scoped intern table; pass one to
                share page reductions across the site's list pages
                (the pipeline does), else a build-local table is used.
            obs: observability bundle for the ``extraction.index.*``
                counters; defaults to the installed bundle.
        """
        options = options or MatchOptions()
        obs = obs if obs is not None else current_obs()
        table_of_ids = (
            token_table if token_table is not None else options.make_table()
        )
        detail_indexes = [
            PageIndex(page, options, table=table_of_ids, obs=obs)
            for page in detail_pages
        ]
        other_indexes = [
            PageIndex(page, options, table=table_of_ids, obs=obs)
            for page in (other_list_pages or [])
        ]

        table = cls(
            extracts=list(extracts),
            observations=[],
            detail_count=len(detail_pages),
        )

        queries = obs.counter("extraction.index.queries")
        for extract in extracts:
            # Intern once per extract; every page probe below is then
            # a hash lookup plus one int-list slice compare.
            ids = table_of_ids.intern_texts(extract.texts)
            queries.inc(len(detail_indexes))
            positions: dict[int, tuple[int, ...]] = {}
            for page_number, page_index in enumerate(detail_indexes):
                found = page_index.occurrences_ids(ids)
                if found:
                    positions[page_number] = tuple(found)

            # The appears-on-all-detail-pages filter needs at least two
            # detail pages to be meaningful; with one, it would drop
            # every matching extract.
            if len(detail_pages) >= 2 and len(positions) == len(detail_pages):
                table.ignored_all_details.append(extract)
                continue
            if other_indexes and all(
                index.contains_ids(ids) for index in other_indexes
            ):
                table.ignored_all_lists.append(extract)
                continue
            if not positions:
                table.unmatched.append(extract)
                continue

            table.observations.append(
                Observation(
                    extract=extract,
                    seq=len(table.observations),
                    detail_pages=frozenset(positions),
                    positions=positions,
                )
            )
        return table

    def candidates_for_record(self, record: int) -> list[int]:
        """The ``seq`` indices of observations whose ``D_i`` contains
        ``record`` — the only extracts assignable to that record."""
        return [
            observation.seq
            for observation in self.observations
            if record in observation.detail_pages
        ]

    def position_groups(self, min_size: int = 1) -> list[PositionGroup]:
        """Group used observations by (detail page, position) cell.

        Args:
            min_size: only return groups with at least this many
                members (constraint generation uses the default 1,
                since even a singleton group pins its extract).
        """
        cells: dict[tuple[int, int], list[int]] = defaultdict(list)
        for observation in self.observations:
            for page_number, starts in observation.positions.items():
                for start in starts:
                    cells[(page_number, start)].append(observation.seq)
        groups = [
            PositionGroup(
                detail_page=page_number,
                position=start,
                members=tuple(sorted(members)),
            )
            for (page_number, start), members in sorted(cells.items())
            if len(members) >= min_size
        ]
        return groups

    @property
    def used_count(self) -> int:
        """Number of observations the segmenters will reason over."""
        return len(self.observations)

    def summary(self) -> str:
        """One-line diagnostic summary."""
        return (
            f"{len(self.extracts)} extracts: {self.used_count} used, "
            f"{len(self.ignored_all_details)} on all detail pages, "
            f"{len(self.ignored_all_lists)} on all list pages, "
            f"{len(self.unmatched)} unmatched; K={self.detail_count}"
        )

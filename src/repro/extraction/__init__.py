"""Extract + observation substrate (paper Section 3.2)."""

from repro.extraction.extracts import Extract, extract_strings
from repro.extraction.matching import MatchOptions, PageIndex, find_occurrences
from repro.extraction.observations import (
    Observation,
    ObservationTable,
    PositionGroup,
)

__all__ = [
    "Extract",
    "MatchOptions",
    "Observation",
    "ObservationTable",
    "PageIndex",
    "PositionGroup",
    "extract_strings",
    "find_occurrences",
]

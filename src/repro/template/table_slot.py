"""Resolving the table region of a list page.

Downstream stages (extract extraction, observation building) consume a
:class:`TableRegion`: the token sub-stream of one list page believed to
contain the table.  This module produces it from a
:class:`~repro.template.finder.TemplateVerdict`, applying the paper's
fallback:

    "In cases where the template finding algorithm could not find a
    good page template, we have taken the entire text of the list page
    for analysis."  (Section 6.2)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.template.finder import TemplateVerdict
from repro.tokens.tokenizer import Token
from repro.webdoc.page import Page

__all__ = ["TableRegion", "resolve_table_regions"]


@dataclass(frozen=True)
class TableRegion:
    """The table-bearing token region of one list page.

    Attributes:
        page: the list page.
        tokens: the tokens of the region, in stream order.
        whole_page: True when the template fallback was taken and the
            region is the entire page (Table 4 note *b*).
        slot_id: the template slot the region came from, or None under
            the fallback.
    """

    page: Page
    tokens: tuple[Token, ...]
    whole_page: bool
    slot_id: int | None = None

    @property
    def text_token_count(self) -> int:
        """Number of visible-text tokens in the region."""
        return sum(1 for token in self.tokens if not token.is_html)


def resolve_table_regions(
    pages: list[Page], verdict: TemplateVerdict
) -> list[TableRegion]:
    """Produce one :class:`TableRegion` per list page.

    When the verdict is good, each page's region is its instantiation
    of the chosen table slot; otherwise every page falls back to its
    whole token stream.
    """
    if not verdict.ok or verdict.table_slot_id is None:
        return [
            TableRegion(page=page, tokens=tuple(page.tokens()), whole_page=True)
            for page in pages
        ]
    regions: list[TableRegion] = []
    for page_index, page in enumerate(pages):
        slot = verdict.slots_per_page[page_index][verdict.table_slot_id]
        regions.append(
            TableRegion(
                page=page,
                tokens=slot.tokens,
                whole_page=False,
                slot_id=verdict.table_slot_id,
            )
        )
    return regions

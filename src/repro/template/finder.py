"""Template induction with the paper's failure handling.

:class:`TemplateFinder` induces a :class:`~repro.template.model.PageTemplate`
from two or more list pages, then *judges* it.  The paper reports that
"the page template finding algorithm performed poorly on five of the 12
sites" and that in those cases "we have taken the entire text of the
list page for analysis" (Section 6.2).  Judging therefore matters as
much as inducing: the finder detects the two concrete pathologies the
paper names —

* **too little template**: the pages share almost no invariant tokens
  (e.g. boilerplate repeated elsewhere on the page disqualifies it);
* **fragmented table**: invariant tokens (numbered entries ``1.``,
  ``2.`` ...) thread *through* the data region, shattering the table
  across many small slots so no single slot holds the table.

Both produce a :class:`TemplateVerdict` with ``ok=False``; the pipeline
then falls back to whole-page analysis (Table 4 note *b*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import re

from repro.core.exceptions import InsufficientPagesError
from repro.template.alignment import align_pages
from repro.template.model import PageTemplate, Slot
from repro.webdoc.page import Page

__all__ = ["TemplateFinder", "TemplateFinderConfig", "TemplateVerdict"]

#: Enumeration-marker token shapes: "1.", "12.", "3)", bare "7".
_ENUMERATION_RE = re.compile(r"^\d{1,3}[.)]?$")


def _strip_enumerations(aligned):
    """Drop enumeration-marker tokens from an alignment.

    Numbered entries ("1.", "2.", ...) occur exactly once per page on
    every page and thread through the data region; removing them
    restores a contiguous table slot (the paper's future-work fix for
    its note-*a* sites).
    """
    return [token for token in aligned if not _ENUMERATION_RE.match(token.text)]


def _context_prune(aligned, pages_tokens, depth):
    """Keep aligned tokens whose +/- ``depth`` context is page-invariant.

    The context of an occurrence is the token *texts* at offsets
    -depth..-1 and +1..+depth around it (out-of-range positions use a
    sentinel).  A candidate survives only if every page shows the same
    context — see :class:`TemplateFinderConfig.context_depth`.
    """
    sentinel = "\x00"
    kept = []
    for token in aligned:
        contexts = set()
        for page_index, position in enumerate(token.positions):
            stream = pages_tokens[page_index]
            window = tuple(
                stream[position + offset].text
                if 0 <= position + offset < len(stream)
                else sentinel
                for offset in range(-depth, depth + 1)
                if offset != 0
            )
            contexts.add(window)
        if len(contexts) == 1:
            kept.append(token)
    return kept


@dataclass(frozen=True)
class TemplateFinderConfig:
    """Knobs for template induction and judging.

    Attributes:
        min_template_tokens: below this many aligned tokens the
            template is considered not found.
        min_text_tokens: the template must contain at least this many
            visible-text (non-tag) tokens.  A page pair always shares
            its structural skeleton (``<html>``, ``<head>``, ...), so
            a tags-only template carries no anchoring information and
            counts as not found.
        min_table_fraction: the chosen table slot must hold at least
            this fraction of all slot text tokens on *every* page;
            otherwise the table is fragmented and the template is
            rejected.
        max_slot_count: a template with more slots than this is
            suspicious on its own (a well-templated list page has a
            handful of header/footer slots plus one table slot).
        strip_enumerations: drop enumeration-marker tokens ("1.",
            "2.", ..., bare ordinals) from the template before
            judging.  This is the heuristic the paper proposes as
            future work — "Another approach is to build a heuristic
            into the page template algorithm that finds enumerated
            entries.  We will try this approach in our future work."
            (Section 6.2) — and it repairs the numbered-entry sites
            (Amazon, BNBooks, Minnesota).  Off by default to stay
            faithful to the evaluated system.
        context_depth: a candidate template token is kept only when
            the ``context_depth`` token texts on *each* side of it are
            identical across every sample page.  Template-generated
            tokens (chrome, column headers, numbered-entry markers)
            sit in invariant markup context and survive; a data value
            that happens to occur exactly once per page sits among
            other varying data and is pruned, instead of threading
            through the table and shattering it.  0 disables pruning.
    """

    min_template_tokens: int = 4
    min_text_tokens: int = 3
    min_table_fraction: float = 0.5
    max_slot_count: int = 64
    context_depth: int = 2
    strip_enumerations: bool = False


@dataclass(frozen=True)
class TemplateVerdict:
    """Outcome of template induction over a set of list pages.

    Attributes:
        template: the induced template (possibly empty).
        ok: whether the template passed the quality checks.
        reason: human-readable failure reason when ``ok`` is False.
        table_slot_id: the slot chosen to contain the table, when ok.
        slots_per_page: every slot instantiated on every page (kept for
            diagnostics and for the table-slot chooser).
    """

    template: PageTemplate
    ok: bool
    reason: str = ""
    table_slot_id: int | None = None
    slots_per_page: tuple[tuple[Slot, ...], ...] = field(default=())


class TemplateFinder:
    """Induce and judge a page template from sample list pages."""

    def __init__(self, config: TemplateFinderConfig | None = None) -> None:
        self.config = config or TemplateFinderConfig()

    def find(self, pages: list[Page]) -> TemplateVerdict:
        """Induce a template from ``pages`` and judge its quality.

        Raises:
            InsufficientPagesError: fewer than two pages supplied.
        """
        if len(pages) < 2:
            raise InsufficientPagesError(
                f"template induction needs >= 2 pages, got {len(pages)}"
            )

        pages_tokens = [page.tokens() for page in pages]
        aligned = align_pages(pages_tokens)
        if self.config.context_depth > 0:
            aligned = _context_prune(
                aligned, pages_tokens, self.config.context_depth
            )
        if self.config.strip_enumerations:
            aligned = _strip_enumerations(aligned)
        template = PageTemplate(aligned=tuple(aligned), page_count=len(pages))

        if len(aligned) < self.config.min_template_tokens:
            return TemplateVerdict(
                template=template,
                ok=False,
                reason=(
                    f"template has {len(aligned)} tokens, fewer than the "
                    f"required {self.config.min_template_tokens}"
                ),
            )

        text_tokens = sum(1 for token in aligned if not token.is_html)
        if text_tokens < self.config.min_text_tokens:
            return TemplateVerdict(
                template=template,
                ok=False,
                reason=(
                    f"template has only {text_tokens} text tokens "
                    f"(need {self.config.min_text_tokens}); a tags-only "
                    "template cannot anchor the table"
                ),
            )

        slots_per_page = tuple(
            tuple(template.slots_for_page(index, page.tokens()))
            for index, page in enumerate(pages)
        )

        if template.slot_count > self.config.max_slot_count:
            return TemplateVerdict(
                template=template,
                ok=False,
                reason=(
                    f"template has {template.slot_count} slots, more than "
                    f"the allowed {self.config.max_slot_count}"
                ),
                slots_per_page=slots_per_page,
            )

        table_slot_id = self._choose_table_slot(slots_per_page)
        fragmented_page = self._fragmentation_check(slots_per_page, table_slot_id)
        if fragmented_page is not None:
            return TemplateVerdict(
                template=template,
                ok=False,
                reason=(
                    f"table fragmented: slot {table_slot_id} holds less than "
                    f"{self.config.min_table_fraction:.0%} of page "
                    f"{fragmented_page}'s slot text tokens"
                ),
                table_slot_id=table_slot_id,
                slots_per_page=slots_per_page,
            )

        return TemplateVerdict(
            template=template,
            ok=True,
            table_slot_id=table_slot_id,
            slots_per_page=slots_per_page,
        )

    @staticmethod
    def _choose_table_slot(
        slots_per_page: tuple[tuple[Slot, ...], ...]
    ) -> int:
        """Paper heuristic: the table is in the slot with most text tokens.

        Counts are summed over the sample pages so the choice is a
        single slot id shared by all pages.
        """
        slot_count = len(slots_per_page[0])
        totals = [0] * slot_count
        for page_slots in slots_per_page:
            for slot in page_slots:
                totals[slot.slot_id] += slot.text_token_count
        return max(range(slot_count), key=totals.__getitem__)

    def _fragmentation_check(
        self,
        slots_per_page: tuple[tuple[Slot, ...], ...],
        table_slot_id: int,
    ) -> int | None:
        """Return the index of a page whose table slot is fragmented.

        On each page, the chosen slot must contain at least
        ``min_table_fraction`` of all slot text tokens.  Numbered
        entries split the table across many slots, so the biggest slot
        holds only ~1/rows of the text and this check fires.
        """
        for page_index, page_slots in enumerate(slots_per_page):
            total = sum(slot.text_token_count for slot in page_slots)
            if total == 0:
                continue
            chosen = page_slots[table_slot_id].text_token_count
            if chosen / total < self.config.min_table_fraction:
                return page_index
        return None
